//! Implication of `L_id` constraints (§3.1, Proposition 3.1).
//!
//! The axiomatization `I_id` = {`ID-FK`, `FK-ID`, `SFK-ID`, `Inv-SFK-ID`}
//! (plus `ID-Key` and inverse symmetry; see DESIGN.md) is closed in a
//! single linear pass over `Σ`, after which queries are answered from hash
//! tables — `O(|Σ| + |φ|)` overall, matching the paper's linear-time claim.
//! Implication and finite implication coincide for `L_id` (the same axioms
//! are sound and complete for both), so [`LidSolver::implies`] answers both
//! problems.
//!
//! `Implied` answers carry an `I_id` derivation; `NotImplied` answers carry
//! a finite countermodel (two parallel "copies" of a canonical model, bent
//! to violate `φ`), re-verified against the semantics before being
//! returned.

use std::collections::{BTreeSet, HashMap};

use xic_constraints::{Constraint, DtdStructure, Field};
use xic_model::Name;
use xic_obs::Obs;

use crate::proof::{Proof, Rule};
use crate::semantics::{id_field, Element, Instance};
use crate::Verdict;

/// The `L_id` implication solver (Proposition 3.1).
///
/// ```
/// use xic_constraints::Constraint;
/// use xic_implication::LidSolver;
///
/// // Σ_o of the paper's §2.4 (attribute names normalized): the inverse
/// // constraint alone forces both set-valued foreign keys and both ID
/// // constraints.
/// let sigma = vec![Constraint::InverseId {
///     tau: "dept".into(),
///     attr: "has_staff".into(),
///     target: "person".into(),
///     target_attr: "in_dept".into(),
/// }];
/// let solver = LidSolver::new(&sigma, None);
/// let phi = Constraint::Id { tau: "person".into() };
/// let v = solver.implies(&phi);
/// assert!(v.is_implied());
/// v.proof().unwrap().verify(&sigma, None).unwrap();
///
/// let not = solver.implies(&Constraint::Id { tau: "other".into() });
/// assert!(!not.is_implied());
/// let m = not.countermodel().unwrap();
/// assert!(m.satisfies_all(&sigma));
/// assert!(!m.satisfies(&Constraint::Id { tau: "other".into() }));
/// ```
pub struct LidSolver {
    sigma: Vec<Constraint>,
    proof: Proof,
    facts: HashMap<Constraint, usize>,
    obs: Obs,
}

/// Rewrites the concrete ID attribute name of each type to the `id`
/// pseudo-attribute, using `structure` when given (see
/// [`crate::semantics`]).
fn normalize(c: &Constraint, structure: Option<&DtdStructure>) -> Constraint {
    let Some(s) = structure else {
        return c.clone();
    };
    let is_id = |tau: &Name, l: &Name| s.id_attr(tau) == Some(l);
    match c {
        Constraint::Key { tau, fields } if fields.len() == 1 => match &fields[0] {
            Field::Attr(l) if is_id(tau, l) => Constraint::Key {
                tau: tau.clone(),
                fields: vec![id_field()],
            },
            _ => c.clone(),
        },
        Constraint::FkToId { tau, attr, target } if is_id(tau, attr) => Constraint::FkToId {
            tau: tau.clone(),
            attr: Name::new("id"),
            target: target.clone(),
        },
        _ => c.clone(),
    }
}

impl LidSolver {
    /// Builds the `I_id` closure of `sigma` in one pass. `structure`, when
    /// given, is used to normalize concrete ID attribute names to the `id`
    /// pseudo-attribute in both `Σ` and queries.
    pub fn new(sigma: &[Constraint], structure: Option<&DtdStructure>) -> Self {
        let sigma: Vec<Constraint> = sigma.iter().map(|c| normalize(c, structure)).collect();
        let mut solver = LidSolver {
            sigma: sigma.clone(),
            proof: Proof::default(),
            facts: HashMap::new(),
            obs: Obs::off(),
        };
        for c in &sigma {
            let h = solver.add(c.clone(), Rule::Hypothesis, vec![]);
            match c {
                Constraint::FkToId { target, .. } => {
                    solver.add(
                        Constraint::Id {
                            tau: target.clone(),
                        },
                        Rule::FkId,
                        vec![h],
                    );
                }
                Constraint::SetFkToId { target, .. } => {
                    solver.add(
                        Constraint::Id {
                            tau: target.clone(),
                        },
                        Rule::SfkId,
                        vec![h],
                    );
                }
                Constraint::InverseId {
                    tau,
                    attr,
                    target,
                    target_attr,
                } => {
                    solver.add(
                        Constraint::InverseId {
                            tau: target.clone(),
                            attr: target_attr.clone(),
                            target: tau.clone(),
                            target_attr: attr.clone(),
                        },
                        Rule::InvIdSym,
                        vec![h],
                    );
                    let s1 = solver.add(
                        Constraint::SetFkToId {
                            tau: tau.clone(),
                            attr: attr.clone(),
                            target: target.clone(),
                        },
                        Rule::InvSfkId,
                        vec![h],
                    );
                    solver.add(
                        Constraint::Id {
                            tau: target.clone(),
                        },
                        Rule::SfkId,
                        vec![s1],
                    );
                    let s2 = solver.add(
                        Constraint::SetFkToId {
                            tau: target.clone(),
                            attr: target_attr.clone(),
                            target: tau.clone(),
                        },
                        Rule::InvSfkId,
                        vec![h],
                    );
                    solver.add(Constraint::Id { tau: tau.clone() }, Rule::SfkId, vec![s2]);
                }
                _ => {}
            }
        }
        // Consequences of each derived ID constraint.
        let id_types: Vec<(Name, usize)> = solver
            .facts
            .iter()
            .filter_map(|(c, &i)| match c {
                Constraint::Id { tau } => Some((tau.clone(), i)),
                _ => None,
            })
            .collect();
        for (tau, i) in id_types {
            solver.add(
                Constraint::FkToId {
                    tau: tau.clone(),
                    attr: Name::new("id"),
                    target: tau.clone(),
                },
                Rule::IdFk,
                vec![i],
            );
            solver.add(
                Constraint::Key {
                    tau,
                    fields: vec![id_field()],
                },
                Rule::IdKey,
                vec![i],
            );
        }
        solver
    }

    fn add(&mut self, c: Constraint, rule: Rule, premises: Vec<usize>) -> usize {
        if let Some(&i) = self.facts.get(&c) {
            return i;
        }
        let i = self.proof.push(c.clone(), rule, premises);
        self.facts.insert(c, i);
        i
    }

    /// The normalized `Σ` the solver reasons over.
    pub fn sigma(&self) -> &[Constraint] {
        &self.sigma
    }

    /// All facts in the `I_id` closure (hypotheses and derived).
    pub fn facts(&self) -> impl Iterator<Item = &Constraint> {
        self.facts.keys()
    }

    /// Fast membership test: is `φ` (already normalized) in the closure?
    /// Unlike [`LidSolver::implies`] this builds neither proofs nor
    /// countermodels — `O(|φ|)` per query.
    pub fn holds(&self, phi: &Constraint) -> bool {
        self.facts.contains_key(phi)
    }

    /// The `Σ`-implied reference target of `(tau, attr)`: the `τ₂` with
    /// `Σ ⊨ τ.l ⊆ τ₂.id` or `Σ ⊨ τ.l ⊆_S τ₂.id`, if any (first match in
    /// deterministic order).
    pub fn reference_target(&self, tau: &Name, attr: &Name) -> Option<&Name> {
        let mut best: Option<&Name> = None;
        for c in self.facts.keys() {
            match c {
                Constraint::FkToId {
                    tau: t,
                    attr: a,
                    target,
                }
                | Constraint::SetFkToId {
                    tau: t,
                    attr: a,
                    target,
                } if t == tau && a == attr => match best {
                    Some(b) if b <= target => {}
                    _ => best = Some(target),
                },
                _ => {}
            }
        }
        best
    }

    /// Answers `Σ ⊨ φ` (equivalently `Σ ⊨_f φ`; the problems coincide for
    /// `L_id`).
    pub fn implies(&self, phi: &Constraint) -> Verdict {
        self.implies_with(phi, None)
    }

    /// Attaches an observability handle: subsequent queries record an
    /// `implication.query` span and, when implied, the derivation length
    /// on the `implication.rules` counter. Verdicts are unaffected.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Like [`LidSolver::implies`], normalizing `φ` against a structure.
    pub fn implies_with(&self, phi: &Constraint, structure: Option<&DtdStructure>) -> Verdict {
        let _q = self.obs.span("implication.query");
        let phi = normalize(phi, structure);
        let verdict = match self.facts.get(&phi) {
            Some(&i) => Verdict::Implied(Proof {
                steps: self.proof.steps[..=i].to_vec(),
            }),
            None => Verdict::NotImplied(self.countermodel(&phi)),
        };
        crate::record_verdict(&self.obs, &verdict);
        verdict
    }

    /// All `FkToId` facts of `Σ` on `(tau, attr)`, as target types.
    fn fk_targets(&self, tau: &Name, attr: &Name) -> Vec<Name> {
        self.sigma
            .iter()
            .filter_map(|c| match c {
                Constraint::FkToId {
                    tau: t,
                    attr: a,
                    target,
                } if t == tau && a == attr => Some(target.clone()),
                _ => None,
            })
            .collect()
    }

    /// All set-FK targets of the closure on `(tau, attr)` (Σ plus those
    /// forced by inverse constraints).
    fn sfk_targets(&self, tau: &Name, attr: &Name) -> Vec<Name> {
        let mut out: Vec<Name> = self
            .facts
            .keys()
            .filter_map(|c| match c {
                Constraint::SetFkToId {
                    tau: t,
                    attr: a,
                    target,
                } if t == tau && a == attr => Some(target.clone()),
                _ => None,
            })
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Builds a finite countermodel for a non-implied `φ`: two parallel
    /// copies of a canonical instance, bent to violate `φ`, then repaired
    /// for inverse echoes and re-verified.
    fn countermodel(&self, phi: &Constraint) -> Option<Instance> {
        // Collect the mentioned types and fields.
        let mut types: BTreeSet<Name> = BTreeSet::new();
        let mut singles: BTreeSet<(Name, Field)> = BTreeSet::new();
        let mut sets: BTreeSet<(Name, Name)> = BTreeSet::new();
        let mut note = |c: &Constraint| {
            types.insert(c.tau().clone());
            if let Some(t) = c.target() {
                types.insert(t.clone());
            }
            match c {
                Constraint::Key { tau, fields } => {
                    for f in fields {
                        singles.insert((tau.clone(), f.clone()));
                    }
                }
                Constraint::FkToId { tau, attr, .. } => {
                    singles.insert((tau.clone(), Field::Attr(attr.clone())));
                }
                Constraint::SetFkToId { tau, attr, .. } => {
                    sets.insert((tau.clone(), attr.clone()));
                }
                Constraint::InverseId {
                    tau,
                    attr,
                    target,
                    target_attr,
                } => {
                    sets.insert((tau.clone(), attr.clone()));
                    sets.insert((target.clone(), target_attr.clone()));
                }
                _ => {}
            }
        };
        for c in &self.sigma {
            note(c);
        }
        note(phi);

        let mut next = 1000u32;
        let mut fresh = || {
            next += 1;
            next
        };

        let mut inst = Instance::new();
        let mut ids: HashMap<(Name, usize), u32> = HashMap::new();
        for tau in &types {
            for copy in 0..2 {
                inst.push(tau.clone(), Element::default());
                ids.insert((tau.clone(), copy), fresh());
            }
        }
        // φ = Id(τ): attribute values stay total (Definition 2.4), so the
        // violation is a duplicated ID value within the type.
        if let Constraint::Id { tau } = phi {
            let v = fresh();
            for copy in 0..2 {
                ids.insert((tau.clone(), copy), v);
            }
        }
        for ((tau, copy), v) in &ids {
            inst.exts.get_mut(tau).unwrap()[*copy].set_id(*v);
        }

        // Single fields: FK-constrained fields point at the partner copy;
        // unconstrained fields get per-copy fresh values.
        for (tau, f) in &singles {
            if *f == id_field() {
                continue; // already assigned
            }
            let fk = match f {
                Field::Attr(l) => self.fk_targets(tau, l),
                Field::Sub(_) => vec![],
            };
            for copy in 0..2 {
                let v = match fk.first() {
                    Some(sigma_t) => match ids.get(&(sigma_t.clone(), copy)) {
                        Some(&v) => v,
                        None => fresh(),
                    },
                    None => fresh(),
                };
                inst.exts.get_mut(tau).unwrap()[copy]
                    .single
                    .insert(f.clone(), v);
            }
        }

        // Set attributes: one partner ID when a unique closure target
        // exists; empty otherwise (an empty set satisfies any containment).
        for (tau, l) in &sets {
            let targets = self.sfk_targets(tau, l);
            for copy in 0..2 {
                let value: BTreeSet<u32> = if targets.len() == 1 {
                    ids.get(&(targets[0].clone(), copy))
                        .map(|&v| BTreeSet::from([v]))
                        .unwrap_or_default()
                } else {
                    BTreeSet::new()
                };
                inst.exts.get_mut(tau).unwrap()[copy]
                    .sets
                    .insert(l.clone(), value);
            }
        }

        // Bend the instance to violate φ.
        match phi {
            Constraint::Id { .. } => {} // handled above (duplicated ID)
            Constraint::Key { tau, fields } if fields.len() == 1 => {
                let f = &fields[0];
                // Make the two copies agree on f (fresh shared value, or
                // the partner-0 ID for FK-constrained fields, or a shared
                // ID for f = id).
                let shared = if *f == id_field() {
                    let v = fresh();
                    for copy in 0..2 {
                        inst.exts.get_mut(tau).unwrap()[copy].set_id(v);
                    }
                    None
                } else {
                    let fk = match f {
                        Field::Attr(l) => self.fk_targets(tau, l),
                        Field::Sub(_) => vec![],
                    };
                    Some(match fk.first().and_then(|t| ids.get(&(t.clone(), 0))) {
                        Some(&v) => v,
                        None => fresh(),
                    })
                };
                if let Some(v) = shared {
                    for copy in 0..2 {
                        inst.exts.get_mut(tau).unwrap()[copy]
                            .single
                            .insert(f.clone(), v);
                    }
                }
            }
            Constraint::Key { .. } => return None, // multi-field keys are not L_id
            Constraint::FkToId { tau, attr, .. } => {
                // If the attribute is entirely unconstrained in Σ, its fresh
                // default already violates φ; if Σ points it at a different
                // target, the partner ID already violates φ. Ensure the
                // field exists at all:
                let f = Field::Attr(attr.clone());
                if !inst.ext(tau).is_empty()
                    && !inst.ext(tau)[0].single.contains_key(&f)
                    && f != id_field()
                {
                    let v = fresh();
                    inst.exts.get_mut(tau).unwrap()[0].single.insert(f, v);
                }
            }
            Constraint::SetFkToId { tau, attr, target } => {
                let targets = self.sfk_targets(tau, attr);
                let bad = if targets.is_empty() {
                    Some(fresh())
                } else if targets.len() == 1 && &targets[0] != target {
                    ids.get(&(targets[0].clone(), 0)).copied()
                } else {
                    // Σ already confines the attribute to the queried
                    // target (or to an empty intersection); see DESIGN.md
                    // on the single-target condition.
                    None
                };
                let v = bad?;
                inst.exts
                    .get_mut(tau)?
                    .get_mut(0)?
                    .sets
                    .entry(attr.clone())
                    .or_default()
                    .insert(v);
            }
            Constraint::InverseId {
                tau,
                attr,
                target,
                target_attr,
            } => {
                // Violate one direction: prefer a containment break on
                // (target, target_attr); fall back to an echo break.
                self.bend_inverse(&mut inst, &ids, &mut fresh, tau, attr, target, target_attr)?;
            }
            // Forms outside L_id: no countermodel machinery here.
            Constraint::ForeignKey { .. }
            | Constraint::SetForeignKey { .. }
            | Constraint::InverseU { .. } => return None,
        }

        // Echo repair for Σ's inverse constraints: add missing back
        // references (only grows sets; terminates).
        loop {
            let mut changed = false;
            for c in &self.sigma {
                let Constraint::InverseId {
                    tau,
                    attr,
                    target,
                    target_attr,
                } = c
                else {
                    continue;
                };
                for (t1, l1, t2, l2) in [
                    (tau, attr, target, target_attr),
                    (target, target_attr, tau, attr),
                ] {
                    // x ∈ ext(t1), y ∈ ext(t2): x.id ∈ y.l2 → y.id ∈ x.l1.
                    let ext2 = inst.ext(t2).to_vec();
                    let Some(ext1) = inst.exts.get_mut(t1) else {
                        continue;
                    };
                    for x in ext1.iter_mut() {
                        let Some(xid) = x.id() else { continue };
                        for y in &ext2 {
                            let (Some(yid), Some(yset)) = (y.id(), y.sets.get(l2)) else {
                                continue;
                            };
                            if yset.contains(&xid) {
                                let s = x.sets.entry(l1.clone()).or_default();
                                if s.insert(yid) {
                                    changed = true;
                                }
                            }
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Verify before returning.
        if inst.satisfies_all(&self.sigma) && !inst.satisfies(phi) {
            Some(inst)
        } else {
            None
        }
    }

    /// Violates one direction of an inverse query (see `countermodel`).
    #[allow(clippy::too_many_arguments)]
    fn bend_inverse(
        &self,
        inst: &mut Instance,
        ids: &HashMap<(Name, usize), u32>,
        fresh: &mut impl FnMut() -> u32,
        tau: &Name,
        attr: &Name,
        target: &Name,
        target_attr: &Name,
    ) -> Option<()> {
        for (t1, l1, t2, _l2) in [
            (target, target_attr, tau, attr),
            (tau, attr, target, target_attr),
        ] {
            // Try to make some y ∈ ext(t1) hold a value in y.l1 that is not
            // an ID of t2 (containment break)…
            let targets = self.sfk_targets(t1, l1);
            let bad = if targets.is_empty() {
                Some(fresh())
            } else if targets.len() == 1 && &targets[0] != t2 {
                ids.get(&(targets[0].clone(), 0)).copied()
            } else if targets.len() == 1 {
                // …or break the echo: y.l1 ∋ x.id with x.l2 ∌ y.id. Only
                // possible when the query's own inverse is not in Σ (it is
                // not — φ was not implied) and IDs exist on both sides.
                let xid = ids.get(&(t2.clone(), 0)).copied()?;
                inst.exts
                    .get_mut(t1)?
                    .get_mut(0)?
                    .sets
                    .entry(l1.clone())
                    .or_default()
                    .insert(xid);
                // x's echo set must *not* gain y's id: leave it as built;
                // repair only enforces Σ's inverses, not φ.
                return Some(());
            } else {
                None
            };
            if let Some(v) = bad {
                inst.exts
                    .get_mut(t1)?
                    .get_mut(0)?
                    .sets
                    .entry(l1.clone())
                    .or_default()
                    .insert(v);
                return Some(());
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xic_constraints::examples::{company_dtdc, company_structure};

    fn company_sigma() -> Vec<Constraint> {
        company_dtdc().constraints().to_vec()
    }

    #[test]
    fn company_closure_implication() {
        let sigma = company_sigma();
        let s = company_structure();
        let solver = LidSolver::new(&sigma, Some(&s));
        // Directly stated facts.
        for phi in [
            Constraint::Id {
                tau: "person".into(),
            },
            Constraint::Id { tau: "dept".into() },
            Constraint::sub_key("person", "name"),
        ] {
            let v = solver.implies_with(&phi, Some(&s));
            assert!(v.is_implied(), "{phi}");
            v.proof().unwrap().verify(solver.sigma(), Some(&s)).unwrap();
        }
        // Derived: the ID constraints yield keys on the ID attribute
        // (queried by its concrete name `oid`, normalized via the
        // structure).
        let phi = Constraint::unary_key("person", "oid");
        let v = solver.implies_with(&phi, Some(&s));
        assert!(v.is_implied());
        v.proof().unwrap().verify(solver.sigma(), Some(&s)).unwrap();
        // Derived: reflexive FK on the ID.
        let phi = Constraint::FkToId {
            tau: "dept".into(),
            attr: "oid".into(),
            target: "dept".into(),
        };
        assert!(solver.implies_with(&phi, Some(&s)).is_implied());
        // Not implied: an unrelated key.
        let phi = Constraint::unary_key("person", "address");
        let v = solver.implies_with(&phi, Some(&s));
        assert!(!v.is_implied());
    }

    #[test]
    fn inverse_forces_sfk_and_ids() {
        let sigma = vec![Constraint::InverseId {
            tau: "dept".into(),
            attr: "has_staff".into(),
            target: "person".into(),
            target_attr: "in_dept".into(),
        }];
        let solver = LidSolver::new(&sigma, None);
        for phi in [
            Constraint::SetFkToId {
                tau: "dept".into(),
                attr: "has_staff".into(),
                target: "person".into(),
            },
            Constraint::SetFkToId {
                tau: "person".into(),
                attr: "in_dept".into(),
                target: "dept".into(),
            },
            Constraint::Id {
                tau: "person".into(),
            },
            Constraint::Id { tau: "dept".into() },
            // Symmetric form of the inverse itself.
            Constraint::InverseId {
                tau: "person".into(),
                attr: "in_dept".into(),
                target: "dept".into(),
                target_attr: "has_staff".into(),
            },
        ] {
            let v = solver.implies(&phi);
            assert!(v.is_implied(), "{phi}");
            v.proof().unwrap().verify(&sigma, None).unwrap();
        }
    }

    #[test]
    fn countermodels_verify() {
        let sigma = company_sigma();
        let s = company_structure();
        let solver = LidSolver::new(&sigma, Some(&s));
        let non_implied = [
            Constraint::unary_key("person", "address"),
            Constraint::Id { tau: "db".into() },
            Constraint::sub_key("dept", "oid2"),
            Constraint::FkToId {
                tau: "dept".into(),
                attr: "manager".into(),
                target: "dept".into(),
            },
            Constraint::SetFkToId {
                tau: "person".into(),
                attr: "in_dept".into(),
                target: "person".into(),
            },
            Constraint::InverseId {
                tau: "dept".into(),
                attr: "has_staff".into(),
                target: "dept".into(),
                target_attr: "has_staff".into(),
            },
        ];
        for phi in non_implied {
            let v = solver.implies_with(&phi, Some(&s));
            assert!(!v.is_implied(), "{phi}");
            let m = v
                .countermodel()
                .unwrap_or_else(|| panic!("no countermodel for {phi}"));
            assert!(m.satisfies_all(solver.sigma()), "Σ fails on:\n{m}");
            assert!(
                !m.satisfies(&normalize(&phi, Some(&s))),
                "φ={phi} holds on:\n{m}"
            );
        }
    }

    #[test]
    fn key_countermodel_on_unconstrained_attr() {
        let sigma = vec![Constraint::Id { tau: "p".into() }];
        let solver = LidSolver::new(&sigma, None);
        let phi = Constraint::unary_key("p", "x");
        let v = solver.implies(&phi);
        assert!(!v.is_implied());
        let m = v.countermodel().unwrap();
        assert!(m.satisfies_all(&sigma));
        assert!(!m.satisfies(&phi));
        // Two p-elements share x but have distinct IDs.
        assert_eq!(m.ext("p").len(), 2);
    }

    #[test]
    fn key_on_id_countermodel_when_no_id_constraint() {
        let sigma: Vec<Constraint> = vec![];
        let solver = LidSolver::new(&sigma, None);
        let phi = Constraint::Key {
            tau: "p".into(),
            fields: vec![id_field()],
        };
        let v = solver.implies(&phi);
        assert!(!v.is_implied());
        let m = v.countermodel().unwrap();
        assert!(!m.satisfies(&phi), "{m}");
    }

    #[test]
    fn empty_sigma_implies_nothing_but_trivia() {
        let solver = LidSolver::new(&[], None);
        assert!(!solver
            .implies(&Constraint::Id { tau: "a".into() })
            .is_implied());
        assert!(!solver
            .implies(&Constraint::unary_key("a", "x"))
            .is_implied());
    }

    #[test]
    fn proofs_are_minimal_prefixes() {
        let sigma = vec![
            Constraint::Id { tau: "a".into() },
            Constraint::Id { tau: "b".into() },
        ];
        let solver = LidSolver::new(&sigma, None);
        let v = solver.implies(&Constraint::Id { tau: "a".into() });
        // Proof of the first hypothesis should not drag in later facts.
        assert_eq!(v.proof().unwrap().steps.len(), 1);
    }
}
