//! Bounded brute-force model search: the independent oracle against which
//! the solvers are property-tested, and the fallback countermodel finder.
//!
//! Enumerates all flat instances up to configurable bounds (elements per
//! type, value-universe size) over the types and fields mentioned in
//! `Σ ∪ {φ}`, and reports the first instance satisfying `Σ` but violating
//! `φ`. Exhaustive within its bounds — a `Some` answer refutes both finite
//! and unrestricted implication; a `None` answer only says no small
//! countermodel exists.

use std::collections::{BTreeMap, BTreeSet};

use xic_constraints::{Constraint, Field};
use xic_model::Name;

use crate::semantics::{Element, Instance};

/// Search bounds for [`find_countermodel`].
#[derive(Clone, Copy, Debug)]
pub struct Bounds {
    /// Maximum elements per extent.
    pub max_per_type: usize,
    /// Size of the value universe (`0..max_values`).
    pub max_values: u32,
    /// Cap on the number of candidate instances examined.
    pub budget: u64,
}

impl Default for Bounds {
    fn default() -> Self {
        Bounds {
            max_per_type: 2,
            max_values: 3,
            budget: 5_000_000,
        }
    }
}

/// The field shape mentioned by `Σ ∪ {φ}`.
#[derive(Debug, Default)]
struct Shape {
    /// Per type: the single-valued fields and the set-valued attributes.
    by_type: BTreeMap<Name, (BTreeSet<Field>, BTreeSet<Name>)>,
}

fn single(shape: &mut Shape, tau: &Name, f: Field) {
    shape.by_type.entry(tau.clone()).or_default().0.insert(f);
}

fn setv(shape: &mut Shape, tau: &Name, l: &Name) {
    shape
        .by_type
        .entry(tau.clone())
        .or_default()
        .1
        .insert(l.clone());
}

fn collect(c: &Constraint, shape: &mut Shape) {
    shape.by_type.entry(c.tau().clone()).or_default();
    if let Some(t) = c.target() {
        shape.by_type.entry(t.clone()).or_default();
    }
    match c {
        Constraint::Key { tau, fields } => {
            for f in fields {
                single(shape, tau, f.clone());
            }
        }
        Constraint::ForeignKey {
            tau,
            fields,
            target,
            target_fields,
        } => {
            for f in fields {
                single(shape, tau, f.clone());
            }
            for f in target_fields {
                single(shape, target, f.clone());
            }
        }
        Constraint::SetForeignKey {
            tau,
            attr,
            target,
            target_field,
        } => {
            setv(shape, tau, attr);
            single(shape, target, target_field.clone());
        }
        Constraint::InverseU {
            tau,
            key,
            attr,
            target,
            target_key,
            target_attr,
        } => {
            single(shape, tau, key.clone());
            setv(shape, tau, attr);
            single(shape, target, target_key.clone());
            setv(shape, target, target_attr);
        }
        Constraint::Id { tau } => {
            single(shape, tau, crate::semantics::id_field());
        }
        Constraint::FkToId { tau, attr, target } => {
            single(shape, tau, Field::Attr(attr.clone()));
            single(shape, target, crate::semantics::id_field());
        }
        Constraint::SetFkToId { tau, attr, target } => {
            setv(shape, tau, attr);
            single(shape, target, crate::semantics::id_field());
        }
        Constraint::InverseId {
            tau,
            attr,
            target,
            target_attr,
        } => {
            setv(shape, tau, attr);
            setv(shape, target, target_attr);
            single(shape, tau, crate::semantics::id_field());
            single(shape, target, crate::semantics::id_field());
        }
    }
}

/// Searches exhaustively (within `bounds`) for an instance with
/// `I ⊨ Σ` and `I ⊭ φ`.
pub fn find_countermodel(
    sigma: &[Constraint],
    phi: &Constraint,
    bounds: Bounds,
) -> Option<Instance> {
    let mut shape = Shape::default();
    for c in sigma {
        collect(c, &mut shape);
    }
    collect(phi, &mut shape);

    // All possible element configurations per type.
    let mut per_type_elems: Vec<(Name, Vec<Element>)> = Vec::new();
    for (tau, (singles, sets)) in &shape.by_type {
        let mut elems = vec![Element::default()];
        for f in singles {
            let mut next = Vec::new();
            for e in &elems {
                // Single fields are *total*: Definition 2.4 makes declared
                // attributes present on every element (att defined iff R
                // defined), and unique sub-elements occur exactly once —
                // this totality is what makes rules like UK-FK sound.
                for v in 0..bounds.max_values {
                    let mut e2 = e.clone();
                    e2.single.insert(f.clone(), v);
                    next.push(e2);
                }
            }
            elems = next;
        }
        for l in sets {
            let mut next = Vec::new();
            for e in &elems {
                for mask in 0u32..(1 << bounds.max_values) {
                    let mut e2 = e.clone();
                    let set: BTreeSet<u32> = (0..bounds.max_values)
                        .filter(|v| mask & (1 << v) != 0)
                        .collect();
                    e2.sets.insert(l.clone(), set);
                    next.push(e2);
                }
            }
            elems = next;
        }
        per_type_elems.push((tau.clone(), elems));
    }

    // Enumerate extent choices: for each type, a multiset of element
    // configurations of size 0..=max_per_type (ordered tuples with
    // non-decreasing indices, to cut symmetric duplicates).
    let mut budget = bounds.budget;
    let mut inst = Instance::new();
    for (tau, _) in &per_type_elems {
        inst.exts.insert(tau.clone(), Vec::new());
    }
    search(
        sigma,
        phi,
        &per_type_elems,
        0,
        &mut inst,
        bounds.max_per_type,
        &mut budget,
    )
}

fn search(
    sigma: &[Constraint],
    phi: &Constraint,
    per_type: &[(Name, Vec<Element>)],
    depth: usize,
    inst: &mut Instance,
    max_per_type: usize,
    budget: &mut u64,
) -> Option<Instance> {
    if *budget == 0 {
        return None;
    }
    if depth == per_type.len() {
        *budget -= 1;
        if inst.satisfies_all(sigma) && !inst.satisfies(phi) {
            return Some(inst.clone());
        }
        return None;
    }
    let (tau, elems) = &per_type[depth];
    // Choose a non-decreasing index tuple of size 0..=max_per_type.
    let mut choice: Vec<usize> = Vec::new();
    loop {
        // Materialize the current choice.
        let ext: Vec<Element> = choice.iter().map(|&i| elems[i].clone()).collect();
        inst.exts.insert(tau.clone(), ext);
        if let Some(found) = search(sigma, phi, per_type, depth + 1, inst, max_per_type, budget) {
            return Some(found);
        }
        if *budget == 0 {
            return None;
        }
        // Advance the choice: treat as non-decreasing counter in base
        // |elems| with up to max_per_type digits.
        if choice.len() < max_per_type {
            choice.push(choice.last().copied().unwrap_or(0));
            continue;
        }
        loop {
            match choice.pop() {
                None => return None,
                Some(i) if i + 1 < elems.len() => {
                    let lo = i + 1;
                    choice.push(lo);
                    break;
                }
                Some(_) => continue,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_key_countermodel() {
        // Nothing implies a key.
        let m = find_countermodel(&[], &Constraint::unary_key("a", "x"), Bounds::default())
            .expect("countermodel exists");
        assert!(!m.satisfies(&Constraint::unary_key("a", "x")));
    }

    #[test]
    fn finds_fk_countermodel() {
        let sigma = vec![Constraint::unary_key("b", "y")];
        let phi = Constraint::unary_fk("a", "x", "b", "y");
        let m = find_countermodel(&sigma, &phi, Bounds::default()).unwrap();
        assert!(m.satisfies_all(&sigma));
        assert!(!m.satisfies(&phi));
    }

    #[test]
    fn respects_implication() {
        // Σ = {a.x ⊆ b.y, b.y ⊆ c.z} (with keys): a.x ⊆ c.z is implied —
        // no countermodel at any bound.
        let sigma = vec![
            Constraint::unary_key("b", "y"),
            Constraint::unary_key("c", "z"),
            Constraint::unary_fk("a", "x", "b", "y"),
            Constraint::unary_fk("b", "y", "c", "z"),
        ];
        let phi = Constraint::unary_fk("a", "x", "c", "z");
        assert!(find_countermodel(
            &sigma,
            &phi,
            Bounds {
                max_per_type: 2,
                max_values: 2,
                budget: 2_000_000,
            }
        )
        .is_none());
    }

    #[test]
    fn finite_only_consequence_has_no_finite_countermodel() {
        // Σ = {t.a → t, t.b → t, t.a ⊆ t.b} finitely implies t.b ⊆ t.a
        // (Cor 3.3's divergence example): brute force must find no finite
        // countermodel.
        let sigma = vec![
            Constraint::unary_key("t", "a"),
            Constraint::unary_key("t", "b"),
            Constraint::unary_fk("t", "a", "t", "b"),
        ];
        let phi = Constraint::unary_fk("t", "b", "t", "a");
        assert!(find_countermodel(
            &sigma,
            &phi,
            Bounds {
                max_per_type: 3,
                max_values: 4,
                budget: 4_000_000,
            }
        )
        .is_none());
    }

    #[test]
    fn singles_are_total() {
        // Every enumerated element defines every mentioned single field
        // (Definition 2.4 totality); the key violation with max_values=1
        // uses the single value twice.
        let phi = Constraint::unary_key("a", "x");
        let m = find_countermodel(
            &[],
            &phi,
            Bounds {
                max_per_type: 2,
                max_values: 1,
                budget: 100_000,
            },
        )
        .unwrap();
        let ext = m.ext("a");
        assert_eq!(ext.len(), 2);
        assert_eq!(ext[0].single.get(&Field::attr("x")), Some(&0));
        assert_eq!(ext[1].single.get(&Field::attr("x")), Some(&0));
    }

    #[test]
    fn reflexive_fk_on_key_has_no_countermodel() {
        // UK-FK soundness depends on totality: τ.k → τ implies τ.k ⊆ τ.k.
        let sigma = vec![Constraint::unary_key("t", "k")];
        let phi = Constraint::unary_fk("t", "k", "t", "k");
        assert!(find_countermodel(&sigma, &phi, Bounds::default()).is_none());
    }
}
