//! # xic-implication — implication of basic XML constraints
//!
//! Implements Section 3 of Fan & Siméon (PODS 2000): the implication
//! (`Σ ⊨ φ`) and finite implication (`Σ ⊨_f φ`) problems for the three
//! constraint languages, with the paper's axiomatizations realized as
//! executable, derivation-producing proof systems.
//!
//! | Paper result | Here |
//! |---|---|
//! | Prop 3.1 — `I_id` sound/complete; linear time | [`lid::LidSolver`] |
//! | Thm 3.2 / Cor 3.3 — `I_u`, `I_u^f`; linear; problems differ | [`lu::LuSolver`] |
//! | Thm 3.4 / Cor 3.5 — primary keys: problems coincide | [`lu::LuSolver::check_primary`] + tests |
//! | Thm 3.6 / Cor 3.7 — `L` undecidable | [`chase::Chase`] (sound, resource-bounded semi-decision) |
//! | Thm 3.8 / Cor 3.9 — primary `I_p` sound/complete | [`lprimary::LpSolver`] |
//!
//! ## Semantic ground truth
//!
//! Implication quantifies over data trees of *any* `DTD^C` carrying `Σ`.
//! Because the basic constraints only speak about `ext(τ)` extents and
//! attribute values — never about tree shape — and because for every finite
//! family of typed extents some DTD realizes it (e.g. a root with content
//! `(τ₁* , … , τₙ*)`), implication over data trees coincides with
//! implication over *flat instances*: finite (or infinite) collections of
//! typed elements with attribute values. The [`semantics`] module
//! implements these instances and constraint satisfaction over them; the
//! brute-force model search ([`bruteforce`]) and all countermodels live in
//! that domain, and [`semantics::instance_to_tree`] rebuilds an actual data
//! tree (with a generated `DTD^C`) from any instance to close the loop.
//!
//! Following the paper's constraint *forms*, a foreign-key constraint is
//! satisfied when its inclusion holds **and** its target is a key (the form
//! carries "`Y` is the key of `τ'`" as a side condition — this is what
//! makes rules `UFK-K`/`SFK-K` sound); likewise inverse constraints carry
//! their named keys, and `L_id` inverse constraints carry the `⊆_S`
//! containments into their partners' IDs (rule `Inv-SFK-ID`).
//!
//! ## Proofs
//!
//! Every `Implied` verdict from the `L_id`/`L_u`/`L_p` solvers comes with a
//! machine-checkable linear derivation in the corresponding axiom system
//! ([`proof::Proof`], verified by [`proof::Proof::verify`]); every
//! `NotImplied` verdict from a finite-implication query comes with a finite
//! countermodel instance that is re-checked against the semantics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bruteforce;
pub mod chase;
pub mod lid;
pub mod lprimary;
pub mod lu;
pub mod proof;
pub mod semantics;

pub use chase::{Chase, ChaseOutcome};
pub use lid::LidSolver;
pub use lprimary::LpSolver;
pub use lu::LuSolver;
pub use proof::{Proof, Rule, Step};
pub use semantics::Instance;

use xic_obs::Obs;

/// Flushes one solver query's outcome to `obs`: every `Implied` verdict
/// contributes its derivation length to the `implication.rules` counter
/// (each proof step is one axiom application). Callers hold the
/// `implication.query` span around the query itself.
fn record_verdict(obs: &Obs, verdict: &Verdict) {
    if let Verdict::Implied(p) = verdict {
        obs.add("implication.rules", p.steps.len() as u64);
    }
}

/// The verdict of an implication query.
#[derive(Clone, Debug)]
pub enum Verdict {
    /// `Σ ⊨ φ`, with a derivation in the relevant axiom system.
    Implied(Proof),
    /// `Σ ⊭ φ`; for finite-implication queries a finite countermodel is
    /// attached when one was constructed.
    NotImplied(Option<Instance>),
}

impl Verdict {
    /// True iff the verdict is `Implied`.
    pub fn is_implied(&self) -> bool {
        matches!(self, Verdict::Implied(_))
    }

    /// The attached proof, if implied.
    pub fn proof(&self) -> Option<&Proof> {
        match self {
            Verdict::Implied(p) => Some(p),
            Verdict::NotImplied(_) => None,
        }
    }

    /// The attached countermodel, if any.
    pub fn countermodel(&self) -> Option<&Instance> {
        match self {
            Verdict::Implied(_) => None,
            Verdict::NotImplied(m) => m.as_ref(),
        }
    }
}
