//! # xic — Integrity Constraints for XML
//!
//! A faithful, executable implementation of
//!
//! > Wenfei Fan and Jérôme Siméon. **Integrity Constraints for XML.**
//! > PODS 2000.
//!
//! The paper formalizes XML documents as *data trees*, DTDs as structure
//! plus integrity constraints (`DTD^C`), introduces three basic constraint
//! languages — relational-style **`L`** (multi-attribute keys / foreign
//! keys), native-XML **`L_u`** (unary keys, set-valued foreign keys,
//! inverse constraints) and object-style **`L_id`** (document-wide IDs,
//! references into IDs, inverses) — and settles their implication and
//! finite-implication problems. It then studies path functional,
//! inclusion and inverse constraints and their implication by `L_id`.
//!
//! This crate is the facade over the full workspace:
//!
//! | Module | Paper | Contents |
//! |---|---|---|
//! | [`model`] | §2.1 | data trees `(V, elem, att, root)` |
//! | [`regex`] | §2.2 | content models `α ::= S \| e \| ε \| α+α \| α,α \| α*`, automata, §3.4 unique-sub-element analysis |
//! | [`xml`] | §1 | from-scratch XML + DTD parsing/serialization |
//! | [`constraints`] | §2.2–2.4 | `DtdStructure`, the three constraint languages, `DTD^C`, the paper's running examples |
//! | [`validate`] | §2.3 | Definition 2.4 validity with structured violation reports |
//! | [`implication`] | §3 | `L_id`/`L_u`/primary-`L` solvers with machine-checkable derivations and countermodels; the chase for undecidable general `L` |
//! | [`paths`] | §4 | `paths(τ)`, `type(τ.ρ)`, the three path-constraint deciders, semantic evaluation |
//! | [`fo2`] | §1, Fig. 1 | 2-pebble EF games and the FO²-inexpressibility witness |
//! | [`legacy`] | §1 | constraint-preserving relational / object exports with generators |
//! | [`storage`] | — | durable state: versioned checksummed snapshots, the edit write-ahead log, warm start |
//!
//! ## Quickstart
//!
//! ```
//! use xic::prelude::*;
//!
//! // The paper's book DTD^C: structure + Σ (in L_u).
//! let dtdc = xic::constraints::examples::book_dtdc();
//!
//! // Parse the paper's running document and validate it.
//! let doc = parse_document(r#"
//!   <book>
//!     <entry isbn="1-55860-622-X">
//!       <title>Data on the Web</title><publisher>Morgan Kaufmann</publisher>
//!     </entry>
//!     <author>Abiteboul</author><author>Buneman</author><author>Suciu</author>
//!     <section sid="intro"><title>Introduction</title></section>
//!     <ref to="1-55860-622-X"/>
//!   </book>"#).unwrap();
//! // `to` is set-valued per the DTD; re-split it through the structure:
//! let report = validate(&doc.tree, &dtdc);
//! assert!(report.is_valid(), "{report}");
//!
//! // Implication: is `ref.to ⊆_S entry.isbn` redundant given Σ? (Yes: declared.)
//! let solver = LuSolver::new(dtdc.constraints()).unwrap();
//! let phi = Constraint::set_fk("ref", "to", "entry", "isbn");
//! assert!(solver.implies(&phi, LuMode::Finite).unwrap().is_implied());
//!
//! // Path reasoning: entry.isbn determines a book's authors (Prop 4.1).
//! let paths = PathSolver::new(&dtdc);
//! assert!(paths.functional_implied(
//!     &"book".into(), &Path::from("entry.isbn"), &Path::from("author")));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use xic_constraints as constraints;
pub use xic_fo2 as fo2;
pub use xic_implication as implication;
pub use xic_legacy as legacy;
pub use xic_model as model;
pub use xic_obs as obs;
pub use xic_paths as paths;
pub use xic_regex as regex;
pub use xic_storage as storage;
pub use xic_validate as validate_mod;
pub use xic_xml as xml;

pub use xic_validate::validate;

/// The most common imports, re-exported flat.
pub mod prelude {
    pub use xic_constraints::{
        AttrKind, AttrType, Constraint, DtdC, DtdStructure, Field, Incompatibility, Language,
    };
    pub use xic_fo2::{
        figure1, probes, two_pebble_equivalent, two_pebble_equivalent_bounded, Fo2, FoStructure,
    };
    pub use xic_implication::lu::Mode as LuMode;
    pub use xic_implication::{
        Chase, ChaseOutcome, Instance, LidSolver, LpSolver, LuSolver, Proof, Verdict,
    };
    pub use xic_legacy::{ObjSchema, RelSchema};
    pub use xic_model::{
        render_tree, AttrValue, DataTree, Edit, ExtIndex, Name, NodeId, RenderOptions, TreeBuilder,
    };
    pub use xic_obs::{
        current_request, request_scope, AccessLog, AccessRecord, Fanout, Histogram, Metrics,
        MetricsCollector, Obs, TraceCollector, TraceFilter,
    };
    pub use xic_paths::{ext_of_path, nodes_of, Path, PathConstraint, PathSolver};
    pub use xic_regex::{ContentModel, Dfa, Nfa, Symbol};
    pub use xic_storage::{
        decode_snapshot, encode_snapshot, read_snapshot, write_snapshot, DocStore, FsyncPolicy,
        Recovered, SnapshotStats, StorageError, Wal,
    };
    pub use xic_validate::{
        check_constraint, validate, BatchEdit, BatchError, EditOutcome, LiveState, LiveValidator,
        MatcherKind, Options, Report, ReportDiff, StateError, Validator, Violation,
    };
    pub use xic_xml::{
        constraints_to_xsd, parse_document, parse_dtd, parse_events, serialize_document,
        serialize_dtd, xsd_to_constraints, Event, EventParser, XsdExport,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_exposes_every_subsystem() {
        // One end-to-end pass touching each module.
        let dtdc = crate::constraints::examples::company_dtdc();
        let schema = ObjSchema::person_dept();
        assert_eq!(
            schema.to_dtdc().constraints().len(),
            dtdc.constraints().len()
        );
        let mut rng = {
            use rand::SeedableRng;
            rand::rngs::SmallRng::seed_from_u64(1)
        };
        let inst = schema.generate_instance(3, &mut rng);
        let tree = schema.export(&inst);
        assert!(validate(&tree, &dtdc).is_valid());
        let xml = serialize_document(&tree);
        let dtd_text = serialize_dtd(dtdc.structure());
        let round = parse_document(&format!("<!DOCTYPE db [\n{dtd_text}]>\n{xml}")).unwrap();
        assert_eq!(round.tree.len(), tree.len());
        let solver = LidSolver::new(dtdc.constraints(), Some(dtdc.structure()));
        assert!(solver
            .implies(&Constraint::Id {
                tau: "person".into()
            })
            .is_implied());
        let paths = PathSolver::new(&dtdc);
        assert!(paths.is_path(&"db".into(), &Path::from("dept.manager.name")));
        let (g, h) = figure1(2);
        assert!(two_pebble_equivalent(&g, &h));
    }
}
