//! Serializes the E11/E12 constraint-heavy workload: `gen <nodes> [seed]`
//! writes the document (DTD internal subset included) to stdout and the
//! constraint set Σ, one per line, to stderr. Heap totals for the run are
//! reported to stderr via the shared counting allocator.

xic::obs::install_counting_alloc!();

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().expect("gen <nodes> [seed]").parse().unwrap();
    let seed: u64 = args.next().map(|s| s.parse().unwrap()).unwrap_or(101);
    let (dtdc, tree) = xic_bench::constraint_heavy_workload(n, seed);
    for c in dtdc.constraints() {
        eprintln!("{c}");
    }
    println!(
        "<!DOCTYPE db [\n{}]>\n{}",
        xic::prelude::serialize_dtd(dtdc.structure()),
        xic::prelude::serialize_document(&tree)
    );
    let heap = xic::obs::alloc::stats();
    eprintln!(
        "# heap: {} acquisitions, {:.1} MB peak",
        heap.count,
        heap.peak as f64 / 1e6
    );
}
