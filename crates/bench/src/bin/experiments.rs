//! Reproduces experiments E1–E20 (see EXPERIMENTS.md): every theorem,
//! proposition and figure of Fan & Siméon (PODS 2000) as an executable
//! check with measured scaling, plus the compiled-engine study E11, the
//! streaming-pipeline study E12, the incremental-revalidation study E13,
//! the batch-edit/bulk-init study E17, the multi-tenant serve load
//! study E18, the durable-state warm-start study E19 and the
//! observability-overhead study E20.
//!
//! ```text
//! cargo run --release -p xic-bench --bin experiments [--smoke] [e1 e5 e11 ...]
//! ```
//!
//! With no arguments every experiment runs; otherwise only the named ones
//! (by id: `e1` … `e20`). `--smoke` restricts the document-scaling
//! experiments (E11/E12/E13/E15/E16/E17/E18/E19/E20) to one size so CI can run
//! them as a fast correctness check; under `--smoke`, E12 and E16 also fail
//! if measured streaming throughput drops below 0.8× the committed
//! `BENCH_validate.json` row for that size, and E17 fails if batched edits
//! fall below 2× the sequential per-edit loop at batch ≥ 100 or bulk init
//! exceeds 4× a full validation (the bench-regression gates). E18 drives
//! the multi-tenant `xic serve` daemon with an in-process load generator
//! and (on multi-core hosts, in either mode) asserts 4 docs × 4 clients
//! sustain ≥2× the serialized 1×1 aggregate edit throughput.
//! E19 gates the durable-state path: rebuilding validator state from a
//! decoded snapshot at ≤0.25× a cold boot at 10⁶ vertices (≤0.3× at the
//! smoke size), the end-to-end warm boot at ≤0.8× the cold boot, and
//! torn-tail crash recovery asserted byte-identical.
//! E20 gates the observability layer itself: the E18 load with the span
//! ring, request scoping and a sampled-at-1 access log enabled must
//! sustain ≥0.9× the untraced throughput, and one traced request's
//! drained `GET /trace` must stitch the accept → queue wait → route →
//! shard dispatch → batch → WAL append chain under a single request id.
//! E11, E12, E13, E16, E17, E18, E19 and E20 additionally record their
//! measured rows; when any of them runs, the merged baseline is written to
//! `target/BENCH_validate.json` (copy it over the tracked
//! `BENCH_validate.json` at the repository root to refresh the committed
//! baselines).
//!
//! Output format: one section per experiment with the paper's claim, the
//! correctness assertions (panics if any fails), and measured timing rows.
//! Linear-time claims are validated by the growth ratio between successive
//! problem-size doublings (≈2 for linear algorithms; constant-factor noise
//! is expected at small sizes).
//!
//! The binary installs a counting global allocator so E12 can report peak
//! heap above a baseline (the honest cost of each validation path, source
//! text excluded) without any platform-specific RSS probing.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use xic::implication::chase::ChaseLimits;
use xic::implication::lu::Mode;
use xic::prelude::*;
use xic_bench::*;

// Counting global allocator: tracks live/peak heap bytes and heap
// acquisitions through the process-wide [`xic::obs::alloc`] hooks, so E12
// can report peak heap per validation path (`reset_peak` / `peak_above`)
// and E16 can count acquisitions per node. Only binaries install it; the
// library crates stay `forbid(unsafe_code)`.
xic::obs::install_counting_alloc!();

use xic::obs::alloc as mem;

/// `--smoke`: clamp the scaling experiments to their smallest document
/// size (CI gate).
static SMOKE: AtomicBool = AtomicBool::new(false);

/// JSON fragments registered by experiments, merged into
/// `BENCH_validate.json` by `main` (key, JSON object source).
static SECTIONS: Mutex<Vec<(&'static str, String)>> = Mutex::new(Vec::new());

fn register_section(key: &'static str, json: String) {
    SECTIONS.lock().unwrap().push((key, json));
}

/// The document sizes E11/E12 sweep; `--smoke` keeps only the first.
fn scaling_sizes() -> &'static [usize] {
    if SMOKE.load(Ordering::Relaxed) {
        &[10_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    }
}

fn main() {
    let mut filters: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = filters.iter().position(|f| f == "--smoke") {
        filters.remove(i);
        SMOKE.store(true, Ordering::Relaxed);
    }
    let experiments: [(&str, fn()); 20] = [
        ("e1", e1_lid_linear),
        ("e2", e2_lu_linear_and_divergence),
        ("e3", e3_primary_coincide),
        ("e4", e4_chase_undecidability),
        ("e5", e5_lp_decidable),
        ("e6", e6_path_functional),
        ("e7", e7_path_inclusion),
        ("e8", e8_path_inverse),
        ("e9", e9_fo2_figure1),
        ("e10", e10_validation),
        ("e11", e11_validate_engine),
        ("e12", e12_stream_pipeline),
        ("e13", e13_incremental_revalidate),
        ("e14", e14_obs_overhead),
        ("e15", e15_telemetry_overhead),
        ("e16", e16_raw_speed),
        ("e17", e17_batch_propagation),
        ("e18", e18_serve_load),
        ("e19", e19_warm_start),
        ("e20", e20_obs_overhead),
    ];
    let known: Vec<&str> = experiments.iter().map(|(id, _)| *id).collect();
    for f in &filters {
        assert!(
            known.contains(&f.as_str()),
            "unknown experiment {f:?} (known: {})",
            known.join(", ")
        );
    }
    let mut ran = 0usize;
    for (id, run) in experiments {
        if filters.is_empty() || filters.iter().any(|f| f == id) {
            run();
            ran += 1;
        }
    }
    let sections = SECTIONS.lock().unwrap();
    if !sections.is_empty() {
        let body = sections
            .iter()
            .map(|(k, v)| format!("  \"{k}\": {v}"))
            .collect::<Vec<_>>()
            .join(",\n");
        let json = format!("{{\n{body}\n}}\n");
        // Scratch output lives under target/ so a run never dirties the
        // working tree; the tracked copy at the repo root is refreshed
        // deliberately.
        std::fs::create_dir_all("target").expect("create target/");
        std::fs::write("target/BENCH_validate.json", &json)
            .expect("write target/BENCH_validate.json");
        println!("\nbaselines written to target/BENCH_validate.json");
    }
    println!("\n{ran} experiment(s) completed with every assertion passing.");
}

fn heading(id: &str, claim: &str) {
    println!("\n════ {id} ════");
    println!("claim: {claim}");
}

/// E1 — Prop 3.1: `I_id` decides (finite) implication of `L_id` in linear
/// time.
fn e1_lid_linear() {
    heading(
        "E1 (Prop 3.1)",
        "L_id implication and finite implication decidable in linear time",
    );
    let mut r = rng(11);
    let mut prev: Option<f64> = None;
    for n in [1000usize, 2000, 4000, 8000, 16000] {
        let sigma = lid_sigma(n, &mut r);
        let queries = lid_queries(n);
        let t = time_min(5, || {
            let solver = LidSolver::new(&sigma, None);
            for q in &queries {
                std::hint::black_box(solver.holds(q));
            }
        });
        let ratio = prev.map(|p| t / p).unwrap_or(f64::NAN);
        println!(
            "  |Σ| = {n:6}   closure+queries = {:8.3} ms   per-constraint = {:6.1} ns   growth ×{ratio:.2}",
            t * 1e3,
            t * 1e9 / n as f64
        );
        prev = Some(t);
    }
    // Correctness spot-check on the paper's Σ_o.
    let d = xic::constraints::examples::company_dtdc();
    let solver = LidSolver::new(d.constraints(), Some(d.structure()));
    assert!(solver
        .implies(&Constraint::Id {
            tau: "person".into()
        })
        .is_implied());
}

/// E2 — Thm 3.2 / Cor 3.3: `I_u`/`I_u^f` decide in linear time; the two
/// problems differ.
fn e2_lu_linear_and_divergence() {
    heading(
        "E2 (Thm 3.2, Cor 3.3)",
        "L_u implication linear time; implication ≠ finite implication",
    );
    let mut prev: Option<f64> = None;
    for n in [500usize, 1000, 2000, 4000, 8000] {
        let (sigma, phi) = lu_chain(n);
        let t = time_min(5, || {
            let solver = LuSolver::new(&sigma).unwrap();
            assert!(solver.decide(&phi, Mode::Unrestricted).unwrap());
            assert!(solver.decide(&phi, Mode::Finite).unwrap());
        });
        let t_proof = time_min(5, || {
            let solver = LuSolver::new(&sigma).unwrap();
            let v = solver.implies(&phi, Mode::Unrestricted).unwrap();
            assert!(v.is_implied());
        });
        let ratio = prev.map(|p| t / p).unwrap_or(f64::NAN);
        println!(
            "  chain n = {n:5}   build+decide = {:8.3} ms (growth ×{ratio:.2})   with proof = {:8.3} ms",
            t * 1e3,
            t_proof * 1e3
        );
        prev = Some(t);
    }
    // Divergence (scaled): finitely implied, not unrestrictedly implied,
    // with a verified C_k derivation.
    for n in [1usize, 8, 64] {
        let (sigma, phi) = lu_cycle_family(n);
        let solver = LuSolver::new(&sigma).unwrap();
        let fin = solver.implies(&phi, Mode::Finite).unwrap();
        let unr = solver.implies(&phi, Mode::Unrestricted).unwrap();
        assert!(fin.is_implied() && !unr.is_implied(), "divergence at n={n}");
        fin.proof().unwrap().verify(&sigma, None).unwrap();
        println!(
            "  divergence family n = {n:3}: ⊨f yes (C_k proof, {} steps, verified), ⊨ no",
            fin.proof().unwrap().steps.len()
        );
    }
}

/// E3 — Thm 3.4 / Cor 3.5: under the primary-key restriction the two L_u
/// problems coincide.
fn e3_primary_coincide() {
    heading(
        "E3 (Thm 3.4, Cor 3.5)",
        "primary keys: implication and finite implication coincide",
    );
    let mut r = rng(33);
    let mut agreements = 0usize;
    let mut implied = 0usize;
    for _ in 0..2000 {
        use rand::Rng;
        let n_types = r.gen_range(2..6);
        let types: Vec<String> = (0..n_types).map(|i| format!("t{i}")).collect();
        let mut sigma: Vec<Constraint> = types
            .iter()
            .map(|t| Constraint::unary_key(t.as_str(), "k"))
            .collect();
        for _ in 0..r.gen_range(0..8) {
            let a = r.gen_range(0..n_types);
            let b = r.gen_range(0..n_types);
            sigma.push(Constraint::unary_fk(
                types[a].as_str(),
                "k",
                types[b].as_str(),
                "k",
            ));
        }
        let solver = LuSolver::new(&sigma).unwrap();
        solver.check_primary(None).unwrap();
        for a in 0..n_types {
            for b in 0..n_types {
                let phi = Constraint::unary_fk(types[a].as_str(), "k", types[b].as_str(), "k");
                let fin = solver.decide(&phi, Mode::Finite).unwrap();
                let unr = solver.decide(&phi, Mode::Unrestricted).unwrap();
                assert_eq!(fin, unr, "Thm 3.4 violated");
                agreements += 1;
                implied += usize::from(fin);
            }
        }
    }
    println!(
        "  {agreements} random primary queries: finite ≡ unrestricted on all ({implied} implied)"
    );
}

/// E4 — Thm 3.6 / Cor 3.7: general `L` implication is undecidable; the
/// chase is a sound semi-decision whose divergence is real.
fn e4_chase_undecidability() {
    heading(
        "E4 (Thm 3.6, Cor 3.7)",
        "general L undecidable: the chase semi-decides, and diverges on cyclic INDs",
    );
    // Terminating family: FK chains — the chase decides and agrees with
    // transitivity.
    let mut prev: Option<f64> = None;
    for n in [4usize, 8, 16, 32] {
        let (sigma, phi) = lp_chain(n, 2);
        let chase = Chase::new(&sigma, ChaseLimits::default()).unwrap();
        let t = time_min(3, || {
            assert!(chase.implies(&phi).is_implied());
        });
        let ratio = prev.map(|p| t / p).unwrap_or(f64::NAN);
        println!(
            "  terminating chain n = {n:3}: Implied in {:8.3} ms   growth ×{ratio:.2}",
            t * 1e3
        );
        prev = Some(t);
    }
    // Divergent family: key R[A], R[B] ⊆ R[A] — tuples breed forever; the
    // resource ceiling is always hit, at cost linear in the budget.
    let sigma = vec![
        Constraint::key("R", ["A"]),
        Constraint::fk("R", ["B"], "R", ["A"]),
    ];
    for budget in [100usize, 400, 1600] {
        let chase = Chase::new(
            &sigma,
            ChaseLimits {
                max_steps: budget,
                max_tuples: budget,
            },
        )
        .unwrap();
        let phi = Constraint::key("R", ["B"]);
        let start = std::time::Instant::now();
        let outcome = chase.implies(&phi);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        assert!(matches!(outcome, ChaseOutcome::ResourceLimit));
        println!("  divergent family, budget {budget:6}: ResourceLimit after {ms:9.3} ms");
    }
}

/// E5 — Thm 3.8 / Cor 3.9: primary multi-attribute keys+FKs decidable;
/// cost as key arity and chain length grow.
fn e5_lp_decidable() {
    heading(
        "E5 (Thm 3.8, Cor 3.9)",
        "primary keys + foreign keys: I_p sound/complete; both problems coincide and are decidable",
    );
    for arity in [1usize, 2, 4, 8] {
        let mut prev: Option<f64> = None;
        let mut row = format!("  arity {arity}: ");
        for n in [8usize, 16, 32, 64] {
            let (sigma, phi) = lp_chain(n, arity);
            let t = time_min(3, || {
                let solver = LpSolver::new(&sigma).unwrap();
                let v = solver.implies(&phi);
                assert!(v.is_implied());
            });
            let ratio = prev.map(|p| t / p).unwrap_or(f64::NAN);
            row.push_str(&format!("n={n}: {:7.2} ms (×{ratio:.1})  ", t * 1e3));
            prev = Some(t);
        }
        println!("{row}");
    }
    // Proofs verify, and reversals are refuted.
    let (sigma, phi) = lp_chain(12, 3);
    let solver = LpSolver::new(&sigma).unwrap();
    let v = solver.implies(&phi);
    v.proof().unwrap().verify(&sigma, None).unwrap();
    let back = Constraint::fk("r11", ["a0", "a1", "a2"], "r0", ["a0", "a1", "a2"]);
    assert!(!solver.implies(&back).is_implied());
    println!("  end-to-end I_p derivation verified; reverse composition correctly refuted");
}

/// E6 — Prop 4.1: path-functional implication in `O(|φ|(|Σ|+|P|))`.
fn e6_path_functional() {
    heading(
        "E6 (Prop 4.1)",
        "path functional constraints decidable in O(|φ|(|Σ|+|P|))",
    );
    let mut prev: Option<f64> = None;
    for depth in [50usize, 100, 200, 400, 800] {
        let d = nested_dtdc(depth);
        let solver = PathSolver::new(&d);
        let rho = spine(0, depth, true);
        let varrho = spine(0, depth / 2, false);
        let t = time_min(5, || {
            assert!(solver.functional_implied(&"r0".into(), &rho, &varrho));
        });
        let ratio = prev.map(|p| t / p).unwrap_or(f64::NAN);
        println!(
            "  depth (=|φ|≈|P|) {depth:4}: query {:8.3} µs   growth ×{ratio:.2}",
            t * 1e6
        );
        prev = Some(t);
    }
    // Negative control: a repeatable step breaks the key path.
    let d = xic::constraints::examples::book_dtdc();
    let solver = PathSolver::new(&d);
    assert!(!solver.functional_implied(
        &"book".into(),
        &Path::from("section.sid"),
        &Path::from("author")
    ));
}

/// E7 — Prop 4.2: path-inclusion implication in `O(|φ|(|Σ|+|P|))`.
fn e7_path_inclusion() {
    heading(
        "E7 (Prop 4.2)",
        "path inclusion constraints decidable in O(|φ|(|Σ|+|P|))",
    );
    let mut prev: Option<f64> = None;
    for depth in [50usize, 100, 200, 400, 800] {
        let d = nested_dtdc(depth);
        let solver = PathSolver::new(&d);
        let mid = depth / 2;
        let rho1 = spine(0, depth, false);
        let rho2 = spine(mid, depth, false);
        let tau2: Name = format!("r{mid}").as_str().into();
        let t = time_min(5, || {
            assert!(solver.inclusion_implied(&"r0".into(), &rho1, &tau2, &rho2));
        });
        let ratio = prev.map(|p| t / p).unwrap_or(f64::NAN);
        println!(
            "  depth {depth:4}: query {:8.3} µs   growth ×{ratio:.2}",
            t * 1e6
        );
        prev = Some(t);
    }
    // Negative control: wrong anchor type.
    let d = nested_dtdc(10);
    let solver = PathSolver::new(&d);
    assert!(!solver.inclusion_implied(
        &"r0".into(),
        &spine(0, 10, false),
        &"r3".into(),
        &spine(5, 10, false)
    ));
}

/// E8 — Prop 4.3: path-inverse implication in `O(|Σ||φ|)`.
fn e8_path_inverse() {
    heading(
        "E8 (Prop 4.3)",
        "path inverse constraints decidable in O(|Σ| |φ|)",
    );
    for n in [50usize, 100, 200] {
        let d = inverse_chain_dtdc(n);
        let solver = PathSolver::new(&d);
        let mut prev: Option<f64> = None;
        let mut row = format!("  |Σ| = {:4}: ", d.constraints().len());
        for k in [n / 4, n / 2, n] {
            let (t1, p1, t2, p2) = inverse_query(k);
            let t = time_min(5, || {
                assert!(solver.inverse_implied(&t1, &p1, &t2, &p2));
            });
            let ratio = prev.map(|p| t / p).unwrap_or(f64::NAN);
            row.push_str(&format!("|φ|={k:3}: {:8.3} µs (×{ratio:.1})  ", t * 1e6));
            prev = Some(t);
        }
        println!("{row}");
    }
    // Negative control: swapped labels are refuted.
    let d = inverse_chain_dtdc(8);
    let solver = PathSolver::new(&d);
    let (t1, p1, t2, _) = inverse_query(8);
    let bad = Path::new(std::iter::repeat_n("fwd", 8));
    assert!(!solver.inverse_implied(&t1, &p1, &t2, &bad));
}

/// E9 — Figure 1: `G ≡_FO² G'` yet the key constraint separates them.
fn e9_fo2_figure1() {
    heading(
        "E9 (Fig. 1)",
        "G ≡_FO² G' (2-pebble game) but τ.l → τ separates them: keys are not FO²-expressible",
    );
    for n in [2u32, 3, 4, 5] {
        let (g, h) = figure1(n);
        let start = std::time::Instant::now();
        let equiv = two_pebble_equivalent(&g, &h);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let kg = g.satisfies_unary_key("l");
        let kh = h.satisfies_unary_key("l");
        assert!(equiv && kg && !kh);
        println!(
            "  n={n}: |G|={:2} |G'|={:2}  game fixpoint in {ms:9.3} ms  ≡_FO²: {equiv}  G⊨φ: {kg}  G'⊨φ: {kh}",
            g.size, h.size
        );
    }
}

/// E10 — Definition 2.4 validation throughput on the paper's three
/// document families, with the matcher ablation (E10b).
fn e10_validation() {
    heading(
        "E10 (Fig. 2, §2.4)",
        "end-to-end validation of the paper's document families; matcher ablation",
    );
    for n in [100usize, 1000, 10000] {
        let (dtdc, tree) = company_workload(n, 77);
        let validator = Validator::new(&dtdc);
        let t = time_min(3, || {
            let r = validator.validate(&tree);
            assert!(r.is_valid());
        });
        println!(
            "  company   n = {n:6} ({:6} vertices): {:9.3} ms   {:7.0} vertices/ms",
            tree.len(),
            t * 1e3,
            tree.len() as f64 / (t * 1e3)
        );
    }
    for n in [100usize, 1000, 10000] {
        let (dtdc, tree) = publishers_workload(n, 78);
        let validator = Validator::new(&dtdc);
        let t = time_min(3, || {
            let r = validator.validate(&tree);
            assert!(r.is_valid());
        });
        println!(
            "  relational n = {n:6} ({:6} vertices): {:9.3} ms   {:7.0} vertices/ms",
            tree.len(),
            t * 1e3,
            tree.len() as f64 / (t * 1e3)
        );
    }
    // Ablation E10b: content-model matcher choice.
    let (dtdc, tree) = company_workload(2000, 79);
    for kind in [MatcherKind::Dfa, MatcherKind::Nfa, MatcherKind::Derivative] {
        let v = Validator::with_matcher(&dtdc, kind, Options::default());
        let t = time_min(3, || {
            assert!(v.validate_structure(&tree).is_valid());
        });
        println!(
            "  ablation E10b (structure only, n=2000): {kind:?} matcher {:9.3} ms",
            t * 1e3
        );
    }
    // XML round trip at scale (parser throughput).
    let (dtdc, tree) = company_workload(5000, 80);
    let xml = format!(
        "<!DOCTYPE db [\n{}]>\n{}",
        serialize_dtd(dtdc.structure()),
        serialize_document(&tree)
    );
    let t = time_min(3, || {
        let doc = parse_document(&xml).unwrap();
        assert_eq!(doc.tree.len(), tree.len());
    });
    println!(
        "  XML parse n = 5000 ({} bytes): {:9.3} ms   {:5.1} MB/s",
        xml.len(),
        t * 1e3,
        xml.len() as f64 / t / 1e6
    );
}

/// E11 — the compiled constraint engine: one-pass shared field extraction
/// vs per-constraint re-extraction, and thread scaling on large extents.
/// Registers its rows for `BENCH_validate.json`.
fn e11_validate_engine() {
    heading(
        "E11 (engine)",
        "compiled one-pass constraint engine vs per-constraint checking; 1/2/4-thread scaling",
    );
    let thread_counts = [1usize, 2, 4];
    let mut json_rows: Vec<String> = Vec::new();
    for &n in scaling_sizes() {
        let (dtdc, tree) = constraint_heavy_workload(n, 101);
        let nodes = tree.len();
        let reps = if n >= 1_000_000 { 3 } else { 5 };
        let t_naive = time_min(reps, || {
            let violations: usize = dtdc
                .constraints()
                .iter()
                .map(|c| check_constraint(&tree, &dtdc, c).len())
                .sum();
            assert_eq!(violations, 0);
        });
        let t_engine: Vec<f64> = thread_counts
            .iter()
            .map(|&threads| {
                let v = Validator::with_matcher(
                    &dtdc,
                    MatcherKind::Dfa,
                    Options::default().with_threads(threads),
                );
                time_min(reps, || assert!(v.validate_constraints(&tree).is_valid()))
            })
            .collect();
        println!(
            "  nodes = {nodes:8}  |Σ| = {}   per-constraint {:9.3} ms ({:9.0} nodes/s)",
            dtdc.constraints().len(),
            t_naive * 1e3,
            nodes as f64 / t_naive
        );
        for (&threads, &t) in thread_counts.iter().zip(&t_engine) {
            println!(
                "        engine t={threads}: {:9.3} ms ({:9.0} nodes/s)   ×{:.2} vs per-constraint   ×{:.2} vs t=1",
                t * 1e3,
                nodes as f64 / t,
                t_naive / t,
                t_engine[0] / t
            );
        }
        let engine_json = thread_counts
            .iter()
            .zip(&t_engine)
            .map(|(&threads, &t)| {
                format!(
                    "{{\"threads\": {threads}, \"seconds\": {t:.6}, \"nodes_per_sec\": {:.0}}}",
                    nodes as f64 / t
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        json_rows.push(format!(
            "    {{\"nodes\": {nodes}, \"constraints\": {}, \"per_constraint\": {{\"seconds\": {t_naive:.6}, \"nodes_per_sec\": {:.0}}}, \"engine\": [{engine_json}]}}",
            dtdc.constraints().len(),
            nodes as f64 / t_naive
        ));
    }
    register_section(
        "e11_validate_engine",
        format!(
            "{{\n    \"workload\": \"constraint_heavy_workload (supplier/part/order, 10 shared-field L_u constraints, seed 101)\",\n    \"rows\": [\n{}\n    ]\n  }}",
            json_rows.join(",\n")
        ),
    );
}

/// E12 — the streaming validation pipeline: `validate_stream` (one
/// bounded-memory pass over the source text, with an optional lexer
/// thread) against parse-then-validate, on the E11 workload serialized to
/// XML. Measures wall time and — via the counting allocator — peak heap
/// above the source text, and asserts the streaming path's memory
/// advantage at the largest size. Registers its rows for
/// `BENCH_validate.json`.
fn e12_stream_pipeline() {
    heading(
        "E12 (stream)",
        "streaming fused pass vs parse-then-validate: equal reports, bounded memory",
    );
    let baselines = std::fs::read_to_string("BENCH_validate.json").ok();
    let mut json_rows: Vec<String> = Vec::new();
    for &n in scaling_sizes() {
        let (dtdc, tree) = constraint_heavy_workload(n, 101);
        let nodes = tree.len();
        let src = format!(
            "<!DOCTYPE db [\n{}]>\n{}",
            serialize_dtd(dtdc.structure()),
            serialize_document(&tree)
        );
        drop(tree);
        let reps = if n >= 1_000_000 { 2 } else { 3 };

        // Tree path: parse into a DataTree, then validate it.
        let v = Validator::with_matcher(&dtdc, MatcherKind::Dfa, Options::default());
        let base = mem::reset_peak();
        let tree_report = {
            let doc = parse_document(&src).unwrap();
            v.validate(&doc.tree)
        };
        let tree_peak = mem::peak_above(base);
        let t_tree = time_min(reps, || {
            let doc = parse_document(&src).unwrap();
            assert!(v.validate(&doc.tree).is_valid());
        });

        // Streaming path, sequential and pipelined.
        let mut stream_json: Vec<String> = Vec::new();
        let mut stream_peak_t1 = 0u64;
        for threads in [1usize, 2] {
            let v = Validator::with_matcher(
                &dtdc,
                MatcherKind::Dfa,
                Options::default().with_threads(threads),
            );
            let base = mem::reset_peak();
            let stream_report = v.validate_stream(&src).unwrap();
            let peak = mem::peak_above(base);
            assert_eq!(
                tree_report.violations, stream_report.violations,
                "stream/tree divergence at n={n} t={threads}"
            );
            let t = time_min(reps, || {
                assert!(v.validate_stream(&src).unwrap().is_valid());
            });
            if threads == 1 {
                stream_peak_t1 = peak;
                smoke_regression_gate(
                    "e12_stream_pipeline",
                    nodes,
                    nodes as f64 / t,
                    baselines.as_deref().and_then(|b| {
                        stream_baseline_nodes_per_sec(b, "e12_stream_pipeline", nodes)
                    }),
                );
            }
            println!(
                "  nodes = {nodes:8}  stream t={threads}: {:9.3} ms ({:9.0} nodes/s)   peak {:8.2} MB   ×{:.1} less memory",
                t * 1e3,
                nodes as f64 / t,
                peak as f64 / 1e6,
                tree_peak as f64 / peak.max(1) as f64
            );
            stream_json.push(format!(
                "{{\"threads\": {threads}, \"seconds\": {t:.6}, \"nodes_per_sec\": {:.0}, \"peak_heap_bytes\": {peak}}}",
                nodes as f64 / t
            ));
        }
        println!(
            "  nodes = {nodes:8}  tree path : {:9.3} ms ({:9.0} nodes/s)   peak {:8.2} MB   ({} source bytes)",
            t_tree * 1e3,
            nodes as f64 / t_tree,
            tree_peak as f64 / 1e6,
            src.len()
        );
        // The headline claim: at scale the fused pass holds a small
        // fraction of the tree path's working set.
        if n >= 1_000_000 {
            assert!(
                tree_peak as f64 >= 2.0 * stream_peak_t1 as f64,
                "expected ≥2× peak-memory reduction at n={n}: tree {tree_peak} vs stream {stream_peak_t1}"
            );
        }
        json_rows.push(format!(
            "      {{\"nodes\": {nodes}, \"source_bytes\": {}, \"tree\": {{\"seconds\": {t_tree:.6}, \"nodes_per_sec\": {:.0}, \"peak_heap_bytes\": {tree_peak}}}, \"stream\": [{}]}}",
            src.len(),
            nodes as f64 / t_tree,
            stream_json.join(", ")
        ));
    }
    register_section(
        "e12_stream_pipeline",
        format!(
            "{{\n    \"workload\": \"constraint_heavy_workload serialized with its DTD as internal subset (seed 101)\",\n    \"rows\": [\n{}\n    ]\n  }}",
            json_rows.join(",\n")
        ),
    );
}

/// E13 — incremental revalidation: a [`LiveValidator`] absorbing typed
/// edit deltas against full from-scratch revalidation, across edit-batch
/// sizes, on the E11 workload. Verifies byte-identical reports against
/// the from-scratch engine after every edit of a mixed script (smallest
/// size), exercises the violation diff on a break/repair episode, and at
/// 10⁶ vertices asserts the headline ≥10× single-edit speedup. Registers
/// its rows for `BENCH_validate.json`.
fn e13_incremental_revalidate() {
    heading(
        "E13 (incremental)",
        "incremental revalidation under edits: per-edit cost vs full revalidate, violation diffs",
    );
    use rand::Rng;
    use xic::model::Child;
    let batch_sizes = [1usize, 10, 100];
    let mut json_rows: Vec<String> = Vec::new();
    for &n in scaling_sizes() {
        let (dtdc, tree) = constraint_heavy_workload(n, 101);
        let nodes = tree.len();
        let rows = (n / 4).max(1);
        let reps = if n >= 1_000_000 { 3 } else { 5 };
        let v = Validator::with_matcher(&dtdc, MatcherKind::Dfa, Options::default());
        let t_full = time_min(reps, || assert!(v.validate(&tree).is_valid()));

        // Correctness gate at the smallest size (runs under --smoke): a
        // mixed edit script, cross-checked against from-scratch validation
        // after every single edit.
        if n == scaling_sizes()[0] {
            let (_, fresh_tree) = constraint_heavy_workload(n, 101);
            let mut live = LiveValidator::new(&v, fresh_tree);
            let mut r = rng(202);
            let orders: Vec<NodeId> = live.tree().ext("order").collect();
            for i in 0..20usize {
                let o = orders[r.gen_range(0..orders.len())];
                match i % 4 {
                    0 => {
                        live.set_attr(
                            o,
                            "sup",
                            AttrValue::single(format!("s{}", r.gen_range(0..rows))),
                        )
                        .unwrap();
                    }
                    1 => {
                        live.set_attr(
                            o,
                            "part",
                            AttrValue::single(format!("p{}", r.gen_range(0..rows))),
                        )
                        .unwrap();
                    }
                    2 => {
                        // A dangling reference: raises, next round repairs.
                        live.set_attr(o, "sup", AttrValue::single("s-dangling"))
                            .unwrap();
                    }
                    _ => {
                        let memo = live
                            .tree()
                            .node(o)
                            .children
                            .iter()
                            .find_map(|c| match c {
                                Child::Node(m) => Some(*m),
                                Child::Text(_) => None,
                            })
                            .expect("order has a memo child");
                        live.set_text(memo, 0, format!("m{}", r.gen_range(0..rows)))
                            .unwrap();
                    }
                }
                let fresh = v.validate(live.tree());
                assert_eq!(
                    live.report().violations,
                    fresh.violations,
                    "incremental/from-scratch divergence after edit {i}"
                );
            }
            println!("  nodes = {nodes:8}  20-edit mixed script: report byte-identical to from-scratch after every edit");
        }

        let start = std::time::Instant::now();
        let mut live = LiveValidator::new(&v, tree);
        let t_init = start.elapsed().as_secs_f64();

        // The violation diff: break one foreign key, then repair it.
        let orders: Vec<NodeId> = live.tree().ext("order").collect();
        let broken = live
            .set_attr(orders[0], "sup", AttrValue::single("s-nowhere"))
            .unwrap();
        assert!(
            !broken.diff.raised.is_empty(),
            "dangling FK must raise a violation"
        );
        let repaired = live
            .set_attr(orders[0], "sup", AttrValue::single("s0"))
            .unwrap();
        assert!(
            !repaired.diff.cleared.is_empty() && repaired.diff.raised.is_empty(),
            "repair must clear the raised violation"
        );

        println!(
            "  nodes = {nodes:8}  full validate {:9.3} ms   live init {:9.3} ms   diff: break +{} / repair -{}",
            t_full * 1e3,
            t_init * 1e3,
            broken.diff.raised.len(),
            repaired.diff.cleared.len()
        );

        let mut r = rng(303);
        let mut batch_json: Vec<String> = Vec::new();
        let mut single_edit_speedup = f64::NAN;
        for &batch in &batch_sizes {
            let mut best = f64::INFINITY;
            for _ in 0..reps {
                let edits: Vec<(NodeId, String)> = (0..batch)
                    .map(|_| {
                        (
                            orders[r.gen_range(0..orders.len())],
                            format!("s{}", r.gen_range(0..rows)),
                        )
                    })
                    .collect();
                let start = std::time::Instant::now();
                for (o, sup) in &edits {
                    let out = live
                        .set_attr(*o, "sup", AttrValue::single(sup.clone()))
                        .unwrap();
                    std::hint::black_box(&out);
                }
                best = best.min(start.elapsed().as_secs_f64() / batch as f64);
            }
            let speedup = t_full / best;
            if batch == 1 {
                single_edit_speedup = speedup;
            }
            println!(
                "        batch {batch:4}: {:9.3} µs/edit   ×{speedup:9.0} vs full revalidate",
                best * 1e6
            );
            batch_json.push(format!(
                "{{\"batch\": {batch}, \"seconds_per_edit\": {best:.9}, \"speedup_vs_full\": {speedup:.1}}}"
            ));
        }
        // The headline claim: at 10⁶ vertices a single edit revalidates
        // ≥10× faster than a from-scratch pass (in practice far more).
        if n >= 1_000_000 {
            assert!(
                single_edit_speedup >= 10.0,
                "expected ≥10× single-edit speedup at n={n}, got ×{single_edit_speedup:.1}"
            );
        }
        json_rows.push(format!(
            "      {{\"nodes\": {nodes}, \"full_validate_seconds\": {t_full:.6}, \"live_init_seconds\": {t_init:.6}, \"incremental\": [{}]}}",
            batch_json.join(", ")
        ));
    }
    register_section(
        "e13_incremental",
        format!(
            "{{\n    \"workload\": \"constraint_heavy_workload; random order.sup retargets through LiveValidator (seed 101/303)\",\n    \"rows\": [\n{}\n    ]\n  }}",
            json_rows.join(",\n")
        ),
    );
}

/// The recorded E11 sequential (threads = 1) throughput for `nodes`, from
/// the tracked `BENCH_validate.json` at the repository root, if present.
/// A deliberately narrow scanner for this repo's own baseline format.
fn e11_baseline_nodes_per_sec(baselines: &str, nodes: usize) -> Option<f64> {
    let row = baselines.find(&format!("\"nodes\": {nodes},"))?;
    let engine = baselines[row..].find("\"engine\":")? + row;
    let t1 = baselines[engine..].find("\"threads\": 1,")? + engine;
    let key = "\"nodes_per_sec\": ";
    let nps = baselines[t1..].find(key)? + t1 + key.len();
    let end = baselines[nps..].find(['}', ','])? + nps;
    baselines[nps..end].trim().parse().ok()
}

/// E14 — the observability layer (DESIGN §4.10): free when off, inert
/// when on. The disabled `Obs` handle must hold the E11 sequential
/// throughput recorded in `BENCH_validate.json` (the pre-instrumentation
/// baselines), and attaching a `MetricsCollector` must leave the
/// violation report byte-identical while producing a phase breakdown
/// whose spans nest inside the wall clock. Registers its rows for
/// `BENCH_validate.json`.
fn e14_obs_overhead() {
    heading(
        "E14 (obs)",
        "observability: disabled handle at E11-baseline throughput; collector inert",
    );
    let baselines = std::fs::read_to_string("BENCH_validate.json").ok();
    let mut json_rows: Vec<String> = Vec::new();
    for &n in scaling_sizes() {
        let (dtdc, tree) = constraint_heavy_workload(n, 101);
        let nodes = tree.len();
        let reps = if n >= 1_000_000 { 3 } else { 5 };
        let opts = Options::default().with_threads(1);
        let off = Validator::with_matcher(&dtdc, MatcherKind::Dfa, opts);
        let t_off = time_min(reps, || {
            assert!(off.validate_constraints(&tree).is_valid());
        });
        let collector = MetricsCollector::shared();
        let on = Validator::with_matcher(&dtdc, MatcherKind::Dfa, opts)
            .with_obs(Obs::new(collector.clone()));
        let t_on = time_min(reps, || {
            assert!(on.validate_constraints(&tree).is_valid());
        });

        // Inert when on: byte-identical reports, and a snapshot whose
        // counters match the document and whose phases nest inside the
        // wall clock (sequential run).
        let plain = off.validate(&tree);
        let observed = on.validate(&tree);
        assert_eq!(plain.violations, observed.violations);
        assert!(plain.metrics.is_none());
        let m = observed.metrics.expect("collector attached => snapshot");
        assert_eq!(m.counter("nodes"), nodes as u64);
        assert_eq!(m.counter("violations"), 0);
        let phase_sum: u64 = ["structure", "plan", "check", "merge"]
            .iter()
            .map(|p| m.span(p).nanos)
            .sum();
        assert!(
            phase_sum <= m.wall_nanos,
            "phase sum {phase_sum} > wall {} at n={n}",
            m.wall_nanos
        );

        let overhead_on = t_on / t_off;
        println!(
            "  nodes = {nodes:8}   obs off: {:9.3} ms ({:9.0} nodes/s)   obs on: {:9.3} ms   ×{overhead_on:.3} on/off",
            t_off * 1e3,
            nodes as f64 / t_off,
            t_on * 1e3
        );
        let vs_baseline = baselines
            .as_deref()
            .and_then(|b| e11_baseline_nodes_per_sec(b, nodes))
            .map(|base| {
                let ratio = (nodes as f64 / t_off) / base;
                println!(
                    "        vs recorded E11 t=1 baseline ({base:.0} nodes/s): ×{ratio:.3} (target ≥0.98)"
                );
                // The 2% budget, with headroom for timer noise between
                // runs; the recorded ratio is the honest number.
                assert!(
                    ratio >= 0.90,
                    "disabled-collector throughput fell to ×{ratio:.3} of the E11 baseline at n={n}"
                );
                ratio
            });
        json_rows.push(format!(
            "      {{\"nodes\": {nodes}, \"off_seconds\": {t_off:.6}, \"off_nodes_per_sec\": {:.0}, \"on_seconds\": {t_on:.6}, \"on_over_off\": {overhead_on:.4}, \"off_over_e11_baseline\": {}}}",
            nodes as f64 / t_off,
            vs_baseline.map_or("null".to_string(), |r| format!("{r:.4}"))
        ));
    }
    register_section(
        "e14_obs_overhead",
        format!(
            "{{\n    \"workload\": \"constraint_heavy_workload, threads = 1, collector off vs MetricsCollector attached\",\n    \"rows\": [\n{}\n    ]\n  }}",
            json_rows.join(",\n")
        ),
    );
}

/// E15 — the telemetry extensions (DESIGN §4.11): latency histograms and
/// the trace-event ring cost nothing when absent and stay within the E14
/// overhead budget when attached. Three configurations per size on the
/// E11 workload: no collector, a histogram-recording
/// [`MetricsCollector`], and a [`TraceCollector`] ring. The within-run
/// histogram-on/off ratio is gated (the budget claim); the recorded E11
/// sequential baseline is compared with a gross-regression tripwire
/// (E14 owns the tight disabled-handle gate); the histogram snapshot
/// and the ring must actually contain the run. Registers its rows for
/// `BENCH_validate.json`.
fn e15_telemetry_overhead() {
    heading(
        "E15 (telemetry)",
        "histograms + trace ring: within the E14 budget, distributions recorded",
    );
    let baselines = std::fs::read_to_string("BENCH_validate.json").ok();
    let mut json_rows: Vec<String> = Vec::new();
    for &n in scaling_sizes() {
        let (dtdc, tree) = constraint_heavy_workload(n, 101);
        let nodes = tree.len();
        let reps = if n >= 1_000_000 { 3 } else { 5 };
        let opts = Options::default().with_threads(1);

        let off = Validator::with_matcher(&dtdc, MatcherKind::Dfa, opts);
        let t_off = time_min(reps, || {
            assert!(off.validate_constraints(&tree).is_valid());
        });

        let hist_collector = MetricsCollector::shared_with_histograms();
        let hist = Validator::with_matcher(&dtdc, MatcherKind::Dfa, opts)
            .with_obs(Obs::new(hist_collector.clone()));
        let t_hist = time_min(reps, || {
            assert!(hist.validate_constraints(&tree).is_valid());
        });

        let ring = std::sync::Arc::new(TraceCollector::new());
        let trace =
            Validator::with_matcher(&dtdc, MatcherKind::Dfa, opts).with_obs(Obs::new(ring.clone()));
        let t_trace = time_min(reps, || {
            assert!(trace.validate_constraints(&tree).is_valid());
        });

        // The collectors observed the runs they were attached to: the
        // check family carries a latency distribution (one sample per
        // per-constraint check span), and the ring holds raw events.
        let m = hist_collector.snapshot();
        let h = m.hist("check").expect("check histogram recorded");
        assert!(h.count > 0, "empty check histogram at n={n}");
        assert!(h.max >= h.quantile(0.5), "histogram max below its median");
        assert!(!ring.events().is_empty(), "trace ring stayed empty");
        assert!(ring.events().iter().any(|e| e.name == "check"));

        let hist_over_off = t_hist / t_off;
        let trace_over_off = t_trace / t_off;
        println!(
            "  nodes = {nodes:8}   off: {:9.3} ms ({:9.0} nodes/s)   hist: {:9.3} ms (×{hist_over_off:.3})   trace: {:9.3} ms (×{trace_over_off:.3})",
            t_off * 1e3,
            nodes as f64 / t_off,
            t_hist * 1e3,
            t_trace * 1e3
        );
        // The budget claim of this experiment is *within-run*: attaching
        // the histogram-recording collector to the very validator just
        // timed bare. The 2% budget, with headroom for timer noise; the
        // recorded ratio is the honest number.
        assert!(
            hist_over_off <= 1.10,
            "histogram recording cost ×{hist_over_off:.3} over the bare run at n={n}"
        );
        let base = baselines
            .as_deref()
            .and_then(|b| e11_baseline_nodes_per_sec(b, nodes));
        let off_ratio = base.map(|base| {
            let ratio = (nodes as f64 / t_off) / base;
            println!(
                "        off  vs recorded E11 t=1 baseline ({base:.0} nodes/s): ×{ratio:.3} (target ≥0.98)"
            );
            // E14 gates the disabled handle against the baselines at
            // 0.90; consecutive minima within one process drift ~8% at
            // 10⁶ on this host, so repeating that gate here would only
            // add flake. Keep a gross-regression tripwire and record
            // the honest ratio.
            assert!(
                ratio >= 0.75,
                "disabled-handle throughput fell to ×{ratio:.3} of the E11 baseline at n={n}"
            );
            ratio
        });
        let hist_ratio = base.map(|base| {
            let ratio = (nodes as f64 / t_hist) / base;
            println!(
                "        hist vs recorded E11 t=1 baseline ({base:.0} nodes/s): ×{ratio:.3} (target ≥0.98)"
            );
            assert!(
                ratio >= 0.75,
                "histogram-on throughput fell to ×{ratio:.3} of the E11 baseline at n={n}"
            );
            ratio
        });
        json_rows.push(format!(
            "      {{\"nodes\": {nodes}, \"off_seconds\": {t_off:.6}, \"hist_seconds\": {t_hist:.6}, \"trace_seconds\": {t_trace:.6}, \"hist_over_off\": {hist_over_off:.4}, \"trace_over_off\": {trace_over_off:.4}, \"off_over_e11_baseline\": {}, \"hist_over_e11_baseline\": {}}}",
            off_ratio.map_or("null".to_string(), |r| format!("{r:.4}")),
            hist_ratio.map_or("null".to_string(), |r| format!("{r:.4}"))
        ));
    }
    register_section(
        "e15_telemetry_overhead",
        format!(
            "{{\n    \"workload\": \"constraint_heavy_workload, threads = 1: no collector vs histogram-recording MetricsCollector vs TraceCollector ring\",\n    \"rows\": [\n{}\n    ]\n  }}",
            json_rows.join(",\n")
        ),
    );
}

/// The sequential (threads = 1) streaming `nodes_per_sec` recorded for
/// `nodes` under JSON key `section` in the tracked `BENCH_validate.json`,
/// if present. Same narrow-scanner approach as
/// [`e11_baseline_nodes_per_sec`], but section-scoped so E12 and E16 each
/// gate against their own committed rows.
fn stream_baseline_nodes_per_sec(baselines: &str, section: &str, nodes: usize) -> Option<f64> {
    let sec = baselines.find(&format!("\"{section}\""))?;
    let row = baselines[sec..].find(&format!("\"nodes\": {nodes},"))? + sec;
    let t1 = baselines[row..].find("\"threads\": 1,")? + row;
    let key = "\"nodes_per_sec\": ";
    let nps = baselines[t1..].find(key)? + t1 + key.len();
    let end = baselines[nps..].find(['}', ','])? + nps;
    baselines[nps..end].trim().parse().ok()
}

/// Under `--smoke`, fails the run if `measured` nodes/s falls below 0.8×
/// the committed baseline row (the CI bench-regression gate); outside
/// smoke the comparison is printed but informational, since the full
/// sweep exists to *refresh* the baselines.
fn smoke_regression_gate(section: &str, nodes: usize, measured: f64, baseline: Option<f64>) {
    let Some(base) = baseline else { return };
    let ratio = measured / base;
    println!(
        "        vs committed {section} t=1 baseline ({base:.0} nodes/s): ×{ratio:.3} (smoke gate ≥0.8)"
    );
    if SMOKE.load(Ordering::Relaxed) {
        assert!(
            ratio >= 0.8,
            "{section} streaming throughput regressed to ×{ratio:.3} of the committed \
             baseline at n={nodes}: {measured:.0} vs {base:.0} nodes/s"
        );
    }
}

/// The E12 sequential streaming throughput at 10⁶ nodes committed before
/// the raw-speed pass landed (byte-level lexing, zero-copy interning,
/// cache-conscious columns): 296 062 nodes/s, 3.378 s wall. E16's
/// headline assertion is measured against this fixed reference, not the
/// rolling baseline file — refreshing `BENCH_validate.json` must not
/// weaken the claim.
const E16_PRE_OPT_NODES_PER_SEC: f64 = 296_062.0;

/// E16 — the raw-speed pass (DESIGN §4.12): byte-level event lexing,
/// zero-copy arena interning and struct-of-arrays columns. Asserts the
/// fused streaming pass holds ≥2× the pre-optimization E12 sequential
/// throughput at 10⁶ nodes, that its steady-state heap traffic stays
/// bounded per node (no per-element allocation), and that reports remain
/// identical to the tree engine at threads 1, 2 and 4. Registers its rows
/// for `BENCH_validate.json`; under `--smoke` the smallest size doubles
/// as the bench-regression gate against the committed rows.
fn e16_raw_speed() {
    heading(
        "E16 (raw speed)",
        "byte lexer + arena interner + SoA columns: ≥2× pre-optimization streaming throughput, O(1) allocations/node",
    );
    let baselines = std::fs::read_to_string("BENCH_validate.json").ok();
    let mut json_rows: Vec<String> = Vec::new();
    for &n in scaling_sizes() {
        let (dtdc, tree) = constraint_heavy_workload(n, 101);
        let nodes = tree.len();
        let src = format!(
            "<!DOCTYPE db [\n{}]>\n{}",
            serialize_dtd(dtdc.structure()),
            serialize_document(&tree)
        );
        let reps = if n >= 1_000_000 { 2 } else { 3 };

        // Reference report from the tree engine (already-parsed input).
        let vt = Validator::with_matcher(&dtdc, MatcherKind::Dfa, Options::default());
        let tree_report = vt.validate(&tree);
        drop(tree);

        // Lexer leg in isolation: drain the event stream.
        let mut events = 0u64;
        let t_lex = time_min(reps, || {
            let mut count = 0u64;
            for ev in parse_events(&src) {
                ev.expect("workload is well-formed");
                count += 1;
            }
            events = count;
        });

        // Equivalence at every thread count, and heap traffic of one
        // sequential fused pass (count delta via the allocator hooks).
        let mut allocs = 0u64;
        for threads in [1usize, 2, 4] {
            let v = Validator::with_matcher(
                &dtdc,
                MatcherKind::Dfa,
                Options::default().with_threads(threads),
            );
            let before = xic::obs::alloc::stats().count;
            let stream_report = v.validate_stream(&src).unwrap();
            if threads == 1 {
                allocs = xic::obs::alloc::stats().count - before;
            }
            assert_eq!(
                tree_report.violations, stream_report.violations,
                "stream/tree divergence at n={n} t={threads}"
            );
        }
        let allocs_per_node = allocs as f64 / nodes as f64;
        // "No per-element allocation in the streaming frames": the whole
        // fused pass — lexing, interning, column fill, checking — must
        // average out to a handful of acquisitions per node. The measured
        // figure is well under 2; the bound leaves room for allocator and
        // workload drift while still forbidding a per-event Vec or String.
        assert!(
            allocs_per_node < 6.0,
            "heap traffic regressed: {allocs_per_node:.2} allocations/node at n={n}"
        );

        // Sequential throughput: the headline number.
        let v1 =
            Validator::with_matcher(&dtdc, MatcherKind::Dfa, Options::default().with_threads(1));
        let t1 = time_min(reps, || {
            assert!(v1.validate_stream(&src).unwrap().is_valid());
        });
        let nps = nodes as f64 / t1;
        println!(
            "  nodes = {nodes:8}  lex only: {:9.3} ms ({:10.0} events/s)   fused t=1: {:9.3} ms ({:9.0} nodes/s)   {allocs_per_node:.2} allocs/node",
            t_lex * 1e3,
            events as f64 / t_lex,
            t1 * 1e3,
            nps
        );
        smoke_regression_gate(
            "e16_raw_speed",
            nodes,
            nps,
            baselines
                .as_deref()
                .and_then(|b| stream_baseline_nodes_per_sec(b, "e16_raw_speed", nodes)),
        );
        let mut speedup_field = "null".to_string();
        if n >= 1_000_000 {
            let speedup = nps / E16_PRE_OPT_NODES_PER_SEC;
            println!(
                "        vs pre-optimization E12 baseline ({E16_PRE_OPT_NODES_PER_SEC:.0} nodes/s): ×{speedup:.2} (target ≥2.0)"
            );
            assert!(
                speedup >= 2.0,
                "raw-speed pass below the headline claim: ×{speedup:.2} of {E16_PRE_OPT_NODES_PER_SEC:.0} nodes/s"
            );
            speedup_field = format!("{speedup:.3}");
        }
        json_rows.push(format!(
            "      {{\"nodes\": {nodes}, \"lex\": {{\"seconds\": {t_lex:.6}, \"events\": {events}, \"events_per_sec\": {:.0}}}, \"stream\": [{{\"threads\": 1, \"seconds\": {t1:.6}, \"nodes_per_sec\": {nps:.0}}}], \"allocs_per_node\": {allocs_per_node:.3}, \"speedup_vs_pre_opt\": {speedup_field}}}",
            events as f64 / t_lex
        ));
    }
    register_section(
        "e16_raw_speed",
        format!(
            "{{\n    \"workload\": \"constraint_heavy_workload serialized with its DTD as internal subset (seed 101); pre-optimization reference {E16_PRE_OPT_NODES_PER_SEC:.0} nodes/s at 10^6\",\n    \"rows\": [\n{}\n    ]\n  }}",
            json_rows.join(",\n")
        ),
    );
}

/// The E17 document sizes. The batch/init study needs its own sweep: the
/// `--smoke` size is 10⁵ (not 10⁴) because the CI thresholds below are
/// meaningless on documents small enough for constant factors to dominate.
fn e17_sizes() -> &'static [usize] {
    if SMOKE.load(Ordering::Relaxed) {
        &[100_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    }
}

/// E17 — differential batch propagation and bulk warm init (DESIGN §4.13).
///
/// Two claims. **Init**: `LiveValidator::new` bulk-loads its columns,
/// occurrence maps and constraint tables, and must cost ≤2× a full
/// `Validator::validate` of the same tree at 10⁶ vertices (≤4× at the 10⁵
/// smoke size). Both sides are measured best-of-reps in the same process,
/// so machine noise cancels out of the ratio. **Batching**:
/// `apply_batch` must beat the equivalent sequential per-edit loop ≥5× in
/// µs/edit at 10⁶ vertices for batches ≥ 100 on the burst stream (edits
/// concentrated on `batch/8` vertices, where last-writer-wins coalescing
/// and per-group propagation pay off; ≥2× at the smoke size), with the
/// batched validator's report byte-identical to the sequential one after
/// every batch and to a from-scratch validation at the smallest size.
/// Also pins the satellite metrics contract: a batch's `ReportDiff`
/// carries both `edit.count` (raw) and `edit.coalesced` (surviving after
/// coalescing). Registers its rows for `BENCH_validate.json`.
fn e17_batch_propagation() {
    heading(
        "E17 (batch edits)",
        "apply_batch ≥5× sequential µs/edit at batch ≥100 (10⁶, burst); bulk init ≤2× full validate",
    );
    use rand::Rng;
    let batch_sizes = [1usize, 10, 100, 1000];
    let mut json_rows: Vec<String> = Vec::new();
    for &n in e17_sizes() {
        let (dtdc, tree) = constraint_heavy_workload(n, 101);
        let nodes = tree.len();
        let rows = (n / 4).max(1);
        let reps = if n >= 1_000_000 { 3 } else { 5 };
        let v = Validator::with_matcher(&dtdc, MatcherKind::Dfa, Options::default());
        let t_full = time_min(reps, || assert!(v.validate(&tree).is_valid()));

        // Warm init, best-of-reps (the clone stays outside the timer).
        let mut t_init = f64::INFINITY;
        let mut live = None;
        for _ in 0..reps {
            let copy = tree.clone();
            let start = std::time::Instant::now();
            let lv = LiveValidator::new(&v, copy);
            t_init = t_init.min(start.elapsed().as_secs_f64());
            live = Some(lv);
        }
        let mut live = live.expect("reps >= 1");
        let init_ratio = t_init / t_full;
        println!(
            "  nodes = {nodes:8}  full validate {:9.3} ms   bulk init {:9.3} ms   ratio ×{init_ratio:.2}",
            t_full * 1e3,
            t_init * 1e3
        );
        if n >= 1_000_000 {
            assert!(
                init_ratio <= 2.0,
                "bulk init above target at n={n}: ×{init_ratio:.2} of full validate (target ≤2)"
            );
        }
        if SMOKE.load(Ordering::Relaxed) {
            assert!(
                init_ratio <= 4.0,
                "bulk init smoke gate at n={n}: ×{init_ratio:.2} of full validate (gate ≤4)"
            );
        }

        // Sequential edits drive `live`; batches drive `live_b`. Both see
        // the same edit sequence, so their reports must stay identical at
        // every batch boundary.
        let mut live_b = LiveValidator::new(&v, tree);
        let orders: Vec<NodeId> = live.tree().ext("order").collect();
        let mut r = rng(303);
        let mut stream_json: Vec<String> = Vec::new();
        for (stream, burst) in [("uniform", false), ("burst", true)] {
            let mut batch_json: Vec<String> = Vec::new();
            for &batch in &batch_sizes {
                let span = if burst {
                    (batch / 8).max(1)
                } else {
                    orders.len()
                };
                let (mut best_seq, mut best_bat) = (f64::INFINITY, f64::INFINITY);
                for rep in 0..reps {
                    let edits: Vec<(NodeId, String)> = (0..batch)
                        .map(|_| {
                            (
                                orders[r.gen_range(0..span)],
                                format!("s{}", r.gen_range(0..rows)),
                            )
                        })
                        .collect();
                    let start = std::time::Instant::now();
                    for (o, sup) in &edits {
                        let out = live
                            .set_attr(*o, "sup", AttrValue::single(sup.clone()))
                            .unwrap();
                        std::hint::black_box(&out);
                    }
                    best_seq = best_seq.min(start.elapsed().as_secs_f64() / batch as f64);
                    let reqs: Vec<BatchEdit> = edits
                        .iter()
                        .map(|(o, sup)| BatchEdit::SetAttr {
                            node: *o,
                            attr: "sup".into(),
                            value: AttrValue::single(sup.clone()),
                        })
                        .collect();
                    let start = std::time::Instant::now();
                    let diff = live_b.apply_batch(&reqs).unwrap();
                    best_bat = best_bat.min(start.elapsed().as_secs_f64() / batch as f64);
                    std::hint::black_box(&diff);
                    assert_eq!(
                        live.report().violations,
                        live_b.report().violations,
                        "batched/sequential divergence at n={n} {stream} batch={batch} rep={rep}"
                    );
                }
                // From-scratch cross-check where a full validation is
                // cheap; the equality above already pins batched ==
                // sequential at every size.
                if n == e17_sizes()[0] {
                    assert_eq!(
                        live_b.report().violations,
                        v.validate(live_b.tree()).violations,
                        "batched/from-scratch divergence at n={n} {stream} batch={batch}"
                    );
                }
                let speedup = best_seq / best_bat;
                println!(
                    "        {stream:>7} batch {batch:4}: seq {:9.3} µs/edit   batched {:9.3} µs/edit   ×{speedup:.2}",
                    best_seq * 1e6,
                    best_bat * 1e6
                );
                if burst && batch >= 100 {
                    if n >= 1_000_000 {
                        assert!(
                            speedup >= 5.0,
                            "batched below target at n={n} batch={batch}: ×{speedup:.2} (target ≥5)"
                        );
                    }
                    if SMOKE.load(Ordering::Relaxed) {
                        assert!(
                            speedup >= 2.0,
                            "batched smoke gate at n={n} batch={batch}: ×{speedup:.2} (gate ≥2)"
                        );
                    }
                }
                batch_json.push(format!(
                    "{{\"batch\": {batch}, \"seq_seconds_per_edit\": {best_seq:.9}, \"batched_seconds_per_edit\": {best_bat:.9}, \"speedup\": {speedup:.2}}}"
                ));
            }
            stream_json.push(format!(
                "{{\"stream\": \"{stream}\", \"rows\": [{}]}}",
                batch_json.join(", ")
            ));
        }

        // The metrics contract (satellite of this study): raw and
        // coalesced edit counts are both reported, and they differ on a
        // coalescing-friendly batch.
        if n == e17_sizes()[0] {
            let collector = MetricsCollector::shared();
            let vo = Validator::with_matcher(&dtdc, MatcherKind::Dfa, Options::default())
                .with_obs(Obs::new(collector));
            let mut live_m = LiveValidator::new(&vo, live_b.tree().clone());
            let reqs: Vec<BatchEdit> = (0..100)
                .map(|i| BatchEdit::SetAttr {
                    node: orders[i % 10],
                    attr: "sup".into(),
                    value: AttrValue::single(format!("s{}", i % rows.min(1000))),
                })
                .collect();
            let diff = live_m.apply_batch(&reqs).unwrap();
            let m = diff.metrics.expect("collector attached => snapshot");
            assert_eq!(m.counter("edit.count"), 100);
            assert_eq!(m.counter("edit.coalesced"), 10);
            println!(
                "        metrics: edit.count = {} raw, edit.coalesced = {} surviving (100 edits over 10 vertices)",
                m.counter("edit.count"),
                m.counter("edit.coalesced")
            );
        }

        json_rows.push(format!(
            "      {{\"nodes\": {nodes}, \"full_validate_seconds\": {t_full:.6}, \"bulk_init_seconds\": {t_init:.6}, \"init_ratio\": {init_ratio:.3}, \"streams\": [{}]}}",
            stream_json.join(", ")
        ));
    }
    register_section(
        "e17_batch_edits",
        format!(
            "{{\n    \"workload\": \"constraint_heavy_workload; order.sup retargets, sequential set_attr loop vs apply_batch, uniform and burst (batch/8 vertices) streams (seed 101/303)\",\n    \"rows\": [\n{}\n    ]\n  }}",
            json_rows.join(",\n")
        ),
    );
}

/// Writes the E18/E20 load fixture under `dir` — a flat keyed document
/// (`item.id` a key, `ref.to` a set-valued foreign key into it) with
/// `items` items — and returns its source plus the daemon's schema flags.
fn flat_keyed_fixture(dir: &std::path::Path, items: usize) -> (String, Vec<String>) {
    std::fs::create_dir_all(dir).expect("create scratch dir");
    let dtd_path = dir.join("db.dtd");
    let sigma_path = dir.join("db.sigma");
    std::fs::write(
        &dtd_path,
        "<!ELEMENT db (item*, ref)>\n<!ELEMENT item (#PCDATA)>\n<!ELEMENT ref EMPTY>\n\
         <!ATTLIST item id CDATA #REQUIRED>\n<!ATTLIST ref to NMTOKENS #IMPLIED>\n",
    )
    .expect("write dtd");
    std::fs::write(&sigma_path, "item.id -> item\nref.to <=s item.id\n").expect("write sigma");
    let mut doc_src = String::from("<db>");
    for i in 0..items {
        doc_src.push_str(&format!("<item id=\"i{i}\">v</item>"));
    }
    doc_src.push_str("<ref to=\"i0\"/></db>");
    let server_args: Vec<String> = [
        "--dtd",
        dtd_path.to_str().unwrap(),
        "--root",
        "db",
        "--sigma",
        sigma_path.to_str().unwrap(),
    ]
    .iter()
    .map(ToString::to_string)
    .collect();
    (doc_src, server_args)
}

/// One e18 load-generator run: `docs` documents served by one daemon,
/// `clients` concurrent keep-alive connections (client *j* edits doc
/// *j mod docs*), each posting `edits_per_client` single-edit scripts.
/// Returns (aggregate edits/s, server-side p99 of `http.route.edits` in
/// ms, wall seconds).
fn serve_load_combo(
    docs: usize,
    clients: usize,
    edits_per_client: usize,
    items: usize,
    doc_src: &str,
    server_args: &[String],
) -> (f64, f64, f64) {
    use std::net::TcpListener;
    use std::time::{Duration, Instant};
    use xic_cli::http::HttpClient;

    let mut args = server_args.to_vec();
    args.extend(["--http-threads".to_string(), clients.max(4).to_string()]);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind port 0");
    let addr = listener.local_addr().unwrap();
    let daemon = std::thread::spawn(move || {
        xic_cli::serve_on(listener, &args).expect("daemon runs until shutdown")
    });

    let timeout = Duration::from_secs(60);
    let mut admin = HttpClient::connect(addr, timeout).expect("connect admin");
    for d in 0..docs {
        let (status, body) = admin
            .request("PUT", &format!("/docs/d{d}"), doc_src)
            .expect("PUT doc");
        assert_eq!(status, 201, "PUT /docs/d{d}: {body}");
    }
    // The ref element is the last vertex: root, then `items` item nodes.
    let ref_node = items + 1;

    // Warm-up: one edit per doc, outside the timed window, so shard and
    // connection setup never pollute the throughput numbers.
    for d in 0..docs {
        let script = format!("set-attr {ref_node} to i0\n");
        let (status, body) = admin
            .request("POST", &format!("/docs/d{d}/edits"), &script)
            .expect("warm-up edit");
        assert_eq!(status, 200, "{body}");
    }

    let start = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|j| {
            let doc_id = j % docs;
            std::thread::spawn(move || {
                let mut c = HttpClient::connect(addr, timeout).expect("connect client");
                for k in 0..edits_per_client {
                    // A rotating retarget of the set-valued foreign key:
                    // every edit moves `ref.to` to another existing item
                    // id, so propagation always has membership to check.
                    let script = format!("set-attr {ref_node} to i{}\n", (j * 7919 + k) % items);
                    let (status, body) = c
                        .request("POST", &format!("/docs/d{doc_id}/edits"), &script)
                        .expect("edit round-trip");
                    assert_eq!(status, 200, "{body}");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread");
    }
    let wall = start.elapsed().as_secs_f64();

    let (status, json) = admin
        .request("GET", "/metrics.json", "")
        .expect("metrics.json");
    assert_eq!(status, 200);
    let m = Metrics::parse_json(&json).expect("parseable metrics snapshot");
    let p99_ms = m
        .hist("http.route.edits")
        .expect("per-route histogram recorded")
        .quantile(0.99) as f64
        / 1e6;
    // Cross-check the per-doc ledgers: every accepted edit is accounted
    // for on exactly the doc that served it (warm-up + its clients').
    for d in 0..docs {
        let expected = 1 + (d..clients).step_by(docs).count() * edits_per_client;
        assert_eq!(
            m.counter(&format!("edits#doc=d{d}")),
            expected as u64,
            "doc d{d} edit ledger mismatch"
        );
    }

    let (status, _) = admin.request("POST", "/shutdown", "").expect("shutdown");
    assert_eq!(status, 200);
    daemon.join().expect("daemon thread");

    let total = (clients * edits_per_client) as f64;
    (total / wall, p99_ms, wall)
}

/// E18 — the multi-tenant serve load study (DESIGN §4.14).
///
/// An in-process load generator drives the real daemon over loopback
/// HTTP/1.1 keep-alive connections: N documents × M concurrent clients
/// posting single-edit scripts, with aggregate sustained edits/s measured
/// client-side and p99 latency read back from the daemon's own
/// `http.route.edits` histogram (`GET /metrics.json`). Documents are
/// independent shards, so 4 docs × 4 clients must scale: on a multi-core
/// host aggregate throughput is asserted ≥2× the serialized 1 doc ×
/// 1 client baseline; on a single-CPU host the gate is skipped with a
/// note, since there is no parallelism for the shards to buy. Also
/// cross-checks the per-doc edit ledgers from the labeled metrics.
/// Registers its rows for `BENCH_validate.json`.
fn e18_serve_load() {
    heading(
        "E18 (multi-tenant serve)",
        "4 docs × 4 clients aggregate edit throughput ≥2× the 1×1 serialized baseline (multi-core); p99 from the per-route histograms",
    );
    let smoke = SMOKE.load(Ordering::Relaxed);
    let items = if smoke { 500 } else { 2_000 };
    let edits_per_client = if smoke { 150 } else { 1_000 };

    // The workload: a flat keyed document (item.id a key, ref.to a
    // set-valued foreign key into it) big enough that each edit does real
    // constraint work, small enough that HTTP+shard dispatch — the thing
    // under test — stays a visible fraction of the cost.
    let dir = std::env::temp_dir().join("xic-e18");
    let (doc_src, server_args) = flat_keyed_fixture(&dir, items);

    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json_rows: Vec<String> = Vec::new();
    let mut baseline = 0.0f64;
    let mut speedup = 0.0f64;
    for (docs, clients) in [(1usize, 1usize), (4, 4)] {
        let (eps, p99_ms, wall) = serve_load_combo(
            docs,
            clients,
            edits_per_client,
            items,
            &doc_src,
            &server_args,
        );
        let vs = if docs == 1 {
            baseline = eps;
            String::new()
        } else {
            speedup = eps / baseline;
            format!("   ×{speedup:.2} vs 1×1")
        };
        println!(
            "  {docs} doc × {clients} client: {:6.0} edits/s sustained over {wall:6.2} s   p99 {p99_ms:7.3} ms{vs}",
            eps
        );
        json_rows.push(format!(
            "      {{\"docs\": {docs}, \"clients\": {clients}, \"edits_per_client\": {edits_per_client}, \"edits_per_sec\": {eps:.0}, \"p99_ms\": {p99_ms:.3}, \"wall_seconds\": {wall:.3}{}}}",
            if docs == 1 {
                String::new()
            } else {
                format!(", \"speedup_vs_1x1\": {speedup:.3}")
            }
        ));
    }
    if cpus >= 2 {
        assert!(
            speedup >= 2.0,
            "multi-tenant scaling below target on a {cpus}-core host: \
             4×4 throughput only ×{speedup:.2} of the 1×1 baseline (target ≥2)"
        );
    } else {
        println!(
            "        single-CPU host: ≥2× scaling gate skipped (shards cannot run in parallel on 1 core; throughput and p99 recorded above are still valid)"
        );
    }
    register_section(
        "e18_serve_load",
        format!(
            "{{\n    \"workload\": \"flat keyed doc ({items} items, item.id -> item, ref.to <=s item.id); loopback keep-alive clients each posting {edits_per_client} single-edit scripts; p99 from the daemon's http.route.edits histogram\",\n    \"cpus\": {cpus},\n    \"scaling_gate\": \"{}\",\n    \"rows\": [\n{}\n    ]\n  }}",
            if cpus >= 2 { "asserted >= 2x" } else { "skipped (single CPU)" },
            json_rows.join(",\n")
        ),
    );
}

/// The E19 document sizes. Like E17, the `--smoke` size is 10⁵: warm
/// start's advantage is a ratio of two linear passes, and on 10⁴-node
/// documents both sides finish in microseconds of noise.
fn e19_sizes() -> &'static [usize] {
    if SMOKE.load(Ordering::Relaxed) {
        &[100_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    }
}

/// E19 — durable state: versioned snapshot + edit WAL warm start
/// (xic-storage; DESIGN §4.15).
///
/// Three claims, all best-of-reps in one process so machine noise
/// cancels. **State rebuild**: [`LiveValidator::from_state`] on a decoded
/// snapshot must cost ≤0.25× the cold boot (parse + `LiveValidator::new`)
/// at 10⁶ vertices (≤0.3× at the 10⁵ smoke size, where constant
/// overheads weigh more) — this is the snapshot's algorithmic win: the
/// extraction walk, structural validation scan, and interner construction
/// are replaced by integrity checks over already-shaped columns.
/// **End-to-end boot**: read + decode + rebuild + WAL replay must beat
/// parse + bulk-init outright (≤0.8× here; measured ≈0.6×). The
/// end-to-end ratio cannot reach 0.25× on one core because decoding a
/// snapshot materializes the same per-node tree allocations the parser
/// does, and that materialization dominates both paths; the components
/// line in the output shows the decomposition. **Crash safety**: a log
/// whose final record is torn mid-write recovers to a report
/// byte-identical to the pre-crash validator that applied every intact
/// batch — the torn tail is truncated away, never replayed, and never
/// misread as corruption. Registers its rows for `BENCH_validate.json`.
fn e19_warm_start() {
    heading(
        "E19 (durable state)",
        "state rebuild ≤0.25× cold boot at 10⁶ vertices; end-to-end warm boot beats cold; torn-tail recovery byte-identical",
    );
    use rand::Rng;
    use xic::storage::{read_snapshot, write_snapshot, DocStore, FsyncPolicy, Wal};
    let dir = std::env::temp_dir().join(format!("xic-e19-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create e19 scratch dir");
    let mut json_rows: Vec<String> = Vec::new();
    for &n in e19_sizes() {
        let (dtdc, tree) = constraint_heavy_workload(n, 101);
        let nodes = tree.len();
        let rows = (n / 4).max(1);
        let reps = if n >= 1_000_000 { 3 } else { 5 };
        let src = format!(
            "<!DOCTYPE db [\n{}]>\n{}",
            serialize_dtd(dtdc.structure()),
            serialize_document(&tree)
        );
        let v = Validator::with_matcher(&dtdc, MatcherKind::Dfa, Options::default());

        // The durable artifacts: a snapshot of the freshly ingested
        // document plus 8 logged batches of 64 edits each — a typical
        // between-snapshots backlog under `--snapshot-every`.
        let mut live = LiveValidator::new(&v, tree);
        let orders: Vec<NodeId> = live.tree().ext("order").collect();
        let snap = dir.join(format!("snapshot-{n}.bin"));
        write_snapshot(&snap, &live.export_state(), 0).expect("write snapshot");
        let wal_path = dir.join(format!("wal-{n}.log"));
        let (mut wal, _) = Wal::open(&wal_path, FsyncPolicy::Never).unwrap();
        let mut r = rng(909);
        let mk_batch = |r: &mut rand::rngs::SmallRng| -> Vec<BatchEdit> {
            (0..64)
                .map(|_| BatchEdit::SetAttr {
                    node: orders[r.gen_range(0..orders.len())],
                    attr: "sup".into(),
                    value: AttrValue::single(format!("s{}", r.gen_range(0..rows))),
                })
                .collect()
        };
        for _ in 0..8 {
            let batch = mk_batch(&mut r);
            wal.append(&batch).unwrap();
            live.apply_batch(&batch).unwrap();
        }
        let expected = live.report().to_string();
        let snap_bytes = std::fs::metadata(&snap).unwrap().len();

        // Correctness first, outside the timers: recovery lands
        // byte-identical to the surviving validator.
        {
            let (state, _) = read_snapshot(&snap).unwrap();
            let (_, batches) = Wal::open(&wal_path, FsyncPolicy::Never).unwrap();
            assert_eq!(batches.len(), 8, "wal replay count at n={n}");
            let mut lv = LiveValidator::from_state(&v, state).unwrap();
            for (_, b) in &batches {
                lv.apply_batch(b).unwrap();
            }
            assert_eq!(
                lv.report().to_string(),
                expected,
                "warm-start report diverged at n={n}"
            );
        }

        // Cold boot: parse the serialized document, then bulk-init the
        // live validator — the daemon's ingest path. Phases are timed
        // inside one loop (minimum per phase across reps) rather than as
        // differences of separately timed closures, which would stack the
        // noise of two measurements.
        let (mut t_parse, mut t_init, mut t_cold) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for _ in 0..reps {
            let t0 = std::time::Instant::now();
            let doc = parse_document(&src).unwrap();
            let t1 = std::time::Instant::now();
            let lv = LiveValidator::new(&v, doc.tree);
            let t2 = std::time::Instant::now();
            std::hint::black_box(&lv);
            t_parse = t_parse.min((t1 - t0).as_secs_f64());
            t_init = t_init.min((t2 - t1).as_secs_f64());
            t_cold = t_cold.min((t2 - t0).as_secs_f64());
        }

        // Warm start: read + decode the snapshot, rebuild, replay.
        let (mut t_read, mut t_rebuild, mut t_warm) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for _ in 0..reps {
            let t0 = std::time::Instant::now();
            let (state, _) = read_snapshot(&snap).unwrap();
            let t1 = std::time::Instant::now();
            let mut lv = LiveValidator::from_state(&v, state).unwrap();
            let t2 = std::time::Instant::now();
            let (_, batches) = Wal::open(&wal_path, FsyncPolicy::Never).unwrap();
            for (_, b) in &batches {
                lv.apply_batch(b).unwrap();
            }
            let t3 = std::time::Instant::now();
            std::hint::black_box(&lv);
            t_read = t_read.min((t1 - t0).as_secs_f64());
            t_rebuild = t_rebuild.min((t2 - t1).as_secs_f64());
            t_warm = t_warm.min((t3 - t0).as_secs_f64());
        }
        let rebuild_ratio = t_rebuild / t_cold;
        let ratio = t_warm / t_cold;
        println!(
            "        components: cold = parse {:8.3} ms + init {:8.3} ms; warm = read+decode {:8.3} ms + from_state {:8.3} ms + replay",
            t_parse * 1e3,
            t_init * 1e3,
            t_read * 1e3,
            t_rebuild * 1e3
        );
        println!(
            "  nodes = {nodes:8}  cold boot {:9.3} ms   warm start {:9.3} ms   ×{ratio:.3} end-to-end   ×{rebuild_ratio:.3} rebuild/cold   (snapshot {:.1} MB + 8×64-edit wal)",
            t_cold * 1e3,
            t_warm * 1e3,
            snap_bytes as f64 / 1e6
        );
        if n >= 1_000_000 {
            assert!(
                rebuild_ratio <= 0.25,
                "state rebuild above target at n={n}: ×{rebuild_ratio:.3} of cold boot (target ≤0.25)"
            );
            assert!(
                ratio <= 0.8,
                "end-to-end warm boot gate at n={n}: ×{ratio:.3} of cold boot (gate ≤0.8)"
            );
        }
        if SMOKE.load(Ordering::Relaxed) {
            assert!(
                rebuild_ratio <= 0.3,
                "state rebuild smoke gate at n={n}: ×{rebuild_ratio:.3} of cold boot (gate ≤0.3)"
            );
            assert!(
                ratio <= 0.8,
                "end-to-end warm boot smoke gate at n={n}: ×{ratio:.3} of cold boot (gate ≤0.8)"
            );
        }

        // Crash mid-append: a ninth batch's record is torn mid-write.
        // Recovery truncates the tail and lands byte-identical to the
        // pre-crash validator, which never applied that batch.
        let torn_batch = mk_batch(&mut r);
        wal.append(&torn_batch).unwrap();
        drop(wal);
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(&wal_path)
            .unwrap();
        let full = f.metadata().unwrap().len();
        f.set_len(full - 7).unwrap();
        drop(f);
        let (state, _) = read_snapshot(&snap).unwrap();
        let (_, batches) = Wal::open(&wal_path, FsyncPolicy::Never).unwrap();
        assert_eq!(
            batches.len(),
            8,
            "torn ninth record must be truncated away at n={n}"
        );
        let mut lv = LiveValidator::from_state(&v, state).unwrap();
        for (_, b) in &batches {
            lv.apply_batch(b).unwrap();
        }
        assert_eq!(
            lv.report().to_string(),
            expected,
            "crash-mid-batch recovery diverged at n={n}"
        );
        println!("        crash-mid-batch: torn record truncated, recovered report byte-identical");

        // Crash between snapshot publication and WAL reset: a fresh
        // snapshot of the post-batch state is published, stamped with the
        // log's last sequence, but the process dies before the log is
        // emptied. The 8 subsumed records are still on disk; recovery
        // must skip them by sequence — replaying non-idempotent batches
        // onto state that already contains them would silently diverge.
        let crash_store = DocStore::open(dir.join(format!("crash-{n}")), FsyncPolicy::Never)
            .expect("open crash-window store");
        drop(crash_store.open_wal("d").unwrap()); // create the layout
        std::fs::copy(&wal_path, crash_store.wal_path("d").unwrap()).unwrap();
        let last_seq = batches.last().map(|&(s, _)| s).unwrap();
        write_snapshot(
            &crash_store.snapshot_path("d").unwrap(),
            &live.export_state(),
            last_seq,
        )
        .unwrap();
        let rec = crash_store.load("d").unwrap().expect("crash-window doc");
        assert!(
            rec.batches.is_empty(),
            "records subsumed by the snapshot replayed at n={n}"
        );
        let lv = LiveValidator::from_state(&v, rec.state).unwrap();
        assert_eq!(
            lv.report().to_string(),
            expected,
            "crash-between-snapshot-and-reset recovery diverged at n={n}"
        );
        assert_eq!(
            rec.wal.last_seq(),
            last_seq,
            "recovered log must append above the snapshot's sequence at n={n}"
        );
        println!(
            "        crash-between-snapshot-and-reset: {} stale records skipped by sequence, report byte-identical",
            batches.len()
        );

        json_rows.push(format!(
            "      {{\"nodes\": {nodes}, \"cold_boot_seconds\": {t_cold:.6}, \"warm_start_seconds\": {t_warm:.6}, \"warm_over_cold\": {ratio:.3}, \"rebuild_seconds\": {t_rebuild:.6}, \"rebuild_over_cold\": {rebuild_ratio:.3}, \"snapshot_bytes\": {snap_bytes}}}"
        ));
    }
    let _ = std::fs::remove_dir_all(&dir);
    register_section(
        "e19_durable_state",
        format!(
            "{{\n    \"workload\": \"constraint_heavy_workload (seed 101); cold = parse + LiveValidator::new, warm = read_snapshot + from_state + replay of an 8x64-edit wal (seed 909)\",\n    \"rows\": [\n{}\n    ]\n  }}",
            json_rows.join(",\n")
        ),
    );
}

/// E20 — observability overhead and request-scoped trace chains
/// (DESIGN §4.16).
///
/// Part 1 re-runs the E18 4 docs × 4 clients load twice on the same
/// fixture: once with the span ring disabled (`--trace-buffer 0`, no
/// access log) and once fully instrumented (default ring, request
/// scoping, `--access-log` sampled at 1). The instrumented run must
/// sustain ≥0.9× the untraced aggregate edits/s (best of 2 runs per
/// side), and the access log must hold exactly one parseable
/// [`AccessRecord`] line per request the daemon served. Part 2 drives
/// one edit through a durable traced daemon and drains `GET /trace`:
/// the accept → queue wait → route → shard dispatch → batch → WAL
/// append chain must appear exactly once under that request's id.
fn e20_obs_overhead() {
    use std::net::TcpListener;
    use std::time::Duration;
    use xic::obs::json::{self, Json};
    use xic_cli::http::HttpClient;

    heading(
        "E20 (observability overhead)",
        "tracing + access log sustain >=0.9x untraced edit throughput; a drained /trace stitches accept -> queue -> shard -> wal under one request id",
    );
    let smoke = SMOKE.load(Ordering::Relaxed);
    let items = if smoke { 500 } else { 2_000 };
    let edits_per_client = if smoke { 150 } else { 1_000 };
    let (docs, clients) = (4usize, 4usize);

    let dir = std::env::temp_dir().join(format!("xic-e20-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (doc_src, server_args) = flat_keyed_fixture(&dir, items);

    // Part 1: the overhead gate. Same workload, two daemons: the span
    // ring off entirely vs every observability surface on at once.
    let untraced_args: Vec<String> = server_args
        .iter()
        .cloned()
        .chain(["--trace-buffer".into(), "0".into()])
        .collect();
    let log_path = dir.join("access.log");
    let traced_args: Vec<String> = server_args
        .iter()
        .cloned()
        .chain([
            "--access-log".into(),
            log_path.to_str().unwrap().to_string(),
            "--log-sample".into(),
            "1".into(),
        ])
        .collect();
    let best_of = |args: &[String]| -> f64 {
        let mut best = 0.0f64;
        for _ in 0..2 {
            let (eps, _, _) =
                serve_load_combo(docs, clients, edits_per_client, items, &doc_src, args);
            best = best.max(eps);
        }
        best
    };
    let untraced = best_of(&untraced_args);
    let traced = best_of(&traced_args);
    let ratio = traced / untraced;
    println!(
        "  {docs} docs × {clients} clients × {edits_per_client} edits: untraced {untraced:6.0} edits/s   traced+logged {traced:6.0} edits/s   ×{ratio:.3}"
    );
    assert!(
        ratio >= 0.9,
        "observability overhead above budget: traced throughput only ×{ratio:.3} of untraced (gate ≥0.9)"
    );

    // Every request of both traced runs is one parseable log line:
    // docs PUTs + warm-up edits + client edits + metrics.json + shutdown.
    let text = std::fs::read_to_string(&log_path).expect("read access log");
    let mut lines = 0u64;
    let mut edit_lines = 0u64;
    for line in text.lines() {
        let r = AccessRecord::parse(line)
            .unwrap_or_else(|e| panic!("unparseable access-log line ({e}): {line}"));
        if r.route == "http.route.edits" {
            assert_eq!(r.status, 200, "{line}");
            edit_lines += 1;
        }
        lines += 1;
    }
    let per_run = (docs + docs + clients * edits_per_client + 2) as u64;
    assert_eq!(lines, 2 * per_run, "access-log line count");
    assert_eq!(
        edit_lines,
        2 * (docs + clients * edits_per_client) as u64,
        "access-log edit-route line count"
    );
    println!(
        "        access log: {lines} lines, all parse; {edit_lines} edit requests accounted for"
    );

    // Part 2: one request's span chain through a durable daemon.
    let doc_path = dir.join("doc.xml");
    std::fs::write(&doc_path, &doc_src).expect("write doc");
    let mut args = vec![doc_path.to_str().unwrap().to_string()];
    args.extend(server_args.iter().cloned());
    args.extend([
        "--state-dir".to_string(),
        dir.join("state").to_str().unwrap().to_string(),
    ]);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind port 0");
    let addr = listener.local_addr().unwrap();
    let daemon =
        std::thread::spawn(move || xic_cli::serve_on(listener, &args).expect("traced daemon"));
    let timeout = Duration::from_secs(60);
    let mut admin = HttpClient::connect(addr, timeout).expect("connect admin");
    let (status, _) = admin
        .request("GET", "/trace", "")
        .expect("drain boot spans");
    assert_eq!(status, 200);
    {
        // A fresh connection: its queue wait lands in this request's scope.
        let mut c = HttpClient::connect(addr, timeout).expect("connect editor");
        let script = format!("set-attr {} to i1\n", items + 1);
        let (status, body) = c.request("POST", "/edits", &script).expect("edit");
        assert_eq!(status, 200, "{body}");
    }
    let (status, body) = admin.request("GET", "/trace", "").expect("drain trace");
    assert_eq!(status, 200);
    let events = match json::parse(&body).expect("chrome trace JSON") {
        Json::Array(events) => events,
        other => panic!("/trace is not an array: {other:?}"),
    };
    let req_of = |e: &Json| -> u64 {
        e.get("args")
            .and_then(|a| a.get("req"))
            .map_or(0, |r| r.as_u64("req").unwrap())
    };
    let name_of = |e: &Json| e.get("name").unwrap().as_str("name").unwrap().to_string();
    let edit_reqs: Vec<u64> = events
        .iter()
        .filter(|e| name_of(e) == "http.route.edits")
        .map(&req_of)
        .collect();
    assert_eq!(
        edit_reqs.len(),
        1,
        "expected exactly one traced edit request"
    );
    let rid = edit_reqs[0];
    assert!(rid > 0, "edit request untagged");
    let chain = [
        "serve.queue_wait",
        "http.request",
        "http.route.edits",
        "serve.shard_dispatch",
        "edit.batch",
        "wal.append",
    ];
    for expect in chain {
        let n = events
            .iter()
            .filter(|e| req_of(e) == rid && name_of(e) == expect)
            .count();
        assert_eq!(n, 1, "span {expect} not exactly once under request {rid}");
    }
    println!(
        "        trace chain: request {rid} carries each of {} exactly once",
        chain.join(" -> ")
    );
    let (status, _) = admin.request("POST", "/shutdown", "").expect("shutdown");
    assert_eq!(status, 200);
    daemon.join().expect("daemon thread");
    let _ = std::fs::remove_dir_all(&dir);

    register_section(
        "e20_obs_overhead",
        format!(
            "{{\n    \"workload\": \"E18 fixture ({items} items); {docs} docs x {clients} clients x {edits_per_client} edits, best of 2 per side: --trace-buffer 0 vs default ring + --access-log --log-sample 1; plus one traced request's drained span chain\",\n    \"untraced_edits_per_sec\": {untraced:.0},\n    \"traced_edits_per_sec\": {traced:.0},\n    \"traced_over_untraced\": {ratio:.3},\n    \"overhead_gate\": \"asserted >= 0.9x\",\n    \"access_log_lines\": {lines},\n    \"trace_chain\": [\"serve.queue_wait\", \"http.request\", \"http.route.edits\", \"serve.shard_dispatch\", \"edit.batch\", \"wal.append\"]\n  }}"
        ),
    );
}
