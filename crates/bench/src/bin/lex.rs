//! Times raw event lexing over a file: `lex <file.xml> [reps]`.
fn main() {
    let mut args = std::env::args().skip(1);
    let path = args.next().expect("lex <file.xml> [reps]");
    let reps: usize = args.next().map(|s| s.parse().unwrap()).unwrap_or(3);
    let src = std::fs::read_to_string(&path).unwrap();
    for _ in 0..reps {
        let t = std::time::Instant::now();
        let mut events = xic::prelude::parse_events(&src);
        let mut n = 0u64;
        for ev in &mut events {
            ev.unwrap();
            n += 1;
        }
        println!("{n} events in {:?}", t.elapsed());
    }
}
