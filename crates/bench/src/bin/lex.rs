//! Times raw event lexing over a file: `lex <file.xml> [reps]`.
//!
//! Installs the counting allocator so each rep also reports how many heap
//! acquisitions the lexer made — the streaming hot path's zero-alloc claim,
//! measured rather than asserted.

xic::obs::install_counting_alloc!();

fn main() {
    let mut args = std::env::args().skip(1);
    let path = args.next().expect("lex <file.xml> [reps]");
    let reps: usize = args.next().map(|s| s.parse().unwrap()).unwrap_or(3);
    let src = std::fs::read_to_string(&path).unwrap();
    for _ in 0..reps {
        let allocs = xic::obs::alloc::stats().count;
        let t = std::time::Instant::now();
        let mut events = xic::prelude::parse_events(&src);
        let mut n = 0u64;
        for ev in &mut events {
            ev.unwrap();
            n += 1;
        }
        let dt = t.elapsed();
        let allocs = xic::obs::alloc::stats().count - allocs;
        println!("{n} events in {dt:?} ({allocs} heap acquisitions)");
    }
}
