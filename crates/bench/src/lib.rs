//! Workload generators shared by the Criterion benches and the
//! `experiments` binary (experiments E1–E14; see EXPERIMENTS.md at the
//! repository root for the experiment ↔ paper-claim index).

#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xic::prelude::*;

/// Deterministic RNG.
pub fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// E1 — a random well-formed `L_id` constraint set of ~`n` constraints
/// over `n/4 + 2` types: ID constraints, set-valued reference chains, and
/// inverse pairs (each reference attribute has a single target).
pub fn lid_sigma(n: usize, rng: &mut SmallRng) -> Vec<Constraint> {
    let n_types = n / 4 + 2;
    let types: Vec<Name> = (0..n_types).map(|i| Name::new(format!("c{i}"))).collect();
    let mut sigma: Vec<Constraint> = Vec::with_capacity(n);
    for t in &types {
        sigma.push(Constraint::Id { tau: t.clone() });
    }
    let mut attr_id = 0usize;
    while sigma.len() < n {
        let a = rng.gen_range(0..n_types);
        let b = rng.gen_range(0..n_types);
        attr_id += 1;
        match rng.gen_range(0..4) {
            0 => sigma.push(Constraint::unary_key(
                types[a].clone(),
                format!("k{attr_id}"),
            )),
            1 => sigma.push(Constraint::FkToId {
                tau: types[a].clone(),
                attr: format!("f{attr_id}").as_str().into(),
                target: types[b].clone(),
            }),
            2 => sigma.push(Constraint::SetFkToId {
                tau: types[a].clone(),
                attr: format!("s{attr_id}").as_str().into(),
                target: types[b].clone(),
            }),
            _ => sigma.push(Constraint::InverseId {
                tau: types[a].clone(),
                attr: format!("i{attr_id}").as_str().into(),
                target: types[b].clone(),
                target_attr: format!("j{attr_id}").as_str().into(),
            }),
        }
    }
    sigma
}

/// Queries matching [`lid_sigma`]'s vocabulary: a mix of present and
/// absent facts.
pub fn lid_queries(n: usize) -> Vec<Constraint> {
    let n_types = n / 4 + 2;
    (0..n_types)
        .flat_map(|i| {
            [
                Constraint::Id {
                    tau: format!("c{i}").as_str().into(),
                },
                Constraint::unary_key(format!("c{i}"), "id"),
                Constraint::unary_key(format!("c{i}"), "absent"),
            ]
        })
        .collect()
}

/// E2 — a foreign-key chain `t0.k ⊆ t1.k ⊆ … ⊆ tn.k`; the query asks for
/// the end-to-end composition.
pub fn lu_chain(n: usize) -> (Vec<Constraint>, Constraint) {
    let mut sigma = Vec::with_capacity(n);
    for i in 0..n {
        sigma.push(Constraint::unary_fk(
            format!("t{i}"),
            "k",
            format!("t{}", i + 1),
            "k",
        ));
    }
    let phi = Constraint::unary_fk("t0", "k", format!("t{n}"), "k");
    (sigma, phi)
}

/// E2 — the finite/unrestricted divergence family scaled up: a chain of
/// `n` types each carrying two keys `a`, `b` with `tᵢ.a ⊆ tᵢ.b` and
/// `tᵢ.b ⊆ tᵢ₊₁.a`; the query reverses the whole chain, which holds
/// finitely (cardinality cycle through the same-type key edges) but not
/// over unrestricted instances.
pub fn lu_cycle_family(n: usize) -> (Vec<Constraint>, Constraint) {
    let mut sigma = Vec::new();
    for i in 0..n {
        sigma.push(Constraint::unary_key(format!("t{i}"), "a"));
        sigma.push(Constraint::unary_key(format!("t{i}"), "b"));
        sigma.push(Constraint::unary_fk(
            format!("t{i}"),
            "a",
            format!("t{i}"),
            "b",
        ));
        if i + 1 < n {
            sigma.push(Constraint::unary_fk(
                format!("t{i}"),
                "b",
                format!("t{}", i + 1),
                "a",
            ));
        }
    }
    // Reversal of the first edge: t0.b ⊆ t0.a.
    let phi = Constraint::unary_fk("t0", "b", "t0", "a");
    (sigma, phi)
}

/// E5 — a chain of `n_rels` relations with arity-`arity` primary keys and
/// column-permuted foreign keys between consecutive relations; the query
/// composes the whole chain.
pub fn lp_chain(n_rels: usize, arity: usize) -> (Vec<Constraint>, Constraint) {
    let cols: Vec<String> = (0..arity).map(|i| format!("a{i}")).collect();
    let mut sigma = Vec::new();
    for r in 0..n_rels {
        sigma.push(Constraint::key(
            format!("r{r}"),
            cols.iter().map(String::as_str),
        ));
    }
    for r in 0..n_rels - 1 {
        // Rotate the columns by one between hops to exercise PFK-perm.
        let mut src = cols.clone();
        src.rotate_left(r % arity.max(1));
        let mut dst = cols.clone();
        dst.rotate_left(r % arity.max(1));
        sigma.push(Constraint::fk(
            format!("r{r}"),
            src.iter().map(String::as_str),
            format!("r{}", r + 1),
            dst.iter().map(String::as_str),
        ));
    }
    let phi = Constraint::fk(
        "r0",
        cols.iter().map(String::as_str),
        format!("r{}", n_rels - 1),
        cols.iter().map(String::as_str),
    );
    (sigma, phi)
}

/// E6/E7 — a nested DTD: `r0 → r1 → … → r_depth`, each level a unique
/// sub-element of the previous, each level with a key attribute `k`
/// declared in `Σ`; queried with paths down the spine.
pub fn nested_dtdc(depth: usize) -> DtdC {
    let mut b = DtdStructure::builder("r0");
    for i in 0..depth {
        b = b.elem(format!("r{i}"), &format!("(r{})", i + 1));
    }
    b = b.elem(format!("r{depth}"), "S");
    for i in 0..=depth {
        b = b.attr(format!("r{i}"), "k", "S");
    }
    let structure = b.build().expect("nested structure");
    let sigma = (0..=depth)
        .map(|i| Constraint::unary_key(format!("r{i}"), "k"))
        .collect();
    DtdC::new(structure, Language::Lid, sigma).expect("nested Σ")
}

/// The spine path `r1.r2.….r_to` (optionally ending in the key attribute).
pub fn spine(from: usize, to: usize, with_key: bool) -> Path {
    let mut steps: Vec<String> = ((from + 1)..=to).map(|i| format!("r{i}")).collect();
    if with_key {
        steps.push("k".into());
    }
    Path::new(steps)
}

/// E8 — an inverse chain: classes `c0..cn`, each consecutive pair linked by
/// set-valued references `fwd`/`back` with an `L_id` inverse constraint.
/// Returns the `DTD^C` and, for each `k ≤ n`, the composed path-inverse
/// query `c0.fwd…fwd ⇌ ck.back…back` is implied (built by
/// [`inverse_query`]).
pub fn inverse_chain_dtdc(n: usize) -> DtdC {
    let mut b = DtdStructure::builder("db");
    use xic::regex::ContentModel;
    let root = ContentModel::seq_all(
        (0..=n).map(|i| ContentModel::star(ContentModel::elem(format!("c{i}")))),
    );
    b = b.elem_model("db", root);
    for i in 0..=n {
        b = b.elem_model(format!("c{i}"), ContentModel::Epsilon);
        b = b.id_attr(format!("c{i}"), "oid");
        if i < n {
            b = b.idrefs_attr(format!("c{i}"), "fwd");
        }
        if i > 0 {
            b = b.idrefs_attr(format!("c{i}"), "back");
        }
    }
    let structure = b.build().expect("inverse chain structure");
    let mut sigma: Vec<Constraint> = (0..=n)
        .map(|i| Constraint::Id {
            tau: format!("c{i}").as_str().into(),
        })
        .collect();
    for i in 0..n {
        sigma.push(Constraint::InverseId {
            tau: format!("c{i}").as_str().into(),
            attr: "fwd".into(),
            target: format!("c{}", i + 1).as_str().into(),
            target_attr: "back".into(),
        });
    }
    DtdC::new(structure, Language::Lid, sigma).expect("inverse chain Σ")
}

/// The composed inverse query of length `k` over [`inverse_chain_dtdc`].
pub fn inverse_query(k: usize) -> (Name, Path, Name, Path) {
    (
        "c0".into(),
        Path::new(std::iter::repeat_n("fwd", k)),
        format!("c{k}").as_str().into(),
        Path::new(std::iter::repeat_n("back", k)),
    )
}

/// E10 — a generated company document of `n` objects per class with its
/// `DTD^C`.
pub fn company_workload(n: usize, seed: u64) -> (DtdC, DataTree) {
    let schema = ObjSchema::person_dept();
    let dtdc = schema.to_dtdc();
    let mut r = rng(seed);
    let inst = schema.generate_instance(n, &mut r);
    let tree = schema.export(&inst);
    (dtdc, tree)
}

/// E10 — a generated publishers/editors document of `n` rows per relation.
pub fn publishers_workload(n: usize, seed: u64) -> (DtdC, DataTree) {
    let schema = RelSchema::publishers_editors();
    let dtdc = schema.to_dtdc();
    let mut r = rng(seed);
    let inst = schema.generate_instance(n, &mut r);
    let tree = schema.export(&inst);
    (dtdc, tree)
}

/// E11 — a constraint-heavy supplier/part/order document of ~`n` vertices
/// with a ten-constraint `L_u` Σ whose constraints heavily share fields
/// (three unary keys, one sub-element key, three foreign keys, two
/// set-valued foreign keys, one inverse). The document is valid, so
/// timings measure the clean fast path. This is the workload behind the
/// `e11_validate_engine` bench and `BENCH_validate.json`: the compiled
/// engine extracts each shared column once, while the per-constraint
/// baseline re-walks the tree per constraint.
pub fn constraint_heavy_workload(n: usize, seed: u64) -> (DtdC, DataTree) {
    let structure = DtdStructure::builder("db")
        .elem("db", "(supplier + part + order)*")
        .elem("supplier", "EMPTY")
        .attr("supplier", "sid", "S")
        .attr("supplier", "parts", "S*")
        .elem("part", "EMPTY")
        .attr("part", "pid", "S")
        .attr("part", "sup", "S")
        .attr("part", "also", "S*")
        .elem("order", "memo")
        .attr("order", "oid", "S")
        .attr("order", "part", "S")
        .attr("order", "sup", "S")
        .attr("order", "refs", "S*")
        .elem("memo", "S")
        .build()
        .expect("e11 structure");
    let sigma = vec![
        Constraint::unary_key("supplier", "sid"),
        Constraint::unary_key("part", "pid"),
        Constraint::unary_key("order", "oid"),
        Constraint::sub_key("order", "memo"),
        Constraint::unary_fk("part", "sup", "supplier", "sid"),
        Constraint::unary_fk("order", "part", "part", "pid"),
        Constraint::unary_fk("order", "sup", "supplier", "sid"),
        Constraint::set_fk("order", "refs", "part", "pid"),
        Constraint::set_fk("part", "also", "supplier", "sid"),
        Constraint::InverseU {
            tau: "part".into(),
            key: Field::attr("pid"),
            attr: "also".into(),
            target: "supplier".into(),
            target_key: Field::attr("sid"),
            target_attr: "parts".into(),
        },
    ];
    let dtdc = DtdC::new(structure, Language::Lu, sigma).expect("e11 Σ well-formed");

    // Each row contributes one supplier, one part, and one order with a
    // memo leaf: four vertices per row.
    let rows = (n / 4).max(1);
    let mut r = rng(seed);
    let sup_of: Vec<usize> = (0..rows).map(|_| r.gen_range(0..rows)).collect();
    let mut parts_of: Vec<Vec<String>> = vec![Vec::new(); rows];
    for (p, &s) in sup_of.iter().enumerate() {
        parts_of[s].push(format!("p{p}"));
    }
    let mut b = TreeBuilder::new();
    let db = b.node("db");
    for (i, parts) in parts_of.iter().enumerate() {
        let s = b.child_node(db, "supplier").unwrap();
        b.attr(s, "sid", AttrValue::single(format!("s{i}")))
            .unwrap();
        b.attr(s, "parts", AttrValue::set(parts.iter().cloned()))
            .unwrap();
    }
    for (i, &s) in sup_of.iter().enumerate() {
        let p = b.child_node(db, "part").unwrap();
        b.attr(p, "pid", AttrValue::single(format!("p{i}")))
            .unwrap();
        b.attr(p, "sup", AttrValue::single(format!("s{s}")))
            .unwrap();
        b.attr(p, "also", AttrValue::set([format!("s{s}")]))
            .unwrap();
    }
    for i in 0..rows {
        let o = b.child_node(db, "order").unwrap();
        b.attr(o, "oid", AttrValue::single(format!("o{i}")))
            .unwrap();
        b.attr(
            o,
            "part",
            AttrValue::single(format!("p{}", r.gen_range(0..rows))),
        )
        .unwrap();
        b.attr(
            o,
            "sup",
            AttrValue::single(format!("s{}", r.gen_range(0..rows))),
        )
        .unwrap();
        b.attr(
            o,
            "refs",
            AttrValue::set([
                format!("p{}", r.gen_range(0..rows)),
                format!("p{}", r.gen_range(0..rows)),
            ]),
        )
        .unwrap();
        b.leaf(o, "memo", format!("m{i}")).unwrap();
    }
    (dtdc, b.finish(db).unwrap())
}

/// Times `f` as the minimum of `reps` runs (returns seconds).
pub fn time_min<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = std::time::Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use xic::implication::lu::Mode;

    #[test]
    fn generators_produce_wellformed_workloads() {
        let mut r = rng(1);
        let sigma = lid_sigma(64, &mut r);
        assert!(sigma.len() >= 64);
        let solver = LidSolver::new(&sigma, None);
        for q in lid_queries(64) {
            let _ = solver.holds(&q);
        }

        let (sigma, phi) = lu_chain(16);
        let s = LuSolver::new(&sigma).unwrap();
        assert!(s.implies(&phi, Mode::Unrestricted).unwrap().is_implied());

        let (sigma, phi) = lu_cycle_family(8);
        let s = LuSolver::new(&sigma).unwrap();
        assert!(s.implies(&phi, Mode::Finite).unwrap().is_implied());
        assert!(!s.implies(&phi, Mode::Unrestricted).unwrap().is_implied());

        let (sigma, phi) = lp_chain(5, 3);
        let s = LpSolver::new(&sigma).unwrap();
        assert!(s.implies(&phi).is_implied());

        let d = nested_dtdc(10);
        let solver = PathSolver::new(&d);
        assert!(solver.functional_implied(&"r0".into(), &spine(0, 10, true), &spine(0, 3, false)));
        assert!(solver.inclusion_implied(
            &"r0".into(),
            &spine(0, 10, false),
            &"r4".into(),
            &spine(4, 10, false)
        ));

        let d = inverse_chain_dtdc(6);
        let solver = PathSolver::new(&d);
        let (t1, p1, t2, p2) = inverse_query(6);
        assert!(solver.inverse_implied(&t1, &p1, &t2, &p2));
        let (t1, p1, t2, p2) = inverse_query(3);
        assert!(solver.inverse_implied(&t1, &p1, &t2, &p2));

        let (dtdc, tree) = company_workload(5, 9);
        assert!(validate(&tree, &dtdc).is_valid());
        let (dtdc, tree) = publishers_workload(5, 9);
        assert!(validate(&tree, &dtdc).is_valid());
    }

    #[test]
    fn constraint_heavy_workload_is_valid_and_scales() {
        let (dtdc, tree) = constraint_heavy_workload(4000, 7);
        assert_eq!(dtdc.constraints().len(), 10);
        assert!(tree.len() >= 4000, "got {} vertices", tree.len());
        let report = validate(&tree, &dtdc);
        assert!(report.is_valid(), "{report}");
        // The compiled engine and the naive per-constraint loop agree.
        let naive: usize = dtdc
            .constraints()
            .iter()
            .map(|c| check_constraint(&tree, &dtdc, c).len())
            .sum();
        assert_eq!(naive, 0);
    }
}
