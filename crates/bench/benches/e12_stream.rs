//! E12 — the streaming validation pipeline against parse-then-validate
//! on the E11 workload serialized to XML (DTD as internal subset; see
//! `constraint_heavy_workload`).
//!
//! Three series per document size:
//!
//! * `tree` — `parse_document` into a `DataTree`, then `validate`: the
//!   two-pass baseline whose working set includes the whole tree.
//! * `stream_t1` — `validate_stream`, the fused single pass (event parser
//!   drives the matcher automata and fills the constraint columns; live
//!   state is O(depth) plus the columns).
//! * `stream_t2` — the same pass with lexing on a producer thread behind
//!   a bounded channel (byte-identical reports).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xic::prelude::*;
use xic_bench::constraint_heavy_workload;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_stream");
    group.sample_size(10);
    for n in [10_000usize, 100_000, 1_000_000] {
        let (dtdc, tree) = constraint_heavy_workload(n, 11);
        let nodes = tree.len();
        let src = format!(
            "<!DOCTYPE db [\n{}]>\n{}",
            serialize_dtd(dtdc.structure()),
            serialize_document(&tree)
        );
        drop(tree);
        group.throughput(Throughput::Elements(nodes as u64));
        let v = Validator::with_matcher(&dtdc, MatcherKind::Dfa, Options::default());
        group.bench_with_input(BenchmarkId::new("tree", n), &n, |b, _| {
            b.iter(|| {
                let doc = parse_document(&src).unwrap();
                assert!(v.validate(&doc.tree).is_valid());
            })
        });
        for threads in [1usize, 2] {
            let v = Validator::with_matcher(
                &dtdc,
                MatcherKind::Dfa,
                Options::default().with_threads(threads),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("stream_t{threads}"), n),
                &n,
                |b, _| b.iter(|| assert!(v.validate_stream(&src).unwrap().is_valid())),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
