//! E6 (Prop 4.1) — path functional constraint implication:
//! `O(|φ|(|Σ| + |P|))` across nesting depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xic::prelude::*;
use xic_bench::{nested_dtdc, spine};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_pathfd");
    for depth in [64usize, 256, 1024] {
        let d = nested_dtdc(depth);
        let solver = PathSolver::new(&d);
        let rho = spine(0, depth, true);
        let varrho = spine(0, depth / 2, false);
        group.throughput(Throughput::Elements(depth as u64));
        group.bench_with_input(BenchmarkId::new("query", depth), &depth, |b, _| {
            b.iter(|| {
                assert!(solver.functional_implied(&"r0".into(), &rho, &varrho));
            })
        });
        group.bench_with_input(BenchmarkId::new("build+query", depth), &depth, |b, _| {
            b.iter(|| {
                let solver = PathSolver::new(&d);
                assert!(solver.functional_implied(&"r0".into(), &rho, &varrho));
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
