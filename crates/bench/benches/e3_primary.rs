//! E3 (Thm 3.4) — under the primary-key restriction the `L_u` problems
//! coincide; measures the cost of both modes on primary chains (they
//! should track each other, since the cycle machinery is vacuous).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xic::implication::lu::Mode;
use xic::prelude::*;
use xic_bench::lu_chain;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_primary");
    for n in [512usize, 2048] {
        let (sigma, phi) = lu_chain(n);
        let solver = LuSolver::new(&sigma).unwrap();
        solver.check_primary(None).unwrap();
        for (label, mode) in [
            ("unrestricted", Mode::Unrestricted),
            ("finite", Mode::Finite),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    let u = solver.implies(&phi, mode).unwrap().is_implied();
                    assert!(u);
                    u
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
