//! E4 (Thm 3.6) — the chase as a semi-decision for general `L`:
//! terminating chains vs the divergent cyclic-IND family (cost grows with
//! the resource budget, never converging).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xic::implication::chase::ChaseLimits;
use xic::prelude::*;
use xic_bench::lp_chain;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_chase");
    group.sample_size(10);
    for n in [4usize, 8, 16] {
        let (sigma, phi) = lp_chain(n, 2);
        group.bench_with_input(BenchmarkId::new("terminating_chain", n), &n, |b, _| {
            b.iter(|| {
                let chase = Chase::new(&sigma, ChaseLimits::default()).unwrap();
                assert!(chase.implies(&phi).is_implied());
            })
        });
    }
    let sigma = vec![
        Constraint::key("R", ["A"]),
        Constraint::fk("R", ["B"], "R", ["A"]),
    ];
    let phi = Constraint::key("R", ["B"]);
    for budget in [100usize, 400, 1600] {
        group.bench_with_input(
            BenchmarkId::new("divergent_budget", budget),
            &budget,
            |b, _| {
                b.iter(|| {
                    let chase = Chase::new(
                        &sigma,
                        ChaseLimits {
                            max_steps: budget,
                            max_tuples: budget,
                        },
                    )
                    .unwrap();
                    assert!(matches!(chase.implies(&phi), ChaseOutcome::ResourceLimit));
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
