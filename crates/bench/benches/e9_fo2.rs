//! E9 (Fig. 1) — the 2-pebble EF-game fixpoint on the Figure-1 pair, and
//! the direct key-constraint evaluation, across structure size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xic::prelude::*;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_fo2");
    group.sample_size(10);
    for n in [2u32, 3, 4] {
        let (g, h) = figure1(n);
        group.bench_with_input(BenchmarkId::new("game", n), &n, |b, _| {
            b.iter(|| assert!(two_pebble_equivalent(&g, &h)))
        });
        group.bench_with_input(BenchmarkId::new("key_eval", n), &n, |b, _| {
            b.iter(|| {
                assert!(g.satisfies_unary_key("l"));
                assert!(!h.satisfies_unary_key("l"));
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
