//! E1 (Prop 3.1) — `L_id` implication: closure construction and query
//! cost must scale linearly in `|Σ|`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xic::prelude::*;
use xic_bench::{lid_queries, lid_sigma, rng};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_lid");
    for n in [256usize, 1024, 4096, 16384] {
        let mut r = rng(1);
        let sigma = lid_sigma(n, &mut r);
        let queries = lid_queries(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("closure", n), &n, |b, _| {
            b.iter(|| LidSolver::new(&sigma, None))
        });
        let solver = LidSolver::new(&sigma, None);
        group.bench_with_input(BenchmarkId::new("queries", n), &n, |b, _| {
            b.iter(|| {
                let mut hits = 0usize;
                for q in &queries {
                    hits += usize::from(solver.holds(q));
                }
                hits
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
