//! E2 (Thm 3.2 / Cor 3.3) — `L_u` implication and finite implication:
//! linear-time chains, and the finite-only cycle family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xic::implication::lu::Mode;
use xic::prelude::*;
use xic_bench::{lu_chain, lu_cycle_family};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_lu");
    for n in [256usize, 1024, 4096] {
        let (sigma, phi) = lu_chain(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("chain_unrestricted", n), &n, |b, _| {
            b.iter(|| {
                let solver = LuSolver::new(&sigma).unwrap();
                solver
                    .implies(&phi, Mode::Unrestricted)
                    .unwrap()
                    .is_implied()
            })
        });
        group.bench_with_input(BenchmarkId::new("chain_finite", n), &n, |b, _| {
            b.iter(|| {
                let solver = LuSolver::new(&sigma).unwrap();
                solver.implies(&phi, Mode::Finite).unwrap().is_implied()
            })
        });
    }
    for n in [16usize, 64, 256] {
        let (sigma, phi) = lu_cycle_family(n);
        group.bench_with_input(BenchmarkId::new("cycle_finite_proof", n), &n, |b, _| {
            b.iter(|| {
                let solver = LuSolver::new(&sigma).unwrap();
                let v = solver.implies(&phi, Mode::Finite).unwrap();
                assert!(v.is_implied());
                v.proof().unwrap().steps.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
