//! E8 (Prop 4.3) — path inverse constraint implication: `O(|Σ||φ|)` over
//! a `|Σ| × |φ|` grid.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xic::prelude::*;
use xic_bench::{inverse_chain_dtdc, inverse_query};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_pathinv");
    for n in [64usize, 256] {
        let d = inverse_chain_dtdc(n);
        let solver = PathSolver::new(&d);
        for k in [n / 4, n] {
            let (t1, p1, t2, p2) = inverse_query(k);
            group.bench_with_input(BenchmarkId::new(format!("sigma{n}"), k), &k, |b, _| {
                b.iter(|| {
                    assert!(solver.inverse_implied(&t1, &p1, &t2, &p2));
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
