//! E11 — the compiled constraint engine (one-pass shared field
//! extraction, optional thread fan-out) against the naive per-constraint
//! checker on a constraint-heavy document (10 `L_u` constraints over
//! shared fields; see `constraint_heavy_workload`).
//!
//! Three series per document size:
//!
//! * `per_constraint` — loop `check_constraint` over Σ (re-walks the tree
//!   and re-extracts every field per constraint): the seed baseline.
//! * `engine_t1` — the compiled engine, sequential.
//! * `engine_t2` / `engine_t4` — the compiled engine with the extent scans
//!   fanned out across worker threads (byte-identical reports).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xic::prelude::*;
use xic_bench::constraint_heavy_workload;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_validate_engine");
    group.sample_size(10);
    for n in [10_000usize, 100_000, 1_000_000] {
        let (dtdc, tree) = constraint_heavy_workload(n, 11);
        group.throughput(Throughput::Elements(tree.len() as u64));
        group.bench_with_input(BenchmarkId::new("per_constraint", n), &n, |b, _| {
            b.iter(|| {
                let violations: usize = dtdc
                    .constraints()
                    .iter()
                    .map(|c| check_constraint(&tree, &dtdc, c).len())
                    .sum();
                assert_eq!(violations, 0);
            })
        });
        for threads in [1usize, 2, 4] {
            let v = Validator::with_matcher(
                &dtdc,
                MatcherKind::Dfa,
                Options::default().with_threads(threads),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("engine_t{threads}"), n),
                &n,
                |b, _| b.iter(|| assert!(v.validate_constraints(&tree).is_valid())),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
