//! E10 (Fig. 2, §2.4) — Definition 2.4 validation throughput on the
//! paper's document families, XML parsing throughput, and the
//! content-model matcher ablation (E10b).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xic::prelude::*;
use xic_bench::{company_workload, publishers_workload};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_validate");
    group.sample_size(20);
    for n in [100usize, 1000, 5000] {
        let (dtdc, tree) = company_workload(n, 1);
        let validator = Validator::new(&dtdc);
        group.throughput(Throughput::Elements(tree.len() as u64));
        group.bench_with_input(BenchmarkId::new("company", n), &n, |b, _| {
            b.iter(|| assert!(validator.validate(&tree).is_valid()))
        });
    }
    for n in [100usize, 1000, 5000] {
        let (dtdc, tree) = publishers_workload(n, 2);
        let validator = Validator::new(&dtdc);
        group.throughput(Throughput::Elements(tree.len() as u64));
        group.bench_with_input(BenchmarkId::new("relational", n), &n, |b, _| {
            b.iter(|| assert!(validator.validate(&tree).is_valid()))
        });
    }
    // Ablation E10a: compile-once validator reuse vs per-document
    // recompilation of every content-model DFA.
    {
        let (dtdc, tree) = company_workload(1000, 5);
        let reused = Validator::new(&dtdc);
        group.bench_function(BenchmarkId::new("validator", "reused"), |b| {
            b.iter(|| assert!(reused.validate(&tree).is_valid()))
        });
        group.bench_function(BenchmarkId::new("validator", "fresh"), |b| {
            b.iter(|| assert!(Validator::new(&dtdc).validate(&tree).is_valid()))
        });
    }

    // Ablation E10b: matcher kinds, structural pass only.
    let (dtdc, tree) = company_workload(300, 3);
    for (label, kind) in [
        ("dfa", MatcherKind::Dfa),
        ("nfa", MatcherKind::Nfa),
        ("derivative", MatcherKind::Derivative),
    ] {
        let v = Validator::with_matcher(&dtdc, kind, Options::default());
        group.bench_function(BenchmarkId::new("matcher", label), |b| {
            b.iter(|| assert!(v.validate_structure(&tree).is_valid()))
        });
    }
    // XML parse throughput.
    let (dtdc, tree) = company_workload(2000, 4);
    let xml = format!(
        "<!DOCTYPE db [\n{}]>\n{}",
        serialize_dtd(dtdc.structure()),
        serialize_document(&tree)
    );
    group.throughput(Throughput::Bytes(xml.len() as u64));
    group.bench_function("xml_parse", |b| {
        b.iter(|| parse_document(&xml).unwrap().tree.len())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
