//! E5 (Thm 3.8) — primary multi-attribute keys and foreign keys: the
//! `I_p` saturation and query cost across chain length and key arity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xic::prelude::*;
use xic_bench::lp_chain;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_lp");
    for arity in [1usize, 4, 8] {
        for n in [8usize, 32] {
            let (sigma, phi) = lp_chain(n, arity);
            group.bench_with_input(BenchmarkId::new(format!("arity{arity}"), n), &n, |b, _| {
                b.iter(|| {
                    let solver = LpSolver::new(&sigma).unwrap();
                    assert!(solver.implies(&phi).is_implied());
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
