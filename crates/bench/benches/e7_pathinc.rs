//! E7 (Prop 4.2) — path inclusion constraint implication:
//! `O(|φ|(|Σ| + |P|))` across nesting depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xic::prelude::*;
use xic_bench::{nested_dtdc, spine};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_pathinc");
    for depth in [64usize, 256, 1024] {
        let d = nested_dtdc(depth);
        let solver = PathSolver::new(&d);
        let mid = depth / 2;
        let rho1 = spine(0, depth, false);
        let rho2 = spine(mid, depth, false);
        let tau2: Name = format!("r{mid}").as_str().into();
        group.throughput(Throughput::Elements(depth as u64));
        group.bench_with_input(BenchmarkId::new("query", depth), &depth, |b, _| {
            b.iter(|| {
                assert!(solver.inclusion_implied(&"r0".into(), &rho1, &tau2, &rho2));
            })
        });
        // Adversarial: a near-miss suffix (differs at the first step) must
        // be refuted at similar cost.
        let mut bad_steps: Vec<String> = ((mid + 1)..=depth).map(|i| format!("r{i}")).collect();
        bad_steps[0] = "nosuch".into();
        let bad = Path::new(bad_steps);
        group.bench_with_input(BenchmarkId::new("refute", depth), &depth, |b, _| {
            b.iter(|| {
                assert!(!solver.inclusion_implied(&"r0".into(), &rho1, &tau2, &bad));
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
