//! # xic-legacy — constraint-preserving export of legacy databases to XML
//!
//! Section 1 of Fan & Siméon (PODS 2000) motivates the constraint
//! languages with data "originating in legacy sources, notably relational
//! and object databases": keys, foreign keys, and inverse relationships
//! "convey a fundamental part of the original information that we do not
//! want to lose". This crate makes those translations executable:
//!
//! * [`RelSchema`] — relational schemas (relations, columns, primary keys,
//!   foreign keys) exported to a `DTD^C` with **`L`** constraints
//!   ([`RelSchema::to_dtdc`]), mirroring the paper's publishers/editors
//!   example; with instances ([`RelInstance`]) exported to data trees and
//!   a synthetic FK-consistent generator for benchmarks;
//! * [`ObjSchema`] — ODL-style object schemas (classes, string attributes,
//!   keys, single/many relationships with optional inverses) exported to a
//!   `DTD^C` with **`L_id`** constraints ([`ObjSchema::to_dtdc`]),
//!   mirroring the paper's person/dept example; with [`ObjInstance`]
//!   export and a consistent generator.
//!
//! The exporters follow the paper's encodings: relational rows become
//! elements whose columns are both sub-elements (document-friendly) and
//! attributes (so `L`'s attribute-based keys apply); objects keep their
//! identity in an `ID` attribute `oid`, relationships become
//! `IDREF`/`IDREFS` attributes, and every declared inverse becomes an
//! `L_id` inverse constraint.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod object;
mod relational;

pub use object::{Class, ObjInstance, ObjSchema, Relationship};
pub use relational::{RelFk, RelInstance, RelSchema, Relation};
