//! ODL-style object schemas and their identity-preserving XML export.

use std::collections::{BTreeMap, BTreeSet};

use rand::Rng;
use xic_constraints::{Constraint, DtdC, DtdStructure, Language};
use xic_model::{AttrValue, DataTree, Name, TreeBuilder};

/// A relationship of a class: single- or set-valued reference to a target
/// class, optionally declared inverse to a relationship of the target.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Relationship {
    /// Relationship (attribute) name.
    pub name: Name,
    /// Target class.
    pub target: Name,
    /// `true` for set-valued (`IDREFS`), `false` for single (`IDREF`).
    pub many: bool,
    /// The inverse relationship's name on the target class, if declared
    /// (ODL `inverse` clauses; both sides must be set-valued to yield an
    /// `L_id` inverse constraint).
    pub inverse: Option<Name>,
}

/// One class: string attributes (exported as sub-elements), keys among
/// them (§3.4 sub-element keys), and relationships.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Class {
    /// Class (element) name.
    pub name: Name,
    /// String-valued attributes, exported as sub-elements.
    pub attrs: Vec<Name>,
    /// Attributes that are keys of the class.
    pub keys: Vec<Name>,
    /// Relationships to other classes.
    pub relationships: Vec<Relationship>,
}

/// An ODL-style object schema.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ObjSchema {
    /// The classes, in declaration order.
    pub classes: Vec<Class>,
}

impl ObjSchema {
    /// The paper's person/dept schema (§1): `name`/`dname` keys, and the
    /// inverse relationship between `Person.in_dept` and `Dept.has_staff`,
    /// plus the single-valued `manager` reference.
    pub fn person_dept() -> ObjSchema {
        ObjSchema {
            classes: vec![
                Class {
                    name: "person".into(),
                    attrs: vec!["name".into(), "address".into()],
                    keys: vec!["name".into()],
                    relationships: vec![Relationship {
                        name: "in_dept".into(),
                        target: "dept".into(),
                        many: true,
                        inverse: Some("has_staff".into()),
                    }],
                },
                Class {
                    name: "dept".into(),
                    attrs: vec!["dname".into()],
                    keys: vec!["dname".into()],
                    relationships: vec![
                        Relationship {
                            name: "manager".into(),
                            target: "person".into(),
                            many: false,
                            inverse: None,
                        },
                        Relationship {
                            name: "has_staff".into(),
                            target: "person".into(),
                            many: true,
                            inverse: Some("in_dept".into()),
                        },
                    ],
                },
            ],
        }
    }

    /// Exports the schema to a `DTD^C` with `L_id` constraints: each class
    /// element carries an `ID` attribute `oid`, relationships become
    /// `IDREF`/`IDREFS` attributes with (set-valued) foreign keys into the
    /// target's IDs, declared keys become sub-element key constraints
    /// (§3.4), and declared inverses become `L_id` inverse constraints.
    pub fn to_dtdc(&self) -> DtdC {
        use xic_regex::ContentModel;
        let mut b = DtdStructure::builder("db");
        let db_model = ContentModel::seq_all(
            self.classes
                .iter()
                .map(|c| ContentModel::star(ContentModel::Elem(c.name.clone()))),
        );
        b = b.elem_model("db", db_model);
        let mut attr_elems: BTreeSet<Name> = BTreeSet::new();
        for c in &self.classes {
            b = b.elem_model(
                c.name.clone(),
                ContentModel::seq_all(c.attrs.iter().map(|a| ContentModel::Elem(a.clone()))),
            );
            b = b.id_attr(c.name.clone(), "oid");
            for r in &c.relationships {
                b = if r.many {
                    b.idrefs_attr(c.name.clone(), r.name.clone())
                } else {
                    b.idref_attr(c.name.clone(), r.name.clone())
                };
            }
            attr_elems.extend(c.attrs.iter().cloned());
        }
        for a in &attr_elems {
            b = b.elem_model(a.clone(), ContentModel::S);
        }
        let structure = b.build().expect("generated object structure");

        let mut sigma = Vec::new();
        for c in &self.classes {
            sigma.push(Constraint::Id {
                tau: c.name.clone(),
            });
        }
        for c in &self.classes {
            for k in &c.keys {
                sigma.push(Constraint::sub_key(c.name.clone(), k.clone()));
            }
        }
        let mut seen_inverses: BTreeSet<(Name, Name)> = BTreeSet::new();
        for c in &self.classes {
            for r in &c.relationships {
                if r.many {
                    sigma.push(Constraint::SetFkToId {
                        tau: c.name.clone(),
                        attr: r.name.clone(),
                        target: r.target.clone(),
                    });
                } else {
                    sigma.push(Constraint::FkToId {
                        tau: c.name.clone(),
                        attr: r.name.clone(),
                        target: r.target.clone(),
                    });
                }
                if let Some(inv) = &r.inverse {
                    // L_id inverse constraints require set-valued IDREFS
                    // attributes on both sides; otherwise the FKs above
                    // are all the semantics that survives export.
                    let partner_many = r.many
                        && self
                            .classes
                            .iter()
                            .find(|k| k.name == r.target)
                            .and_then(|k| k.relationships.iter().find(|p| &p.name == inv))
                            .is_some_and(|p| p.many);
                    if !partner_many {
                        continue;
                    }
                    let key = if (c.name.clone(), r.name.clone()) < (r.target.clone(), inv.clone())
                    {
                        (c.name.clone(), r.name.clone())
                    } else {
                        (r.target.clone(), inv.clone())
                    };
                    if seen_inverses.insert(key) {
                        sigma.push(Constraint::InverseId {
                            tau: c.name.clone(),
                            attr: r.name.clone(),
                            target: r.target.clone(),
                            target_attr: inv.clone(),
                        });
                    }
                }
            }
        }
        DtdC::new(structure, Language::Lid, sigma).expect("exported Σ is well-formed")
    }

    /// Generates a consistent instance with `n` objects per class:
    /// globally unique OIDs, unique key attribute values, references to
    /// uniformly chosen targets, and inverse relationships kept
    /// symmetric.
    pub fn generate_instance<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> ObjInstance {
        let mut inst = ObjInstance::default();
        let mut next_oid = 0usize;
        // Create objects and OIDs.
        for c in &self.classes {
            let objs = (0..n)
                .map(|i| {
                    let oid = format!("o{next_oid}");
                    next_oid += 1;
                    let attrs = c
                        .attrs
                        .iter()
                        .map(|a| (a.clone(), format!("{}-{}-{}", c.name, a, i)))
                        .collect();
                    Obj {
                        oid,
                        attrs,
                        refs: BTreeMap::new(),
                    }
                })
                .collect();
            inst.objects.insert(c.name.clone(), objs);
        }
        // Wire references.
        for c in &self.classes {
            for r in &c.relationships {
                let target_oids: Vec<String> = inst
                    .objects
                    .get(&r.target)
                    .map(|v| v.iter().map(|o| o.oid.clone()).collect())
                    .unwrap_or_default();
                if target_oids.is_empty() {
                    // Single-valued references need a target; set-valued
                    // ones may stay empty.
                    if r.many {
                        for o in inst.objects.get_mut(&c.name).into_iter().flatten() {
                            o.refs.insert(r.name.clone(), Vec::new());
                        }
                    }
                    continue;
                }
                let picks: Vec<Vec<String>> = (0..n)
                    .map(|_| {
                        if r.many {
                            let k = rng.gen_range(0..=2.min(target_oids.len()));
                            let mut chosen = BTreeSet::new();
                            for _ in 0..k {
                                chosen.insert(
                                    target_oids[rng.gen_range(0..target_oids.len())].clone(),
                                );
                            }
                            chosen.into_iter().collect()
                        } else {
                            vec![target_oids[rng.gen_range(0..target_oids.len())].clone()]
                        }
                    })
                    .collect();
                let source = inst.objects.get_mut(&c.name).expect("class");
                for (o, pick) in source.iter_mut().zip(picks) {
                    o.refs.insert(r.name.clone(), pick);
                }
            }
        }
        // Repair inverses: make both directions symmetric by echoing.
        loop {
            let mut changed = false;
            for c in &self.classes {
                for r in &c.relationships {
                    let Some(inv) = &r.inverse else { continue };
                    if !r.many {
                        continue; // L_id inverses are between set-valued refs
                    }
                    // For each object o of c and each target t in
                    // o.refs[r]: t.refs[inv] must contain o.oid.
                    let sources: Vec<(String, Vec<String>)> = inst
                        .objects
                        .get(&c.name)
                        .map(|v| {
                            v.iter()
                                .map(|o| {
                                    (
                                        o.oid.clone(),
                                        o.refs.get(&r.name).cloned().unwrap_or_default(),
                                    )
                                })
                                .collect()
                        })
                        .unwrap_or_default();
                    let Some(targets) = inst.objects.get_mut(&r.target) else {
                        continue;
                    };
                    for (src_oid, tlist) in sources {
                        for t_oid in tlist {
                            if let Some(t) = targets.iter_mut().find(|t| t.oid == t_oid) {
                                let echo = t.refs.entry(inv.clone()).or_default();
                                if !echo.contains(&src_oid) {
                                    echo.push(src_oid.clone());
                                    changed = true;
                                }
                            }
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        inst
    }

    /// Exports an instance as a data tree conforming to
    /// [`ObjSchema::to_dtdc`].
    pub fn export(&self, inst: &ObjInstance) -> DataTree {
        let mut b = TreeBuilder::new();
        let db = b.node("db");
        for c in &self.classes {
            for o in inst.objects.get(&c.name).map(Vec::as_slice).unwrap_or(&[]) {
                let e = b.child_node(db, c.name.clone()).expect("fresh");
                b.attr(e, "oid", AttrValue::single(o.oid.clone()))
                    .expect("fresh attr");
                for r in &c.relationships {
                    let vals = o.refs.get(&r.name).cloned().unwrap_or_default();
                    let av = if r.many {
                        AttrValue::set(vals)
                    } else {
                        AttrValue::single(vals.first().cloned().unwrap_or_default())
                    };
                    b.attr(e, r.name.clone(), av).expect("fresh attr");
                }
                for a in &c.attrs {
                    let v = o.attrs.get(a).cloned().unwrap_or_default();
                    b.leaf(e, a.clone(), v).expect("fresh leaf");
                }
            }
        }
        b.finish(db).expect("well-formed tree")
    }
}

/// One object: its OID, attribute values and reference lists.
#[derive(Clone, Debug, Default)]
pub struct Obj {
    /// The object identifier.
    pub oid: String,
    /// Attribute values.
    pub attrs: BTreeMap<Name, String>,
    /// Reference lists per relationship (singletons for single-valued).
    pub refs: BTreeMap<Name, Vec<String>>,
}

/// Objects per class.
#[derive(Clone, Debug, Default)]
pub struct ObjInstance {
    /// The objects of each class.
    pub objects: BTreeMap<Name, Vec<Obj>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use xic_validate::validate;

    #[test]
    fn person_dept_matches_paper_dtdc() {
        let d = ObjSchema::person_dept().to_dtdc();
        let paper = xic_constraints::examples::company_dtdc();
        // Same structure surface…
        let (s, ps) = (d.structure(), paper.structure());
        for tau in ["db", "person", "dept", "name", "address", "dname"] {
            assert!(s.has_element(tau), "missing {tau}");
            assert_eq!(
                s.content_model(tau).unwrap().to_string(),
                ps.content_model(tau).unwrap().to_string(),
                "content of {tau}"
            );
        }
        assert_eq!(s.id_attr("person").unwrap().as_str(), "oid");
        assert_eq!(s.id_attr("dept").unwrap().as_str(), "oid");
        // …and the same Σ up to ordering (inverse constraints are
        // symmetric, so normalize their side order before comparing).
        fn norm(c: &Constraint) -> String {
            let s = c.to_string();
            match s.split_once(" <=> ") {
                Some((a, b)) if a > b => format!("{b} <=> {a}"),
                _ => s,
            }
        }
        let mut ours: Vec<String> = d.constraints().iter().map(norm).collect();
        let mut theirs: Vec<String> = paper.constraints().iter().map(norm).collect();
        ours.sort();
        theirs.sort();
        assert_eq!(ours, theirs);
    }

    #[test]
    fn generated_instances_validate() {
        let schema = ObjSchema::person_dept();
        let d = schema.to_dtdc();
        let mut rng = SmallRng::seed_from_u64(5);
        for n in [0, 1, 4, 25] {
            let inst = schema.generate_instance(n, &mut rng);
            let tree = schema.export(&inst);
            let report = validate(&tree, &d);
            assert!(report.is_valid(), "n={n}: {report}");
            assert_eq!(tree.ext("person").count(), n);
            assert_eq!(tree.ext("dept").count(), n);
        }
    }

    #[test]
    fn breaking_the_inverse_is_detected() {
        let schema = ObjSchema::person_dept();
        let d = schema.to_dtdc();
        let mut rng = SmallRng::seed_from_u64(7);
        let mut inst = schema.generate_instance(4, &mut rng);
        // Make dept 0 claim person 0 as staff without the echo.
        let p0_oid = inst.objects[&Name::new("person")][0].oid.clone();
        let d0 = &mut inst.objects.get_mut(&Name::new("dept")).unwrap()[0];
        let staff = d0.refs.entry("has_staff".into()).or_default();
        if !staff.contains(&p0_oid) {
            staff.push(p0_oid.clone());
        }
        let p0 = &mut inst.objects.get_mut(&Name::new("person")).unwrap()[0];
        p0.refs.insert("in_dept".into(), Vec::new());
        let tree = schema.export(&inst);
        let report = validate(&tree, &d);
        assert!(!report.is_valid());
    }

    #[test]
    fn exported_sigma_feeds_the_lid_solver() {
        let d = ObjSchema::person_dept().to_dtdc();
        let solver = xic_implication::LidSolver::new(d.constraints(), Some(d.structure()));
        // The inverse forces both set-valued FKs; query one of them.
        let phi = Constraint::SetFkToId {
            tau: "person".into(),
            attr: "in_dept".into(),
            target: "dept".into(),
        };
        assert!(solver.implies(&phi).is_implied());
        // And the ID constraints imply keys on oid.
        let phi = Constraint::unary_key("dept", "oid");
        assert!(solver.implies_with(&phi, Some(d.structure())).is_implied());
    }

    #[test]
    fn custom_schema_with_single_valued_inverse_skipped() {
        // A single-valued relationship with an inverse declaration is
        // exported without an inverse constraint (L_id inverses require
        // set-valued attributes on both sides).
        let schema = ObjSchema {
            classes: vec![
                Class {
                    name: "a".into(),
                    attrs: vec![],
                    keys: vec![],
                    relationships: vec![Relationship {
                        name: "one".into(),
                        target: "b".into(),
                        many: false,
                        inverse: Some("back".into()),
                    }],
                },
                Class {
                    name: "b".into(),
                    attrs: vec![],
                    keys: vec![],
                    relationships: vec![Relationship {
                        name: "back".into(),
                        target: "a".into(),
                        many: true,
                        inverse: None,
                    }],
                },
            ],
        };
        let d = schema.to_dtdc();
        // The inverse between a single-valued and set-valued pair is still
        // emitted as constraints? No: it appears in Σ only if both sides
        // set-valued; here the export keeps the FKs but drops the inverse.
        let has_inverse = d
            .constraints()
            .iter()
            .any(|c| matches!(c, Constraint::InverseId { .. }));
        assert!(!has_inverse);
        // The generator still produces valid documents.
        let mut rng = SmallRng::seed_from_u64(1);
        let inst = schema.generate_instance(3, &mut rng);
        let tree = schema.export(&inst);
        assert!(validate(&tree, &d).is_valid());
    }
}
