//! Relational schemas and their constraint-preserving XML export.

use std::collections::{BTreeMap, HashMap};

use rand::Rng;
use xic_constraints::{Constraint, DtdC, DtdStructure, Language};
use xic_model::{AttrValue, DataTree, Name, TreeBuilder};

/// A foreign key of a relation: `columns ⊆ target[target_columns]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelFk {
    /// Referencing columns (in order).
    pub columns: Vec<Name>,
    /// Referenced relation.
    pub target: Name,
    /// Referenced columns (must be the target's primary key, in order).
    pub target_columns: Vec<Name>,
}

/// One relation: name, columns, primary key, foreign keys.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Relation {
    /// Relation (row-element) name.
    pub name: Name,
    /// All columns, in order.
    pub columns: Vec<Name>,
    /// The primary-key columns (subset of `columns`).
    pub key: Vec<Name>,
    /// Foreign keys.
    pub fks: Vec<RelFk>,
}

/// A relational schema.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RelSchema {
    /// The relations, in declaration order.
    pub relations: Vec<Relation>,
}

impl RelSchema {
    /// The paper's publishers/editors schema (§1):
    /// `publishers(pname, country, address)` with key `(pname, country)`;
    /// `editors(name, pname, country)` with key `(name)` and foreign key
    /// `(pname, country) ⊆ publishers(pname, country)`.
    pub fn publishers_editors() -> RelSchema {
        RelSchema {
            relations: vec![
                Relation {
                    name: "publisher".into(),
                    columns: vec!["pname".into(), "country".into(), "address".into()],
                    key: vec!["pname".into(), "country".into()],
                    fks: vec![],
                },
                Relation {
                    name: "editor".into(),
                    columns: vec!["name".into(), "pname".into(), "country".into()],
                    key: vec!["name".into()],
                    fks: vec![RelFk {
                        columns: vec!["pname".into(), "country".into()],
                        target: "publisher".into(),
                        target_columns: vec!["pname".into(), "country".into()],
                    }],
                },
            ],
        }
    }

    /// The wrapper element holding all rows of `rel` (`publisher` rows live
    /// under `publishers`).
    fn wrapper(rel: &Name) -> Name {
        Name::new(format!("{rel}s"))
    }

    /// Exports the schema to a `DTD^C` with `L` constraints: a `db` root
    /// holding one wrapper per relation, row elements carrying every
    /// column both as a sub-element (with string content) and as an
    /// attribute, the primary key as a key constraint and each foreign key
    /// as an `L` foreign-key constraint.
    pub fn to_dtdc(&self) -> DtdC {
        use xic_regex::ContentModel;
        let mut b = DtdStructure::builder("db");
        let db_model = ContentModel::seq_all(
            self.relations
                .iter()
                .map(|r| ContentModel::Elem(Self::wrapper(&r.name))),
        );
        b = b.elem_model("db", db_model);
        let mut declared_cols: BTreeMap<Name, ()> = BTreeMap::new();
        for r in &self.relations {
            b = b.elem_model(
                Self::wrapper(&r.name),
                ContentModel::star(ContentModel::Elem(r.name.clone())),
            );
            b = b.elem_model(
                r.name.clone(),
                ContentModel::seq_all(r.columns.iter().map(|c| ContentModel::Elem(c.clone()))),
            );
            for c in &r.columns {
                declared_cols.entry(c.clone()).or_default();
                b = b.attr(r.name.clone(), c.clone(), "S");
            }
        }
        for c in declared_cols.keys() {
            b = b.elem_model(c.clone(), xic_regex::ContentModel::S);
        }
        let structure = b.build().expect("generated relational structure");

        let mut sigma = Vec::new();
        for r in &self.relations {
            sigma.push(Constraint::key(
                r.name.clone(),
                r.key.iter().map(Name::as_str),
            ));
        }
        for r in &self.relations {
            for fk in &r.fks {
                sigma.push(Constraint::fk(
                    r.name.clone(),
                    fk.columns.iter().map(Name::as_str),
                    fk.target.clone(),
                    fk.target_columns.iter().map(Name::as_str),
                ));
            }
        }
        DtdC::new(structure, Language::L, sigma).expect("exported Σ is well-formed")
    }

    /// Generates an FK-consistent instance with `rows` rows per relation.
    ///
    /// Keys are made unique by construction; each foreign key copies the
    /// key columns of a uniformly chosen target row, so referential
    /// integrity holds whenever targets are generated first (relations are
    /// processed in declaration order, which must topologically order the
    /// FKs — true for the built-in schemas and generator-produced ones).
    pub fn generate_instance<R: Rng + ?Sized>(&self, rows: usize, rng: &mut R) -> RelInstance {
        let mut inst = RelInstance::default();
        for r in &self.relations {
            let mut out = Vec::with_capacity(rows);
            for i in 0..rows {
                let mut row: HashMap<Name, String> = HashMap::new();
                for c in &r.columns {
                    row.insert(c.clone(), format!("{}-{}-{}", r.name, c, i));
                }
                // Key uniqueness: suffix the first key column with the row
                // index (already unique by construction above).
                for fk in &r.fks {
                    let targets = inst.rows.get(&fk.target).cloned().unwrap_or_default();
                    if targets.is_empty() {
                        continue;
                    }
                    let t = &targets[rng.gen_range(0..targets.len())];
                    for (c, tc) in fk.columns.iter().zip(&fk.target_columns) {
                        row.insert(c.clone(), t[tc].clone());
                    }
                }
                out.push(row);
            }
            inst.rows.insert(r.name.clone(), out);
        }
        inst
    }

    /// Exports an instance as a data tree conforming to
    /// [`RelSchema::to_dtdc`].
    pub fn export(&self, inst: &RelInstance) -> DataTree {
        let mut b = TreeBuilder::new();
        let db = b.node("db");
        for r in &self.relations {
            let w = b.child_node(db, Self::wrapper(&r.name)).expect("fresh");
            for row in inst.rows.get(&r.name).map(Vec::as_slice).unwrap_or(&[]) {
                let e = b.child_node(w, r.name.clone()).expect("fresh");
                for c in &r.columns {
                    let v = row.get(c).cloned().unwrap_or_default();
                    b.attr(e, c.clone(), AttrValue::single(v.clone()))
                        .expect("fresh attr");
                    b.leaf(e, c.clone(), v).expect("fresh leaf");
                }
            }
        }
        b.finish(db).expect("well-formed tree")
    }
}

/// Rows per relation: column name → value.
#[derive(Clone, Debug, Default)]
pub struct RelInstance {
    /// The rows of each relation.
    pub rows: HashMap<Name, Vec<HashMap<Name, String>>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use xic_validate::validate;

    #[test]
    fn publishers_schema_matches_paper_dtdc() {
        let d = RelSchema::publishers_editors().to_dtdc();
        assert_eq!(d.language(), Language::L);
        let s = d.structure();
        assert!(s.has_element("publishers"));
        assert!(s.has_element("publisher"));
        assert_eq!(
            s.content_model("publisher").unwrap().to_string(),
            "pname, country, address"
        );
        assert!(d
            .constraints()
            .contains(&Constraint::key("publisher", ["pname", "country"])));
        assert!(d.constraints().contains(&Constraint::fk(
            "editor",
            ["pname", "country"],
            "publisher",
            ["pname", "country"]
        )));
    }

    #[test]
    fn generated_instances_validate() {
        let schema = RelSchema::publishers_editors();
        let d = schema.to_dtdc();
        let mut rng = SmallRng::seed_from_u64(11);
        for rows in [0, 1, 5, 40] {
            let inst = schema.generate_instance(rows, &mut rng);
            let tree = schema.export(&inst);
            let report = validate(&tree, &d);
            assert!(report.is_valid(), "rows={rows}: {report}");
            assert_eq!(tree.ext("publisher").count(), rows);
            assert_eq!(tree.ext("editor").count(), rows);
        }
    }

    #[test]
    fn broken_fk_detected_by_validator() {
        let schema = RelSchema::publishers_editors();
        let d = schema.to_dtdc();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut inst = schema.generate_instance(3, &mut rng);
        // Point one editor at a missing publisher.
        inst.rows.get_mut(&Name::new("editor")).unwrap()[0]
            .insert("country".into(), "Atlantis".into());
        let tree = schema.export(&inst);
        let report = validate(&tree, &d);
        assert!(!report.is_valid());
    }

    #[test]
    fn custom_three_level_schema_round_trips() {
        // region ← country ← city: FK chains across three relations.
        let schema = RelSchema {
            relations: vec![
                Relation {
                    name: "region".into(),
                    columns: vec!["rname".into()],
                    key: vec!["rname".into()],
                    fks: vec![],
                },
                Relation {
                    name: "country".into(),
                    columns: vec!["cname".into(), "rname".into()],
                    key: vec!["cname".into()],
                    fks: vec![RelFk {
                        columns: vec!["rname".into()],
                        target: "region".into(),
                        target_columns: vec!["rname".into()],
                    }],
                },
                Relation {
                    name: "city".into(),
                    columns: vec!["name".into(), "cname".into()],
                    key: vec!["name".into()],
                    fks: vec![RelFk {
                        columns: vec!["cname".into()],
                        target: "country".into(),
                        target_columns: vec!["cname".into()],
                    }],
                },
            ],
        };
        let d = schema.to_dtdc();
        let mut rng = SmallRng::seed_from_u64(21);
        let inst = schema.generate_instance(7, &mut rng);
        let tree = schema.export(&inst);
        let report = xic_validate::validate(&tree, &d);
        assert!(report.is_valid(), "{report}");
        // The exported Σ supports transitive reasoning: city.cname ⊆
        // country.cname and country.rname ⊆ region.rname are declared, and
        // the L_u solver (unary columns) composes nothing spurious.
        let solver = xic_implication::LuSolver::new(d.constraints()).unwrap();
        use xic_implication::lu::Mode;
        assert!(solver
            .implies(
                &Constraint::unary_fk("city", "cname", "country", "cname"),
                Mode::Finite
            )
            .unwrap()
            .is_implied());
        assert!(!solver
            .implies(
                &Constraint::unary_fk("city", "name", "region", "rname"),
                Mode::Finite
            )
            .unwrap()
            .is_implied());
    }

    #[test]
    fn exported_sigma_feeds_the_lp_solver() {
        let d = RelSchema::publishers_editors().to_dtdc();
        let solver = xic_implication::LpSolver::new(d.constraints()).unwrap();
        let phi = Constraint::fk(
            "editor",
            ["country", "pname"],
            "publisher",
            ["country", "pname"],
        );
        assert!(solver.implies(&phi).is_implied());
    }
}
