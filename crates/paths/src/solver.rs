//! Path typing (`paths(τ)`, `type(τ.ρ)`) and the three implication
//! deciders of Section 4.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;

use xic_constraints::{AttrKind, Constraint, DtdC, Field};
use xic_implication::LidSolver;
use xic_model::Name;

use crate::path::{Path, PathConstraint};

/// `type(τ.ρ)`: an element type or the string type `S`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StepType {
    /// An element type in `E`.
    Elem(Name),
    /// The atomic string type.
    S,
}

impl fmt::Display for StepType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepType::Elem(n) => write!(f, "{n}"),
            StepType::S => f.write_str("S"),
        }
    }
}

/// Path reasoning over a `DTD^C` whose `Σ` is in `L_id` (Section 4).
///
/// Construction precomputes, per element type: the elements occurring in
/// its content model, its unique sub-elements (§3.4), and the `I_id`
/// closure of `Σ` (via [`LidSolver`]); every decision procedure then runs
/// in the per-query complexities of Props 4.1–4.3.
///
/// ```
/// use xic_constraints::examples::book_dtdc;
/// use xic_paths::{Path, PathSolver};
///
/// let d = book_dtdc();
/// let solver = PathSolver::new(&d);
/// // The paper's Prop 4.1 example: the isbn of a book's entry determines
/// // the book's authors.
/// assert!(solver.functional_implied(
///     &"book".into(),
///     &Path::from("entry.isbn"),
///     &Path::from("author"),
/// ));
/// // …but the (repeatable) section path does not determine them.
/// assert!(!solver.functional_implied(
///     &"book".into(),
///     &Path::from("section.sid"),
///     &Path::from("author"),
/// ));
/// ```
pub struct PathSolver<'a> {
    dtdc: &'a DtdC,
    lid: LidSolver,
    /// Elements occurring in each type's content model.
    content: HashMap<Name, BTreeSet<Name>>,
    /// Unique sub-elements (§3.4) of each type.
    unique: HashMap<Name, BTreeSet<Name>>,
    /// Basic inverse pairs `(τ, l, τ', l')` from `Σ` (closed under
    /// symmetry).
    inverses: HashSet<(Name, Name, Name, Name)>,
}

impl<'a> PathSolver<'a> {
    /// Builds the solver for a `DTD^C` (intended for `L_id` constraint
    /// sets; other constraints are ignored by the reference analysis).
    pub fn new(dtdc: &'a DtdC) -> Self {
        let s = dtdc.structure();
        let lid = LidSolver::new(
            &dtdc
                .constraints()
                .iter()
                .filter(|c| c.in_language(xic_constraints::Language::Lid))
                .cloned()
                .collect::<Vec<_>>(),
            Some(s),
        );
        let mut content = HashMap::new();
        let mut unique = HashMap::new();
        for tau in s.element_types() {
            let m = s.content_model(tau).expect("declared type");
            content.insert(tau.clone(), m.element_types());
            unique.insert(
                tau.clone(),
                m.unique_subelements().into_iter().collect::<BTreeSet<_>>(),
            );
        }
        let mut inverses = HashSet::new();
        for c in dtdc.constraints() {
            if let Constraint::InverseId {
                tau,
                attr,
                target,
                target_attr,
            } = c
            {
                inverses.insert((
                    tau.clone(),
                    attr.clone(),
                    target.clone(),
                    target_attr.clone(),
                ));
                inverses.insert((
                    target.clone(),
                    target_attr.clone(),
                    tau.clone(),
                    attr.clone(),
                ));
            }
        }
        PathSolver {
            dtdc,
            lid,
            content,
            unique,
            inverses,
        }
    }

    /// The underlying `DTD^C`.
    pub fn dtdc(&self) -> &DtdC {
        self.dtdc
    }

    /// One typing step from `cur` through `label` (§4.1). Attribute steps
    /// take precedence over same-named sub-elements; reference attributes
    /// dereference to their `Σ`-implied target type.
    pub fn step(&self, cur: &StepType, label: &Name) -> Option<StepType> {
        let StepType::Elem(tau) = cur else {
            return None; // no steps out of S
        };
        let s = self.dtdc.structure();
        if s.attr_type(tau, label).is_some() {
            return Some(match self.lid.reference_target(tau, label) {
                Some(t2) => StepType::Elem(t2.clone()),
                None => StepType::S,
            });
        }
        if self.content.get(tau).is_some_and(|els| els.contains(label)) {
            return Some(StepType::Elem(label.clone()));
        }
        None
    }

    /// `type(τ.ρ)`, or `None` when `ρ ∉ paths(τ)`.
    pub fn type_of(&self, tau: &Name, path: &Path) -> Option<StepType> {
        if !self.dtdc.structure().has_element(tau) {
            return None;
        }
        let mut cur = StepType::Elem(tau.clone());
        for label in path.steps() {
            cur = self.step(&cur, label)?;
        }
        Some(cur)
    }

    /// `ρ ∈ paths(τ)`.
    pub fn is_path(&self, tau: &Name, path: &Path) -> bool {
        self.type_of(tau, path).is_some()
    }

    /// Prop 4.1's criterion: is `ρ` a **key path** of `τ`? Every step is
    /// either a unique sub-element of the current type, or an attribute
    /// that is a `Σ`-implied key (or the `ID` attribute under `τ.id →_id
    /// τ`).
    pub fn is_key_path(&self, tau: &Name, path: &Path) -> bool {
        let s = self.dtdc.structure();
        if !s.has_element(tau) {
            return false;
        }
        let mut cur = StepType::Elem(tau.clone());
        for label in path.steps() {
            let StepType::Elem(t1) = &cur else {
                return false;
            };
            if s.attr_type(t1, label).is_some() {
                let keyed = self.lid.holds(&Constraint::Key {
                    tau: t1.clone(),
                    fields: vec![Field::Attr(label.clone())],
                }) || (s.attr_kind(t1, label) == Some(AttrKind::Id)
                    && self.lid.holds(&Constraint::Id { tau: t1.clone() }))
                    || (label.as_str() == "id"
                        && self.lid.holds(&Constraint::Id { tau: t1.clone() }));
                // §3.4 sub-element keys also make the corresponding
                // *sub-element* step a key step; attribute keys are checked
                // here.
                if !keyed {
                    return false;
                }
            } else if self.unique.get(t1).is_some_and(|u| u.contains(label)) {
                // Unique sub-element step.
            } else if self.content.get(t1).is_some_and(|els| els.contains(label)) {
                // A repeatable sub-element: not functional.
                return false;
            } else {
                return false;
            }
            cur = self.step(&cur, label).expect("validated step");
        }
        true
    }

    /// Prop 4.1: `Σ ⊨ τ.ρ → τ.ϱ` (and `Σ ⊨_f …`; the problems coincide)
    /// iff both are paths of `τ` and `ρ` is a key path.
    pub fn functional_implied(&self, tau: &Name, rho: &Path, varrho: &Path) -> bool {
        self.is_path(tau, rho) && self.is_path(tau, varrho) && self.is_key_path(tau, rho)
    }

    /// Prop 4.2: `Σ ⊨ τ₁.ρ₁ ⊆ τ₂.ρ₂` iff `ρ₁ = ϱ.ρ₂` for a prefix `ϱ`
    /// with `type(τ₁.ϱ) = τ₂`.
    pub fn inclusion_implied(&self, tau1: &Name, rho1: &Path, tau2: &Name, rho2: &Path) -> bool {
        if !self.is_path(tau1, rho1) || !self.is_path(tau2, rho2) {
            return false;
        }
        let Some(prefix) = rho1.strip_suffix(rho2) else {
            return false;
        };
        self.type_of(tau1, &prefix) == Some(StepType::Elem(tau2.clone()))
    }

    /// Prop 4.3: `Σ ⊨ τ₁.ρ₁ ⇌ τ₂.ρ₂` by closing `Σ`'s basic inverses
    /// under the composition rule
    /// `τ₁.l₁ ⇌ τ₂.l₂ , τ₂.l₂' ⇌ τ₃.l₃ ⊢ τ₁.l₁.l₂' ⇌ τ₃.l₃.l₂`
    /// — the recursion consumes the head of `ρ₁` and the tail of `ρ₂`,
    /// `O(|Σ||φ|)` overall.
    pub fn inverse_implied(&self, tau1: &Name, rho1: &Path, tau2: &Name, rho2: &Path) -> bool {
        if rho1.len() != rho2.len() || rho1.is_empty() {
            return false;
        }
        self.inverse_rec(tau1, rho1.steps(), tau2, rho2.steps())
    }

    fn inverse_rec(&self, tau1: &Name, rho1: &[Name], tau2: &Name, rho2: &[Name]) -> bool {
        debug_assert_eq!(rho1.len(), rho2.len());
        if rho1.len() == 1 {
            return self.inverses.contains(&(
                tau1.clone(),
                rho1[0].clone(),
                tau2.clone(),
                rho2[0].clone(),
            ));
        }
        let head = &rho1[0];
        let last = &rho2[rho2.len() - 1];
        // Find a basic inverse τ₁.head ⇌ τmid.last and recurse on the
        // inner paths.
        for (t, l, tmid, lmid) in &self.inverses {
            if t == tau1
                && l == head
                && lmid == last
                && self.inverse_rec(tmid, &rho1[1..], tau2, &rho2[..rho2.len() - 1])
            {
                return true;
            }
        }
        false
    }

    /// Enumerates all members of `paths(τ)` of length ≤ `max_len` over the
    /// structure's element and attribute labels. Recursive DTDs make
    /// `paths(τ)` infinite, hence the explicit length bound; used by tests
    /// and exploratory tooling.
    pub fn paths_up_to(&self, tau: &Name, max_len: usize) -> Vec<Path> {
        let s = self.dtdc.structure();
        let mut out = Vec::new();
        if !s.has_element(tau) {
            return out;
        }
        let mut frontier: Vec<(Path, StepType)> =
            vec![(Path::empty(), StepType::Elem(tau.clone()))];
        out.push(Path::empty());
        for _ in 0..max_len {
            let mut next = Vec::new();
            for (p, t) in &frontier {
                let StepType::Elem(t1) = t else { continue };
                // Attribute steps.
                let attrs: Vec<Name> = s.attributes(t1).map(|(l, _)| l.clone()).collect();
                for l in attrs {
                    let q = p.concat(&Path(vec![l.clone()]));
                    let nt = self.step(t, &l).expect("declared attribute steps");
                    out.push(q.clone());
                    next.push((q, nt));
                }
                // Element steps.
                if let Some(els) = self.content.get(t1) {
                    for e in els {
                        let q = p.concat(&Path(vec![e.clone()]));
                        out.push(q.clone());
                        next.push((q, StepType::Elem(e.clone())));
                    }
                }
            }
            frontier = next;
        }
        out
    }

    /// Dispatches a [`PathConstraint`] to the right decider.
    pub fn implied(&self, phi: &PathConstraint) -> bool {
        match phi {
            PathConstraint::Functional { tau, rho, varrho } => {
                self.functional_implied(tau, rho, varrho)
            }
            PathConstraint::Inclusion {
                tau1,
                rho1,
                tau2,
                rho2,
            } => self.inclusion_implied(tau1, rho1, tau2, rho2),
            PathConstraint::Inverse {
                tau1,
                rho1,
                tau2,
                rho2,
            } => self.inverse_implied(tau1, rho1, tau2, rho2),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xic_constraints::examples::{book_dtdc, company_dtdc};
    use xic_constraints::{DtdC, DtdStructure, Language};

    #[test]
    fn typing_follows_the_paper() {
        let d = book_dtdc();
        let s = PathSolver::new(&d);
        let book = Name::new("book");
        // book.entry, book.author, book.ref.to are paths of book.
        assert_eq!(
            s.type_of(&book, &Path::from("entry")),
            Some(StepType::Elem(Name::new("entry")))
        );
        assert_eq!(
            s.type_of(&book, &Path::from("entry.isbn")),
            Some(StepType::S)
        );
        // ref.to dereferences to entry (ref.to ⊆_S entry.isbn is a key
        // reference, not an ID reference, so in the pure-L_u book DTD the
        // attribute does NOT dereference — it is S-typed).
        assert_eq!(s.type_of(&book, &Path::from("ref.to")), Some(StepType::S));
        // Recursion: section.section.section is a path.
        assert!(s.is_path(&Name::new("section"), &Path::from("section.section.title")));
        // Non-paths.
        assert!(!s.is_path(&book, &Path::from("publisher")));
        assert!(!s.is_path(&book, &Path::from("entry.isbn.title")));
        assert!(!s.is_path(&Name::new("nosuch"), &Path::empty()));
    }

    #[test]
    fn id_references_dereference() {
        let d = company_dtdc();
        let s = PathSolver::new(&d);
        let db = Name::new("db");
        // db.dept.manager dereferences to person; then person.name.
        assert_eq!(
            s.type_of(&db, &Path::from("dept.manager")),
            Some(StepType::Elem(Name::new("person")))
        );
        assert_eq!(
            s.type_of(&db, &Path::from("dept.manager.name")),
            Some(StepType::Elem(Name::new("name")))
        );
        // Set-valued references too: person.in_dept → dept.
        assert_eq!(
            s.type_of(&db, &Path::from("person.in_dept.dname")),
            Some(StepType::Elem(Name::new("dname")))
        );
        // Cycles through references are fine (finite acceptance is per
        // query, not a full enumeration of paths(τ)).
        assert!(s.is_path(
            &db,
            &Path::from("dept.manager.in_dept.has_staff.in_dept.dname")
        ));
    }

    #[test]
    fn prop41_examples() {
        let d = book_dtdc();
        let s = PathSolver::new(&d);
        let book = Name::new("book");
        // entry is a unique sub-element, isbn a key of entry: key path.
        assert!(s.is_key_path(&book, &Path::from("entry.isbn")));
        assert!(s.functional_implied(&book, &Path::from("entry.isbn"), &Path::from("author")));
        assert!(s.functional_implied(&book, &Path::from("entry"), &Path::from("section.title")));
        // author is repeatable: not a key path.
        assert!(!s.is_key_path(&book, &Path::from("author")));
        // section is repeatable: section.sid is not a key path of book.
        assert!(!s.is_key_path(&book, &Path::from("section.sid")));
        // entry.title: title is a unique sub-element of entry: key path.
        assert!(s.is_key_path(&book, &Path::from("entry.title")));
        // Undefined paths are never implied.
        assert!(!s.functional_implied(&book, &Path::from("entry.isbn"), &Path::from("bogus")));
    }

    #[test]
    fn prop41_with_id_attributes() {
        let d = company_dtdc();
        let s = PathSolver::new(&d);
        let db = Name::new("db");
        // person is repeatable under db: not a key path.
        assert!(!s.is_key_path(&db, &Path::from("person.oid")));
        // From person itself: oid is the ID attribute (→_id in Σ).
        assert!(s.is_key_path(&Name::new("person"), &Path::from("oid")));
        // name is a sub-element key of person (§3.4) — but as a *step*,
        // name is a unique sub-element, so the path is key either way.
        assert!(s.is_key_path(&Name::new("person"), &Path::from("name")));
        // manager is a single-valued reference but NOT a key of dept.
        assert!(!s.is_key_path(&Name::new("dept"), &Path::from("manager")));
        // dept.manager.name: manager not a key ⇒ not a key path; but
        // manager.oid from dept… oid is a key of person, yet manager
        // itself is not a key of dept, so still not key.
        assert!(!s.is_key_path(&Name::new("dept"), &Path::from("manager.name")));
    }

    #[test]
    fn prop42_examples() {
        let d = company_dtdc();
        let s = PathSolver::new(&d);
        let db = Name::new("db");
        // db.dept.manager ⊆ person (typing form, ρ2 = ε).
        assert!(s.inclusion_implied(
            &db,
            &Path::from("dept.manager"),
            &Name::new("person"),
            &Path::empty()
        ));
        // db.dept.manager.name ⊆ person.name.
        assert!(s.inclusion_implied(
            &db,
            &Path::from("dept.manager.name"),
            &Name::new("person"),
            &Path::from("name")
        ));
        // Not implied: suffix mismatch.
        assert!(!s.inclusion_implied(
            &db,
            &Path::from("dept.manager.name"),
            &Name::new("person"),
            &Path::from("address")
        ));
        // Not implied: type mismatch (manager refers to person, not dept).
        assert!(!s.inclusion_implied(
            &db,
            &Path::from("dept.manager"),
            &Name::new("dept"),
            &Path::empty()
        ));
        // Reflexive.
        assert!(s.inclusion_implied(
            &db,
            &Path::from("person.name"),
            &db,
            &Path::from("person.name")
        ));
    }

    /// The course/student/teacher example of §4.2 (path inverse).
    fn courses_dtdc() -> DtdC {
        let s = DtdStructure::builder("db")
            .elem("db", "(student*, teacher*, course*)")
            .elem("student", "EMPTY")
            .elem("teacher", "EMPTY")
            .elem("course", "EMPTY")
            .id_attr("student", "sid")
            .idrefs_attr("student", "taking")
            .id_attr("teacher", "tid")
            .idrefs_attr("teacher", "teaching")
            .id_attr("course", "cid")
            .idrefs_attr("course", "taken_by")
            .idrefs_attr("course", "taught_by")
            .build()
            .unwrap();
        DtdC::parse(
            s,
            Language::Lid,
            "student.sid ->id student\n\
             teacher.tid ->id teacher\n\
             course.cid ->id course\n\
             student.taking <=> course.taken_by\n\
             teacher.teaching <=> course.taught_by\n",
        )
        .unwrap()
    }

    #[test]
    fn prop43_course_example() {
        let d = courses_dtdc();
        let s = PathSolver::new(&d);
        // Basic inverses and their symmetries.
        assert!(s.inverse_implied(
            &Name::new("student"),
            &Path::from("taking"),
            &Name::new("course"),
            &Path::from("taken_by")
        ));
        assert!(s.inverse_implied(
            &Name::new("course"),
            &Path::from("taken_by"),
            &Name::new("student"),
            &Path::from("taking")
        ));
        // The paper's composed constraint:
        // student.taking.taught_by ⇌ teacher.teaching.taken_by.
        assert!(s.inverse_implied(
            &Name::new("student"),
            &Path::from("taking.taught_by"),
            &Name::new("teacher"),
            &Path::from("teaching.taken_by")
        ));
        // And its symmetric orientation.
        assert!(s.inverse_implied(
            &Name::new("teacher"),
            &Path::from("teaching.taken_by"),
            &Name::new("student"),
            &Path::from("taking.taught_by")
        ));
        // Swapping the inner labels breaks it.
        assert!(!s.inverse_implied(
            &Name::new("student"),
            &Path::from("taking.taken_by"),
            &Name::new("teacher"),
            &Path::from("teaching.taught_by")
        ));
        // Length mismatch / empty paths are never implied.
        assert!(!s.inverse_implied(
            &Name::new("student"),
            &Path::from("taking"),
            &Name::new("course"),
            &Path::from("taken_by.taught_by")
        ));
        assert!(!s.inverse_implied(
            &Name::new("student"),
            &Path::empty(),
            &Name::new("course"),
            &Path::empty()
        ));
    }

    #[test]
    fn paths_up_to_enumerates_exactly_the_paths() {
        let d = book_dtdc();
        let s = PathSolver::new(&d);
        let book = Name::new("book");
        let paths = s.paths_up_to(&book, 3);
        // Every enumerated path is a path; ε included once.
        assert!(paths.contains(&Path::empty()));
        for p in &paths {
            assert!(s.is_path(&book, p), "{p}");
        }
        // Spot members from the paper: book.entry, book.entry.isbn.
        assert!(paths.contains(&Path::from("entry")));
        assert!(paths.contains(&Path::from("entry.isbn")));
        assert!(paths.contains(&Path::from("section.section.sid")));
        // Non-paths absent.
        assert!(!paths.contains(&Path::from("publisher")));
        // The bound is respected.
        assert!(paths.iter().all(|p| p.len() <= 3));
        // Cross-check: brute-force over the label alphabet agrees.
        let labels: Vec<Name> = [
            "entry",
            "author",
            "title",
            "publisher",
            "text",
            "section",
            "ref",
            "isbn",
            "sid",
            "to",
            "book",
        ]
        .iter()
        .map(|s| Name::new(*s))
        .collect();
        let mut expected = vec![Path::empty()];
        let mut frontier = vec![Path::empty()];
        for _ in 0..3 {
            let mut next = Vec::new();
            for p in &frontier {
                for l in &labels {
                    let q = p.concat(&Path(vec![l.clone()]));
                    if s.is_path(&book, &q) {
                        expected.push(q.clone());
                        next.push(q);
                    }
                }
            }
            frontier = next;
        }
        let mut a = paths.clone();
        let mut b = expected;
        a.sort();
        a.dedup();
        b.sort();
        b.dedup();
        assert_eq!(a, b);
    }

    #[test]
    fn dispatch_api() {
        let d = book_dtdc();
        let s = PathSolver::new(&d);
        assert!(s.implied(&PathConstraint::Functional {
            tau: Name::new("book"),
            rho: Path::from("entry.isbn"),
            varrho: Path::from("author"),
        }));
        assert!(s.implied(&PathConstraint::Inclusion {
            tau1: Name::new("book"),
            rho1: Path::from("section.title"),
            tau2: Name::new("section"),
            rho2: Path::from("title"),
        }));
        assert!(!s.implied(&PathConstraint::Inverse {
            tau1: Name::new("book"),
            rho1: Path::from("ref"),
            tau2: Name::new("entry"),
            rho2: Path::from("title"),
        }));
    }
}
