//! # xic-paths — path constraints over `DTD^C`s
//!
//! Implements Section 4 of Fan & Siméon (PODS 2000): navigation paths,
//! their typing relative to a `DTD^C` with `L_id` constraints, and the
//! implication of three families of path constraints by the basic
//! constraints:
//!
//! * **Path functional constraints** `τ.ρ → τ.ϱ` (Prop 4.1) — decided via
//!   the *key path* criterion in `O(|φ|(|Σ| + |P|))`;
//! * **Path inclusion constraints** `τ₁.ρ₁ ⊆ τ₂.ρ₂` (Prop 4.2) — decided
//!   via prefix decomposition (`ρ₁ = ϱ.ρ₂` with `type(τ₁.ϱ) = τ₂`) in
//!   `O(|φ|(|Σ| + |P|))`;
//! * **Path inverse constraints** `τ₁.ρ₁ ⇌ τ₂.ρ₂` (Prop 4.3) — decided by
//!   closing the basic inverses of `Σ` under the composition rule
//!   (`τ₁.l₁ ⇌ τ₂.l₂ , τ₂.l₂' ⇌ τ₃.l₃ ⊢ τ₁.l₁.l₂' ⇌ τ₃.l₃.l₂`) in
//!   `O(|Σ||φ|)`.
//!
//! A path is a sequence of labels from `E ∪ A`; attribute steps whose
//! attribute is `Σ`-implied to reference `τ₂.id` *dereference* to
//! `τ₂`-elements (the paper's "we treat attribute `to` as a reference from
//! a `ref` element to an `entry` element"), other attribute steps end in
//! the string type `S`. [`PathSolver`] computes `paths(τ)` membership and
//! `type(τ.ρ)`; [`nodes_of`] / [`ext_of_path`] implement the semantics
//! `nodes(x.ρ)` / `ext(τ.ρ)` on concrete data trees, used by tests to
//! cross-check every decision procedure against model-level truth.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod eval;
mod path;
mod solver;

pub use eval::{ext_of_path, nodes_of, PathValues};
pub use path::{Path, PathConstraint, PathParseError};
pub use solver::{PathSolver, StepType};
