//! Paths and path constraints.

use std::fmt;

use xic_model::Name;

/// A navigation path: a (possibly empty) sequence of labels from
/// `E ∪ A`.
///
/// The textual form is dot-separated: `entry.isbn`, `ref.to.title`. The
/// empty path `ε` is written `""` or `"ε"`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Path(pub Vec<Name>);

/// Path syntax error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathParseError(pub String);

impl fmt::Display for PathParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid path: {}", self.0)
    }
}

impl std::error::Error for PathParseError {}

impl Path {
    /// The empty path `ε`.
    pub fn empty() -> Self {
        Path(Vec::new())
    }

    /// A path from label steps.
    pub fn new<I, T>(steps: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: Into<Name>,
    {
        Path(steps.into_iter().map(Into::into).collect())
    }

    /// Parses the dot-separated syntax (`""`/`"ε"` is the empty path).
    pub fn parse(src: &str) -> Result<Path, PathParseError> {
        let src = src.trim();
        if src.is_empty() || src == "ε" {
            return Ok(Path::empty());
        }
        let mut steps = Vec::new();
        for part in src.split('.') {
            let part = part.trim();
            if part.is_empty()
                || !part
                    .chars()
                    .all(|c| c.is_alphanumeric() || matches!(c, '_' | '-'))
            {
                return Err(PathParseError(src.to_string()));
            }
            steps.push(Name::new(part));
        }
        Ok(Path(steps))
    }

    /// Number of steps, the `|ρ|` length measure.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True iff this is `ε`.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The steps.
    pub fn steps(&self) -> &[Name] {
        &self.0
    }

    /// Concatenation `ρ.ϱ`.
    pub fn concat(&self, other: &Path) -> Path {
        let mut steps = self.0.clone();
        steps.extend(other.0.iter().cloned());
        Path(steps)
    }

    /// If `self = prefix.suffix`, returns the prefix; `None` when `suffix`
    /// is not a suffix of `self`.
    pub fn strip_suffix(&self, suffix: &Path) -> Option<Path> {
        if suffix.len() > self.len() {
            return None;
        }
        let split = self.len() - suffix.len();
        if self.0[split..] == suffix.0[..] {
            Some(Path(self.0[..split].to_vec()))
        } else {
            None
        }
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return f.write_str("ε");
        }
        for (i, s) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(".")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

impl From<&str> for Path {
    fn from(s: &str) -> Self {
        Path::parse(s).expect("valid path literal")
    }
}

/// A path constraint of Section 4.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PathConstraint {
    /// Path functional constraint `τ.ρ → τ.ϱ` (nodes reached by `ρ`
    /// determine the nodes reached by `ϱ`).
    Functional {
        /// The anchor element type `τ`.
        tau: Name,
        /// The determining path `ρ`.
        rho: Path,
        /// The determined path `ϱ`.
        varrho: Path,
    },
    /// Path inclusion constraint `τ₁.ρ₁ ⊆ τ₂.ρ₂`
    /// (`ext(τ₁.ρ₁) ⊆ ext(τ₂.ρ₂)`).
    Inclusion {
        /// Left anchor type.
        tau1: Name,
        /// Left path.
        rho1: Path,
        /// Right anchor type.
        tau2: Name,
        /// Right path.
        rho2: Path,
    },
    /// Path inverse constraint `τ₁.ρ₁ ⇌ τ₂.ρ₂`.
    Inverse {
        /// Left anchor type.
        tau1: Name,
        /// Left path.
        rho1: Path,
        /// Right anchor type.
        tau2: Name,
        /// Right path.
        rho2: Path,
    },
}

impl PathConstraint {
    /// Parses the textual syntax mirroring the paper's notation:
    ///
    /// ```text
    /// book.entry.isbn -> book.author        path functional constraint
    /// book.ref.to <= entry                  path inclusion constraint
    /// book.ref.to.title <= entry.title      path inclusion constraint
    /// student.taking <=> course.taken_by    path inverse constraint
    /// ```
    ///
    /// The first step of each side is the anchor element type; the rest is
    /// the path (possibly empty, as in `… <= entry`). For functional
    /// constraints both sides must share the anchor.
    pub fn parse(src: &str) -> Result<PathConstraint, PathParseError> {
        let (op, lhs, rhs) = if let Some((l, r)) = src.split_once("<=>") {
            ("<=>", l, r)
        } else if let Some((l, r)) = src.split_once("<=") {
            ("<=", l, r)
        } else if let Some((l, r)) = src.split_once("->") {
            ("->", l, r)
        } else {
            return Err(PathParseError(format!(
                "expected '->', '<=' or '<=>': {src}"
            )));
        };
        let split = |s: &str| -> Result<(Name, Path), PathParseError> {
            let p = Path::parse(s)?;
            let Some((anchor, rest)) = p.0.split_first() else {
                return Err(PathParseError(format!("missing anchor type in {s:?}")));
            };
            Ok((anchor.clone(), Path(rest.to_vec())))
        };
        let (t1, p1) = split(lhs)?;
        let (t2, p2) = split(rhs)?;
        Ok(match op {
            "->" => {
                if t1 != t2 {
                    return Err(PathParseError(format!(
                        "path functional constraints share one anchor, got {t1} and {t2}"
                    )));
                }
                PathConstraint::Functional {
                    tau: t1,
                    rho: p1,
                    varrho: p2,
                }
            }
            "<=" => PathConstraint::Inclusion {
                tau1: t1,
                rho1: p1,
                tau2: t2,
                rho2: p2,
            },
            _ => PathConstraint::Inverse {
                tau1: t1,
                rho1: p1,
                tau2: t2,
                rho2: p2,
            },
        })
    }

    /// The size `|φ|` (total path steps plus anchors).
    pub fn size(&self) -> usize {
        match self {
            PathConstraint::Functional { rho, varrho, .. } => 1 + rho.len() + varrho.len(),
            PathConstraint::Inclusion { rho1, rho2, .. }
            | PathConstraint::Inverse { rho1, rho2, .. } => 2 + rho1.len() + rho2.len(),
        }
    }
}

impl fmt::Display for PathConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn anchored(tau: &Name, p: &Path) -> String {
            if p.is_empty() {
                tau.to_string()
            } else {
                format!("{tau}.{p}")
            }
        }
        match self {
            PathConstraint::Functional { tau, rho, varrho } => {
                write!(f, "{} -> {}", anchored(tau, rho), anchored(tau, varrho))
            }
            PathConstraint::Inclusion {
                tau1,
                rho1,
                tau2,
                rho2,
            } => write!(f, "{} <= {}", anchored(tau1, rho1), anchored(tau2, rho2)),
            PathConstraint::Inverse {
                tau1,
                rho1,
                tau2,
                rho2,
            } => write!(f, "{} <=> {}", anchored(tau1, rho1), anchored(tau2, rho2)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let p = Path::parse("book.entry.isbn").unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.to_string(), "book.entry.isbn");
        assert_eq!(Path::parse("").unwrap(), Path::empty());
        assert_eq!(Path::parse("ε").unwrap().to_string(), "ε");
        assert!(Path::parse("a..b").is_err());
        assert!(Path::parse("a.b c").is_err());
    }

    #[test]
    fn concat_and_strip() {
        let a = Path::from("book.ref");
        let b = Path::from("to.title");
        let ab = a.concat(&b);
        assert_eq!(ab.to_string(), "book.ref.to.title");
        assert_eq!(ab.strip_suffix(&b), Some(a.clone()));
        assert_eq!(ab.strip_suffix(&ab), Some(Path::empty()));
        assert_eq!(ab.strip_suffix(&Path::empty()), Some(ab.clone()));
        assert_eq!(ab.strip_suffix(&Path::from("nope")), None);
        assert_eq!(b.strip_suffix(&ab), None);
    }

    #[test]
    fn constraint_parse_forms() {
        let c = PathConstraint::parse("book.entry.isbn -> book.author").unwrap();
        assert_eq!(
            c,
            PathConstraint::Functional {
                tau: Name::new("book"),
                rho: Path::from("entry.isbn"),
                varrho: Path::from("author"),
            }
        );
        let c = PathConstraint::parse("book.ref.to <= entry").unwrap();
        assert_eq!(
            c,
            PathConstraint::Inclusion {
                tau1: Name::new("book"),
                rho1: Path::from("ref.to"),
                tau2: Name::new("entry"),
                rho2: Path::empty(),
            }
        );
        let c = PathConstraint::parse("student.taking <=> course.taken_by").unwrap();
        assert!(matches!(c, PathConstraint::Inverse { .. }));
        // Round trip through Display.
        for src in [
            "book.entry.isbn -> book.author",
            "book.ref.to.title <= entry.title",
            "student.taking <=> course.taken_by",
        ] {
            let c = PathConstraint::parse(src).unwrap();
            let again = PathConstraint::parse(&c.to_string()).unwrap();
            assert_eq!(c, again, "{src}");
        }
    }

    #[test]
    fn constraint_parse_rejects() {
        for src in [
            "",
            "book.entry.isbn",   // no operator
            "book.a -> entry.b", // functional anchors differ
            " -> book.author",   // missing lhs anchor
            "book..a <= entry",  // bad path
        ] {
            assert!(PathConstraint::parse(src).is_err(), "{src:?}");
        }
    }

    #[test]
    fn constraint_display() {
        let c = PathConstraint::Functional {
            tau: Name::new("book"),
            rho: Path::from("entry.isbn"),
            varrho: Path::from("author"),
        };
        assert_eq!(c.to_string(), "book.entry.isbn -> book.author");
        assert_eq!(c.size(), 4);
        let c = PathConstraint::Inclusion {
            tau1: Name::new("book"),
            rho1: Path::from("ref.to"),
            tau2: Name::new("entry"),
            rho2: Path::empty(),
        };
        assert_eq!(c.to_string(), "book.ref.to <= entry");
    }
}
