//! Semantic path evaluation: `nodes(x.ρ)` and `ext(τ.ρ)` (§4.1).
//!
//! These evaluators are the model-level ground truth for the Section-4
//! decision procedures: tests generate documents, evaluate both sides of a
//! path constraint, and compare with the solver's verdicts.

use std::collections::{BTreeSet, HashMap};

use xic_model::{DataTree, ExtIndex, Name, NodeId};

use crate::path::Path;
use crate::solver::{PathSolver, StepType};

/// The result of evaluating a path: reached element vertices, or (for
/// `S`-typed terminal attribute steps) reached string values.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PathValues {
    /// Element vertices reached.
    pub nodes: BTreeSet<NodeId>,
    /// String values reached (non-reference attribute steps).
    pub values: BTreeSet<String>,
}

impl PathValues {
    fn from_node(x: NodeId) -> Self {
        PathValues {
            nodes: BTreeSet::from([x]),
            values: BTreeSet::new(),
        }
    }

    /// True iff nothing was reached.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty() && self.values.is_empty()
    }

    /// Subset test (nodes and values separately).
    pub fn is_subset(&self, other: &PathValues) -> bool {
        self.nodes.is_subset(&other.nodes) && self.values.is_subset(&other.values)
    }
}

/// Per-type index from ID value to vertices, for dereferencing reference
/// attributes (`z.id = y.l`).
fn build_id_index(
    tree: &DataTree,
    idx: &ExtIndex,
    solver: &PathSolver<'_>,
    tau2: &Name,
) -> HashMap<String, Vec<NodeId>> {
    let s = solver.dtdc().structure();
    let mut map: HashMap<String, Vec<NodeId>> = HashMap::new();
    if let Some(id_attr) = s.id_attr(tau2) {
        for &z in idx.ext(tau2) {
            if let Some(v) = tree.attr(z, id_attr).and_then(|v| v.as_single()) {
                map.entry(v.clone()).or_default().push(z);
            }
        }
    }
    map
}

/// `nodes(x.ρ)` — the vertices (and terminal string values) reachable from
/// `x` via `ρ`, following the typing of [`PathSolver`].
pub fn nodes_of(
    solver: &PathSolver<'_>,
    tree: &DataTree,
    idx: &ExtIndex,
    x: NodeId,
    path: &Path,
) -> PathValues {
    let s = solver.dtdc().structure();
    let mut cur = PathValues::from_node(x);
    let mut cur_type = StepType::Elem(tree.label(x).clone());
    for label in path.steps() {
        let Some(next_type) = solver.step(&cur_type, label) else {
            return PathValues::default();
        };
        let mut next = PathValues::default();
        let is_attr = matches!(&cur_type, StepType::Elem(t) if s.attr_type(t, label).is_some());
        if is_attr {
            match &next_type {
                StepType::Elem(tau2) => {
                    let ids = build_id_index(tree, idx, solver, tau2);
                    for &y in &cur.nodes {
                        if let Some(av) = tree.attr(y, label) {
                            for v in av.iter() {
                                if let Some(zs) = ids.get(v) {
                                    next.nodes.extend(zs.iter().copied());
                                }
                            }
                        }
                    }
                }
                StepType::S => {
                    for &y in &cur.nodes {
                        if let Some(av) = tree.attr(y, label) {
                            next.values.extend(av.iter().cloned());
                        }
                    }
                }
            }
        } else {
            // Element step: children labelled `label`.
            for &y in &cur.nodes {
                for c in tree.node(y).child_nodes() {
                    if tree.label(c) == label {
                        next.nodes.insert(c);
                    }
                }
            }
        }
        cur = next;
        cur_type = next_type;
    }
    cur
}

/// `ext(τ.ρ) = ⋃_{x ∈ ext(τ)} nodes(x.ρ)`.
pub fn ext_of_path(
    solver: &PathSolver<'_>,
    tree: &DataTree,
    idx: &ExtIndex,
    tau: &Name,
    path: &Path,
) -> PathValues {
    let mut out = PathValues::default();
    for &x in idx.ext(tau) {
        let r = nodes_of(solver, tree, idx, x, path);
        out.nodes.extend(r.nodes);
        out.values.extend(r.values);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xic_constraints::examples::{book_dtdc, company_dtdc};
    use xic_model::{AttrValue, TreeBuilder};
    use xic_validate::validate;

    fn company_doc() -> DataTree {
        let mut b = TreeBuilder::new();
        let db = b.node("db");
        let p1 = b.child_node(db, "person").unwrap();
        b.attr(p1, "oid", AttrValue::single("p1")).unwrap();
        b.attr(p1, "in_dept", AttrValue::set(["d1"])).unwrap();
        b.leaf(p1, "name", "Alice").unwrap();
        b.leaf(p1, "address", "addr1").unwrap();
        let p2 = b.child_node(db, "person").unwrap();
        b.attr(p2, "oid", AttrValue::single("p2")).unwrap();
        b.attr(p2, "in_dept", AttrValue::set(["d1"])).unwrap();
        b.leaf(p2, "name", "Bob").unwrap();
        b.leaf(p2, "address", "addr2").unwrap();
        let d1 = b.child_node(db, "dept").unwrap();
        b.attr(d1, "oid", AttrValue::single("d1")).unwrap();
        b.attr(d1, "manager", AttrValue::single("p1")).unwrap();
        b.attr(d1, "has_staff", AttrValue::set(["p1", "p2"]))
            .unwrap();
        b.leaf(d1, "dname", "R&D").unwrap();
        b.finish(db).unwrap()
    }

    #[test]
    fn dereferencing_follows_ids() {
        let d = company_dtdc();
        let t = company_doc();
        assert!(validate(&t, &d).is_valid());
        let solver = PathSolver::new(&d);
        let idx = ExtIndex::build(&t);
        // db.dept.manager reaches exactly person p1.
        let r = ext_of_path(&solver, &t, &idx, &"db".into(), &Path::from("dept.manager"));
        assert_eq!(r.nodes.len(), 1);
        let p1 = *r.nodes.iter().next().unwrap();
        assert_eq!(t.attr(p1, "oid").unwrap().as_single().unwrap(), "p1");
        // db.dept.has_staff reaches both persons.
        let r = ext_of_path(
            &solver,
            &t,
            &idx,
            &"db".into(),
            &Path::from("dept.has_staff"),
        );
        assert_eq!(r.nodes.len(), 2);
        // …and their names.
        let r = ext_of_path(
            &solver,
            &t,
            &idx,
            &"db".into(),
            &Path::from("dept.has_staff.name"),
        );
        assert_eq!(r.nodes.len(), 2);
        // Round trip: person.in_dept.has_staff covers both persons.
        let r = ext_of_path(
            &solver,
            &t,
            &idx,
            &"person".into(),
            &Path::from("in_dept.has_staff"),
        );
        assert_eq!(r.nodes.len(), 2);
    }

    #[test]
    fn string_attribute_steps_yield_values() {
        let d = company_dtdc();
        let t = company_doc();
        let solver = PathSolver::new(&d);
        let idx = ExtIndex::build(&t);
        // oid dereferences to person itself (τ.id ⊆ τ.id), so go through
        // a name instead: person.name is an element step; its text lives in
        // children, not values. Use dept.dname string content via nodes.
        let r = ext_of_path(&solver, &t, &idx, &"dept".into(), &Path::from("dname"));
        assert_eq!(r.nodes.len(), 1);
        assert!(r.values.is_empty());
    }

    #[test]
    fn inclusion_decision_matches_evaluation() {
        let d = company_dtdc();
        let t = company_doc();
        let solver = PathSolver::new(&d);
        let idx = ExtIndex::build(&t);
        let db: Name = "db".into();
        let person: Name = "person".into();
        // Implied inclusion holds on the document.
        let lhs = ext_of_path(&solver, &t, &idx, &db, &Path::from("dept.manager.name"));
        let rhs = ext_of_path(&solver, &t, &idx, &person, &Path::from("name"));
        assert!(solver.inclusion_implied(
            &db,
            &Path::from("dept.manager.name"),
            &person,
            &Path::from("name")
        ));
        assert!(lhs.is_subset(&rhs), "{lhs:?} ⊄ {rhs:?}");
    }

    #[test]
    fn functional_decision_matches_evaluation_on_book() {
        let d = book_dtdc();
        let solver = PathSolver::new(&d);
        // Two books sharing an entry-isbn must share authors; our data
        // tree has a single book root, so check the property trivially
        // holds and the solver agrees.
        let mut b = TreeBuilder::new();
        let book = b.node("book");
        let e = b.child_node(book, "entry").unwrap();
        b.attr(e, "isbn", AttrValue::single("x")).unwrap();
        b.leaf(e, "title", "T").unwrap();
        b.leaf(e, "publisher", "P").unwrap();
        b.leaf(book, "author", "A").unwrap();
        let r = b.child_node(book, "ref").unwrap();
        b.attr(r, "to", AttrValue::set(["x"])).unwrap();
        let t = b.finish(book).unwrap();
        assert!(validate(&t, &d).is_valid());
        let idx = ExtIndex::build(&t);
        let vals = ext_of_path(&solver, &t, &idx, &"book".into(), &Path::from("entry.isbn"));
        assert_eq!(vals.values.len(), 1);
        assert!(solver.functional_implied(
            &"book".into(),
            &Path::from("entry.isbn"),
            &Path::from("author")
        ));
    }

    #[test]
    fn unreachable_paths_are_empty() {
        let d = book_dtdc();
        let t = {
            let mut b = TreeBuilder::new();
            let book = b.node("book");
            let e = b.child_node(book, "entry").unwrap();
            b.attr(e, "isbn", AttrValue::single("x")).unwrap();
            let r = b.child_node(book, "ref").unwrap();
            b.attr(r, "to", AttrValue::set(["x"])).unwrap();
            b.finish(book).unwrap()
        };
        let solver = PathSolver::new(&d);
        let idx = ExtIndex::build(&t);
        let r = ext_of_path(&solver, &t, &idx, &"book".into(), &Path::from("bogus.x"));
        assert!(r.is_empty());
    }
}
