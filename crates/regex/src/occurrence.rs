//! Occurrence-interval analysis: the *unique sub-element* test of §3.4.
//!
//! §3.4 allows a sub-element `S` of `τ` to serve as a key only when `S` is a
//! **unique sub-element** of `τ`: "for any `w ∈ L(α)`, `S` occurs exactly
//! once in `w`". This module decides that by abstract interpretation of the
//! content model over occurrence-count intervals.

use std::fmt;

use xic_model::Name;

use crate::ast::ContentModel;
#[cfg(test)]
use crate::ast::Symbol;

/// An interval `[min, max]` of occurrence counts, `max = None` meaning ∞.
///
/// `occurrences(α, e)` is the exact set of possible occurrence counts of `e`
/// across words of `L(α)` *as an interval hull*: the true count set is
/// always a contiguous range here? It need not be (e.g. `(e, e) + ε` gives
/// {0, 2}), so the interval is a sound over-approximation — but it is
/// **exact at the extremes**, which is all the unique-sub-element test needs:
/// `e` occurs exactly once in every word iff the hull is exactly `[1, 1]`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OccurrenceInterval {
    /// Minimum occurrence count over all words of the language.
    pub min: u32,
    /// Maximum occurrence count, or `None` for unbounded.
    pub max: Option<u32>,
}

impl OccurrenceInterval {
    /// The constant-zero interval.
    pub const ZERO: OccurrenceInterval = OccurrenceInterval {
        min: 0,
        max: Some(0),
    };
    /// The constant-one interval.
    pub const ONE: OccurrenceInterval = OccurrenceInterval {
        min: 1,
        max: Some(1),
    };

    fn sum(self, other: OccurrenceInterval) -> OccurrenceInterval {
        OccurrenceInterval {
            min: self.min + other.min,
            max: match (self.max, other.max) {
                (Some(a), Some(b)) => Some(a + b),
                _ => None,
            },
        }
    }

    fn hull(self, other: OccurrenceInterval) -> OccurrenceInterval {
        OccurrenceInterval {
            min: self.min.min(other.min),
            max: match (self.max, other.max) {
                (Some(a), Some(b)) => Some(a.max(b)),
                _ => None,
            },
        }
    }

    /// True iff the interval is exactly `[1, 1]`.
    pub fn is_exactly_one(self) -> bool {
        self.min == 1 && self.max == Some(1)
    }
}

impl fmt::Display for OccurrenceInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.max {
            Some(m) => write!(f, "[{}, {}]", self.min, m),
            None => write!(f, "[{}, ∞)", self.min),
        }
    }
}

/// Computes the occurrence interval of element `e` over the words of
/// `L(α)`.
///
/// ```
/// use xic_regex::{ContentModel, occurrences};
/// use xic_model::Name;
/// let m = ContentModel::parse("(name, address)").unwrap();
/// assert!(occurrences(&m, &Name::new("name")).is_exactly_one());
/// let m = ContentModel::parse("(title, (text + section)*)").unwrap();
/// assert!(occurrences(&m, &Name::new("title")).is_exactly_one());
/// assert!(!occurrences(&m, &Name::new("section")).is_exactly_one());
/// ```
pub fn occurrences(m: &ContentModel, e: &Name) -> OccurrenceInterval {
    match m {
        ContentModel::S | ContentModel::Epsilon => OccurrenceInterval::ZERO,
        ContentModel::Elem(n) => {
            if n == e {
                OccurrenceInterval::ONE
            } else {
                OccurrenceInterval::ZERO
            }
        }
        ContentModel::Alt(a, b) => occurrences(a, e).hull(occurrences(b, e)),
        ContentModel::Seq(a, b) => occurrences(a, e).sum(occurrences(b, e)),
        ContentModel::Star(a) => {
            let inner = occurrences(a, e);
            if inner.max == Some(0) {
                OccurrenceInterval::ZERO
            } else {
                // Zero iterations give 0; if any iteration can contribute, an
                // unbounded number of iterations can contribute unboundedly.
                OccurrenceInterval { min: 0, max: None }
            }
        }
    }
}

impl ContentModel {
    /// §3.4's syntactic check: is `e` a *unique sub-element* of this content
    /// model, i.e. does `e` occur exactly once in every word of `L(α)`?
    pub fn is_unique_subelement(&self, e: &Name) -> bool {
        occurrences(self, e).is_exactly_one()
    }

    /// The set of unique sub-elements of this content model.
    pub fn unique_subelements(&self) -> Vec<Name> {
        self.element_types()
            .into_iter()
            .filter(|e| self.is_unique_subelement(e))
            .collect()
    }
}

/// Counts occurrences of `e` in a concrete word (test helper and semantic
/// cross-check for [`occurrences`]).
#[cfg(test)]
pub(crate) fn count_in_word(word: &[Symbol], e: &Name) -> u32 {
    word.iter().filter(|s| s.as_elem() == Some(e)).count() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn occ(src: &str, e: &str) -> OccurrenceInterval {
        occurrences(&ContentModel::parse(src).unwrap(), &Name::new(e))
    }

    #[test]
    fn paper_examples() {
        // person ::= (name, address): name is a unique sub-element.
        assert!(occ("(name, address)", "name").is_exactly_one());
        assert!(occ("(name, address)", "address").is_exactly_one());
        // book ::= (entry, author*, section*, ref): entry and ref are unique,
        // author and section are not.
        let book = "(entry, author*, section*, ref)";
        assert!(occ(book, "entry").is_exactly_one());
        assert!(occ(book, "ref").is_exactly_one());
        assert!(!occ(book, "author").is_exactly_one());
        assert!(!occ(book, "section").is_exactly_one());
        assert!(!occ(book, "absent").is_exactly_one());
    }

    #[test]
    fn union_breaks_uniqueness() {
        assert!(!occ("(a + b)", "a").is_exactly_one());
        assert!(occ("(a, b) + (a, c)", "a").is_exactly_one());
        assert!(!occ("(a, b) + (c, b)", "a").is_exactly_one());
        // {0, 2} has hull [0, 2]: not unique, and the hull extremes are exact.
        let i = occ("(a, a) + EMPTY", "a");
        assert_eq!(
            i,
            OccurrenceInterval {
                min: 0,
                max: Some(2)
            }
        );
    }

    #[test]
    fn star_cases() {
        assert_eq!(occ("a*", "a"), OccurrenceInterval { min: 0, max: None });
        assert_eq!(occ("b*", "a"), OccurrenceInterval::ZERO);
        assert_eq!(occ("(b*, a)", "a"), OccurrenceInterval::ONE);
    }

    #[test]
    fn unique_subelements_listing() {
        let m = ContentModel::parse("(entry, author*, section*, ref)").unwrap();
        let uniq = m.unique_subelements();
        assert_eq!(uniq, vec![Name::new("entry"), Name::new("ref")]);
    }

    #[test]
    fn interval_display() {
        assert_eq!(occ("a*", "a").to_string(), "[0, ∞)");
        assert_eq!(occ("a", "a").to_string(), "[1, 1]");
    }

    #[test]
    fn hull_extremes_match_sampled_words() {
        use crate::ast::Symbol;
        // Enumerate words up to length 5 accepted by each model; check the
        // observed min/max occurrence counts sit inside the interval and hit
        // the min (and the max when bounded and reachable within the bound).
        let models = ["(a, b)", "(a + b)*", "(b*, a)", "(a, a) + EMPTY"];
        let alpha = [Symbol::elem("a"), Symbol::elem("b")];
        let e = Name::new("a");
        for src in models {
            let m = ContentModel::parse(src).unwrap();
            let iv = occurrences(&m, &e);
            let mut words: Vec<Vec<Symbol>> = vec![vec![]];
            for _ in 0..5 {
                let mut next = Vec::new();
                for w in &words {
                    for s in &alpha {
                        let mut w2 = w.clone();
                        w2.push(s.clone());
                        next.push(w2);
                    }
                }
                words.extend(next);
            }
            let counts: Vec<u32> = words
                .iter()
                .filter(|w| m.matches_derivative(w))
                .map(|w| count_in_word(w, &e))
                .collect();
            assert!(!counts.is_empty(), "{src}");
            let lo = *counts.iter().min().unwrap();
            let hi = *counts.iter().max().unwrap();
            assert_eq!(lo, iv.min, "{src} min");
            if let Some(max) = iv.max {
                assert_eq!(hi, max, "{src} max");
            } else {
                assert!(hi >= 2, "{src} unbounded should exceed 1 in samples");
            }
        }
    }
}
