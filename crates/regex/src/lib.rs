//! # xic-regex — content models for DTD element type definitions
//!
//! Definition 2.2 of Fan & Siméon (PODS 2000) gives element type definitions
//! as regular expressions over element types and the atomic type `S`:
//!
//! ```text
//! α ::= S | e | ε | α + α | α , α | α*
//! ```
//!
//! This crate implements that grammar end to end:
//!
//! * [`ContentModel`] — the AST, with a parser ([`ContentModel::parse`]) and
//!   printer (its `Display`);
//! * [`Symbol`] — the alphabet `E ∪ {S}` over which words are drawn;
//! * [`Nfa`] — a Glushkov (position) automaton built from the AST;
//! * [`Dfa`] — its subset-construction determinization, used for hot-loop
//!   membership in the validator;
//! * [`ContentModel::matches_derivative`] — a Brzozowski-derivative matcher,
//!   kept as an independently implemented oracle for testing and as the
//!   baseline of ablation E10b;
//! * [`occurrences`] / [`ContentModel::is_unique_subelement`] — the
//!   occurrence-interval analysis behind §3.4's *unique sub-element* test
//!   ("S occurs exactly once in every word of L(α)");
//! * [`ContentModel::sample`] — random word sampling from `L(α)` for
//!   property tests and synthetic document generation.
//!
//! The grammar has no empty-language former (`∅`), so `L(α)` is never empty;
//! [`ContentModel::min_word`] exhibits a shortest witness word.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod automata;
mod occurrence;
mod parser;
mod sample;
mod simplify;

pub use ast::{ContentModel, Symbol};
pub use automata::{Dfa, Nfa, NfaRun};
pub use occurrence::{occurrences, OccurrenceInterval};
pub use parser::ParseError;
