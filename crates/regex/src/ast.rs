//! The content-model AST `α ::= S | e | ε | α+α | α,α | α*`.

use std::collections::BTreeSet;
use std::fmt;

use xic_model::Name;

/// A letter of the content-model alphabet: an element type from **E** or the
/// atomic type `S` (XML `#PCDATA`).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Symbol {
    /// The atomic string type `S`.
    S,
    /// An element type `e ∈ E`.
    Elem(Name),
}

impl Symbol {
    /// The element name, if this symbol is an element type.
    pub fn as_elem(&self) -> Option<&Name> {
        match self {
            Symbol::Elem(n) => Some(n),
            Symbol::S => None,
        }
    }

    /// Convenience constructor for an element symbol.
    pub fn elem(name: impl Into<Name>) -> Self {
        Symbol::Elem(name.into())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Symbol::S => f.write_str("S"),
            Symbol::Elem(n) => write!(f, "{n}"),
        }
    }
}

/// An element type definition `P(τ) = α` (Definition 2.2).
///
/// `ContentModel` is the regular expression
/// `α ::= S | e | ε | α + α | α , α | α*` over `E ∪ {S}`. Use
/// [`ContentModel::parse`] for the textual syntax (which also accepts the
/// DTD spellings `|` for `+` and `#PCDATA` for `S`), and `Display` to print
/// it back.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum ContentModel {
    /// The atomic type `S` (string content).
    S,
    /// A single element type `e`.
    Elem(Name),
    /// The empty word `ε` (XML `EMPTY`).
    Epsilon,
    /// Union `α + α`.
    Alt(Box<ContentModel>, Box<ContentModel>),
    /// Concatenation `α , α`.
    Seq(Box<ContentModel>, Box<ContentModel>),
    /// Kleene closure `α*`.
    Star(Box<ContentModel>),
}

impl ContentModel {
    /// A single element-type atom.
    pub fn elem(name: impl Into<Name>) -> Self {
        ContentModel::Elem(name.into())
    }

    /// Union of two models.
    pub fn alt(a: ContentModel, b: ContentModel) -> Self {
        ContentModel::Alt(Box::new(a), Box::new(b))
    }

    /// Concatenation of two models.
    pub fn seq(a: ContentModel, b: ContentModel) -> Self {
        ContentModel::Seq(Box::new(a), Box::new(b))
    }

    /// Kleene closure.
    pub fn star(a: ContentModel) -> Self {
        ContentModel::Star(Box::new(a))
    }

    /// Concatenation of a sequence of models (`ε` for the empty sequence).
    pub fn seq_all<I: IntoIterator<Item = ContentModel>>(items: I) -> Self {
        let mut it = items.into_iter();
        let first = match it.next() {
            Some(x) => x,
            None => return ContentModel::Epsilon,
        };
        it.fold(first, ContentModel::seq)
    }

    /// Union of a sequence of models (`ε` for the empty sequence).
    pub fn alt_all<I: IntoIterator<Item = ContentModel>>(items: I) -> Self {
        let mut it = items.into_iter();
        let first = match it.next() {
            Some(x) => x,
            None => return ContentModel::Epsilon,
        };
        it.fold(first, ContentModel::alt)
    }

    /// True iff `ε ∈ L(α)`.
    pub fn nullable(&self) -> bool {
        match self {
            ContentModel::S | ContentModel::Elem(_) => false,
            ContentModel::Epsilon | ContentModel::Star(_) => true,
            ContentModel::Alt(a, b) => a.nullable() || b.nullable(),
            ContentModel::Seq(a, b) => a.nullable() && b.nullable(),
        }
    }

    /// The set of symbols occurring syntactically in `α`.
    pub fn alphabet(&self) -> BTreeSet<Symbol> {
        let mut set = BTreeSet::new();
        self.collect_alphabet(&mut set);
        set
    }

    fn collect_alphabet(&self, set: &mut BTreeSet<Symbol>) {
        match self {
            ContentModel::S => {
                set.insert(Symbol::S);
            }
            ContentModel::Elem(n) => {
                set.insert(Symbol::Elem(n.clone()));
            }
            ContentModel::Epsilon => {}
            ContentModel::Alt(a, b) | ContentModel::Seq(a, b) => {
                a.collect_alphabet(set);
                b.collect_alphabet(set);
            }
            ContentModel::Star(a) => a.collect_alphabet(set),
        }
    }

    /// The element types occurring in `α` (i.e. `alphabet` minus `S`).
    pub fn element_types(&self) -> BTreeSet<Name> {
        self.alphabet()
            .into_iter()
            .filter_map(|s| match s {
                Symbol::Elem(n) => Some(n),
                Symbol::S => None,
            })
            .collect()
    }

    /// Number of AST nodes; the `|P|` size measure used in the paper's
    /// complexity statements.
    pub fn size(&self) -> usize {
        match self {
            ContentModel::S | ContentModel::Elem(_) | ContentModel::Epsilon => 1,
            ContentModel::Alt(a, b) | ContentModel::Seq(a, b) => 1 + a.size() + b.size(),
            ContentModel::Star(a) => 1 + a.size(),
        }
    }

    /// A shortest word of `L(α)` (the language is never empty since the
    /// grammar has no `∅`).
    pub fn min_word(&self) -> Vec<Symbol> {
        match self {
            ContentModel::S => vec![Symbol::S],
            ContentModel::Elem(n) => vec![Symbol::Elem(n.clone())],
            ContentModel::Epsilon | ContentModel::Star(_) => vec![],
            ContentModel::Alt(a, b) => {
                let wa = a.min_word();
                let wb = b.min_word();
                if wa.len() <= wb.len() {
                    wa
                } else {
                    wb
                }
            }
            ContentModel::Seq(a, b) => {
                let mut w = a.min_word();
                w.extend(b.min_word());
                w
            }
        }
    }

    /// Brzozowski derivative of `α` with respect to symbol `s`: a regular
    /// expression for `{ w | s·w ∈ L(α) }`. Used by
    /// [`ContentModel::matches_derivative`].
    pub fn derivative(&self, s: &Symbol) -> ContentModel {
        use ContentModel::*;
        match self {
            S => {
                if *s == Symbol::S {
                    Epsilon
                } else {
                    // Empty language: encode as a star-free dead end. The
                    // grammar lacks ∅, so we use an unmatchable private
                    // sentinel element name (never produced by the parser:
                    // "⊥" is not a name token).
                    Elem(Name::new("\u{22A5}"))
                }
            }
            Elem(n) => {
                if s.as_elem() == Some(n) {
                    Epsilon
                } else {
                    Elem(Name::new("\u{22A5}"))
                }
            }
            Epsilon => Elem(Name::new("\u{22A5}")),
            Alt(a, b) => ContentModel::alt(a.derivative(s), b.derivative(s)),
            Seq(a, b) => {
                let da_b = ContentModel::seq(a.derivative(s), (**b).clone());
                if a.nullable() {
                    ContentModel::alt(da_b, b.derivative(s))
                } else {
                    da_b
                }
            }
            Star(a) => ContentModel::seq(a.derivative(s), self.clone()),
        }
    }

    /// Membership test by repeated Brzozowski derivatives.
    ///
    /// Worst-case exponential on adversarial inputs (derivatives are not
    /// memoized here), but an independent implementation that serves as the
    /// test oracle for [`crate::Nfa`]/[`crate::Dfa`] and as the baseline of
    /// ablation E10b.
    pub fn matches_derivative(&self, word: &[Symbol]) -> bool {
        let mut cur = self.clone();
        for s in word {
            cur = cur.derivative(s);
        }
        cur.nullable()
    }
}

impl fmt::Display for ContentModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Precedence: * > , > +.
        fn go(m: &ContentModel, f: &mut fmt::Formatter<'_>, prec: u8) -> fmt::Result {
            match m {
                ContentModel::S => f.write_str("S"),
                ContentModel::Elem(n) => write!(f, "{n}"),
                ContentModel::Epsilon => f.write_str("EMPTY"),
                ContentModel::Alt(a, b) => {
                    let wrap = prec > 0;
                    if wrap {
                        f.write_str("(")?;
                    }
                    go(a, f, 0)?;
                    f.write_str(" + ")?;
                    go(b, f, 0)?;
                    if wrap {
                        f.write_str(")")?;
                    }
                    Ok(())
                }
                ContentModel::Seq(a, b) => {
                    let wrap = prec > 1;
                    if wrap {
                        f.write_str("(")?;
                    }
                    go(a, f, 1)?;
                    f.write_str(", ")?;
                    go(b, f, 1)?;
                    if wrap {
                        f.write_str(")")?;
                    }
                    Ok(())
                }
                ContentModel::Star(a) => {
                    go(a, f, 2)?;
                    f.write_str("*")
                }
            }
        }
        go(self, f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::elem(s)
    }

    #[test]
    fn nullable_cases() {
        assert!(!ContentModel::S.nullable());
        assert!(!ContentModel::elem("a").nullable());
        assert!(ContentModel::Epsilon.nullable());
        assert!(ContentModel::star(ContentModel::elem("a")).nullable());
        assert!(ContentModel::alt(ContentModel::elem("a"), ContentModel::Epsilon).nullable());
        assert!(!ContentModel::seq(ContentModel::elem("a"), ContentModel::Epsilon).nullable());
        assert!(ContentModel::seq(
            ContentModel::star(ContentModel::elem("a")),
            ContentModel::Epsilon
        )
        .nullable());
    }

    #[test]
    fn min_word_is_shortest() {
        // (a, b) + c  →  shortest word is [c]
        let m = ContentModel::alt(
            ContentModel::seq(ContentModel::elem("a"), ContentModel::elem("b")),
            ContentModel::elem("c"),
        );
        assert_eq!(m.min_word(), vec![sym("c")]);
        // a* → ε
        assert!(ContentModel::star(ContentModel::elem("a"))
            .min_word()
            .is_empty());
    }

    #[test]
    fn derivative_matcher_basics() {
        // (title, (text + section)*) — the paper's section content model.
        let m = ContentModel::seq(
            ContentModel::elem("title"),
            ContentModel::star(ContentModel::alt(
                ContentModel::elem("text"),
                ContentModel::elem("section"),
            )),
        );
        assert!(m.matches_derivative(&[sym("title")]));
        assert!(m.matches_derivative(&[sym("title"), sym("text"), sym("section")]));
        assert!(!m.matches_derivative(&[]));
        assert!(!m.matches_derivative(&[sym("text")]));
        assert!(!m.matches_derivative(&[sym("title"), sym("title")]));
    }

    #[test]
    fn derivative_handles_pcdata() {
        let m = ContentModel::star(ContentModel::alt(ContentModel::S, ContentModel::elem("b")));
        assert!(m.matches_derivative(&[Symbol::S, sym("b"), Symbol::S]));
        assert!(!m.matches_derivative(&[sym("c")]));
    }

    #[test]
    fn alphabet_and_size() {
        let m = ContentModel::seq(
            ContentModel::elem("entry"),
            ContentModel::seq(
                ContentModel::star(ContentModel::elem("author")),
                ContentModel::S,
            ),
        );
        let alpha = m.alphabet();
        assert!(alpha.contains(&Symbol::S));
        assert!(alpha.contains(&sym("entry")));
        assert!(alpha.contains(&sym("author")));
        assert_eq!(alpha.len(), 3);
        assert_eq!(m.element_types().len(), 2);
        assert_eq!(m.size(), 6);
    }

    #[test]
    fn display_uses_paper_syntax() {
        let m = ContentModel::seq(
            ContentModel::elem("entry"),
            ContentModel::star(ContentModel::alt(
                ContentModel::elem("text"),
                ContentModel::elem("section"),
            )),
        );
        assert_eq!(m.to_string(), "entry, (text + section)*");
    }

    #[test]
    fn seq_all_and_alt_all() {
        assert_eq!(ContentModel::seq_all([]), ContentModel::Epsilon);
        let m = ContentModel::seq_all([
            ContentModel::elem("a"),
            ContentModel::elem("b"),
            ContentModel::elem("c"),
        ]);
        assert!(m.matches_derivative(&[sym("a"), sym("b"), sym("c")]));
        let u = ContentModel::alt_all([ContentModel::elem("a"), ContentModel::elem("b")]);
        assert!(u.matches_derivative(&[sym("a")]));
        assert!(u.matches_derivative(&[sym("b")]));
    }
}
