//! Glushkov (position) automaton and its determinization.
//!
//! Content models are compiled once per element type at DTD-load time; the
//! validator then runs words (child-label sequences) through the [`Dfa`].
//! The [`Nfa`] is retained both as an intermediate and for ablation E10b
//! (NFA- vs DFA-based matching).

use std::collections::{BTreeSet, HashMap};

use crate::ast::{ContentModel, Symbol};

/// A Glushkov automaton for a content model.
///
/// States are `0` (the start state) plus one state per symbol *position*
/// (occurrence) in the expression; the automaton is ε-free and has the
/// characteristic Glushkov property that all transitions into a position
/// are labelled with that position's symbol.
#[derive(Clone, Debug)]
pub struct Nfa {
    /// Symbol at each position (1-based; index 0 unused).
    pos_symbol: Vec<Symbol>,
    /// `first` — positions reachable from the start state.
    first: BTreeSet<usize>,
    /// `follow(p)` — positions that may follow position `p`.
    follow: Vec<BTreeSet<usize>>,
    /// `last` — accepting positions.
    last: BTreeSet<usize>,
    /// Whether the start state is accepting (`ε ∈ L(α)`).
    nullable: bool,
}

/// `(nullable, first, last)` for a subexpression, with positions assigned by
/// a running counter.
struct Local {
    nullable: bool,
    first: BTreeSet<usize>,
    last: BTreeSet<usize>,
}

impl Nfa {
    /// Builds the Glushkov automaton of `m`.
    pub fn build(m: &ContentModel) -> Nfa {
        let mut nfa = Nfa {
            pos_symbol: vec![Symbol::S], // dummy for index 0
            first: BTreeSet::new(),
            follow: vec![BTreeSet::new()],
            last: BTreeSet::new(),
            nullable: false,
        };
        let local = nfa.go(m);
        nfa.first = local.first;
        nfa.last = local.last;
        nfa.nullable = local.nullable;
        nfa
    }

    fn new_pos(&mut self, s: &Symbol) -> usize {
        self.pos_symbol.push(s.clone());
        self.follow.push(BTreeSet::new());
        self.pos_symbol.len() - 1
    }

    fn go(&mut self, m: &ContentModel) -> Local {
        match m {
            ContentModel::S => {
                let p = self.new_pos(&Symbol::S);
                Local {
                    nullable: false,
                    first: BTreeSet::from([p]),
                    last: BTreeSet::from([p]),
                }
            }
            ContentModel::Elem(n) => {
                let p = self.new_pos(&Symbol::Elem(n.clone()));
                Local {
                    nullable: false,
                    first: BTreeSet::from([p]),
                    last: BTreeSet::from([p]),
                }
            }
            ContentModel::Epsilon => Local {
                nullable: true,
                first: BTreeSet::new(),
                last: BTreeSet::new(),
            },
            ContentModel::Alt(a, b) => {
                let la = self.go(a);
                let lb = self.go(b);
                Local {
                    nullable: la.nullable || lb.nullable,
                    first: la.first.union(&lb.first).copied().collect(),
                    last: la.last.union(&lb.last).copied().collect(),
                }
            }
            ContentModel::Seq(a, b) => {
                let la = self.go(a);
                let lb = self.go(b);
                for &p in &la.last {
                    self.follow[p].extend(lb.first.iter().copied());
                }
                Local {
                    nullable: la.nullable && lb.nullable,
                    first: if la.nullable {
                        la.first.union(&lb.first).copied().collect()
                    } else {
                        la.first
                    },
                    last: if lb.nullable {
                        la.last.union(&lb.last).copied().collect()
                    } else {
                        lb.last
                    },
                }
            }
            ContentModel::Star(a) => {
                let la = self.go(a);
                for &p in &la.last {
                    self.follow[p].extend(la.first.iter().copied());
                }
                Local {
                    nullable: true,
                    first: la.first,
                    last: la.last,
                }
            }
        }
    }

    /// Number of positions (NFA states minus the start state).
    pub fn positions(&self) -> usize {
        self.pos_symbol.len() - 1
    }

    /// Membership test by NFA simulation (set-of-positions).
    pub fn matches(&self, word: &[Symbol]) -> bool {
        let mut run = self.start_run();
        for s in word {
            self.step_run(&mut run, s);
            if run.is_dead() {
                return false;
            }
        }
        self.run_accepts(&run)
    }

    /// Streaming interface: the initial simulation state.
    pub fn start_run(&self) -> NfaRun {
        NfaRun {
            set: BTreeSet::new(),
            at_start: true,
        }
    }

    /// Streaming interface: advances `run` by one symbol.
    pub fn step_run(&self, run: &mut NfaRun, s: &Symbol) {
        let mut next = BTreeSet::new();
        let sources: Box<dyn Iterator<Item = usize>> = if run.at_start {
            Box::new(self.first.iter().copied())
        } else {
            Box::new(run.set.iter().flat_map(|&p| self.follow[p].iter().copied()))
        };
        for p in sources {
            if &self.pos_symbol[p] == s {
                next.insert(p);
            }
        }
        run.set = next;
        run.at_start = false;
    }

    /// Streaming interface: acceptance of the current state.
    pub fn run_accepts(&self, run: &NfaRun) -> bool {
        if run.at_start {
            self.nullable
        } else {
            run.set.iter().any(|p| self.last.contains(p))
        }
    }
}

/// Incremental simulation state of an [`Nfa`]: the set of live positions,
/// plus the distinguished "no symbol read yet" start configuration.
#[derive(Clone, Debug)]
pub struct NfaRun {
    set: BTreeSet<usize>,
    at_start: bool,
}

impl NfaRun {
    /// True iff no completion of the word read so far can be accepted.
    pub fn is_dead(&self) -> bool {
        !self.at_start && self.set.is_empty()
    }
}

/// Deterministic automaton built from an [`Nfa`] by subset construction.
///
/// Transitions on symbols not in the content model's alphabet go to an
/// implicit dead state (i.e. immediately reject).
#[derive(Clone, Debug)]
pub struct Dfa {
    /// Per state: `(symbol, successor)` pairs in symbol order. Content-model
    /// alphabets are a handful of symbols, so one transition lookup is a
    /// short linear scan over a contiguous row — cheaper than hashing the
    /// symbol's label string, which dominates when the streaming validator
    /// steps a matcher on every child event.
    trans: Vec<Vec<(Symbol, u32)>>,
    accepting: Vec<bool>,
}

impl Dfa {
    /// Determinizes `nfa`.
    pub fn build(nfa: &Nfa) -> Dfa {
        // DFA states are sets of NFA positions; the start DFA state is the
        // special "at start" configuration.
        let mut states: HashMap<BTreeSet<usize>, usize> = HashMap::new();
        let mut trans: Vec<Vec<(Symbol, u32)>> = Vec::new();
        let mut accepting: Vec<bool> = Vec::new();
        let mut work: Vec<BTreeSet<usize>> = Vec::new();

        let start: BTreeSet<usize> = nfa.first.clone();
        // State 0 represents "start": reachable positions are `first`, and it
        // accepts iff the model is nullable. Subsequent states are position
        // sets whose acceptance is intersection with `last`.
        states.insert(start.clone(), 0);
        trans.push(Vec::new());
        accepting.push(nfa.nullable);
        work.push(start);

        // For the start state, transition on s goes to {p ∈ first | sym p = s};
        // for others, to {q ∈ follow(p) | p ∈ state, sym q = s}. To unify the
        // two, the stored set for state 0 *is* `first` and we always filter
        // the stored "candidate" set by symbol... but follow-based successor
        // sets differ. Keep it explicit instead: we store, for each DFA
        // state, the set of NFA positions we are currently "in" (empty set +
        // at_start flag folded away by making state 0's set pre-filtered).
        //
        // Concretely: define succ(state_set, s) for state 0 as
        // {p ∈ first | sym p = s} and for others likewise over follows. To
        // avoid special-casing inside the loop we tag state 0 by index.
        let mut i = 0usize;
        while i < work.len() {
            let cur = work[i].clone();
            // Candidate successor positions grouped by symbol.
            let mut by_sym: HashMap<Symbol, BTreeSet<usize>> = HashMap::new();
            let candidates: Box<dyn Iterator<Item = usize>> = if i == 0 {
                Box::new(nfa.first.iter().copied())
            } else {
                Box::new(cur.iter().flat_map(|&p| nfa.follow[p].iter().copied()))
            };
            for p in candidates {
                by_sym
                    .entry(nfa.pos_symbol[p].clone())
                    .or_default()
                    .insert(p);
            }
            for (sym, set) in by_sym {
                let id = match states.get(&set) {
                    // Never reuse state 0's id for a positional set: state 0
                    // is the distinguished start configuration.
                    Some(&id) if id != 0 => id,
                    Some(_) | None => {
                        let id = trans.len();
                        states.insert(set.clone(), id);
                        trans.push(Vec::new());
                        accepting.push(set.iter().any(|p| nfa.last.contains(p)));
                        work.push(set);
                        id
                    }
                };
                trans[i].push((sym, u32::try_from(id).expect("DFA fits u32")));
            }
            i += 1;
        }
        // `by_sym` iterates in hash order; sort each row so the automaton
        // (and its Debug form) is deterministic.
        for row in &mut trans {
            row.sort_by(|a, b| a.0.cmp(&b.0));
        }
        Dfa { trans, accepting }
    }

    /// Compiles a content model straight to a DFA.
    pub fn from_model(m: &ContentModel) -> Dfa {
        Dfa::build(&Nfa::build(m))
    }

    /// Number of DFA states.
    pub fn num_states(&self) -> usize {
        self.trans.len()
    }

    /// Membership test.
    pub fn matches(&self, word: &[Symbol]) -> bool {
        let mut state = 0usize;
        for s in word {
            match self.step(state, s) {
                Some(next) => state = next,
                None => return false,
            }
        }
        self.accepting[state]
    }

    /// Streaming interface: start state.
    pub fn start(&self) -> usize {
        0
    }

    /// Streaming interface: one transition; `None` is the dead state.
    #[inline]
    pub fn step(&self, state: usize, s: &Symbol) -> Option<usize> {
        self.trans[state]
            .iter()
            .find(|(sym, _)| sym == s)
            .map(|&(_, next)| next as usize)
    }

    /// Streaming interface: acceptance.
    pub fn is_accepting(&self, state: usize) -> bool {
        self.accepting[state]
    }

    /// Language containment: `L(other) ⊆ L(self)`.
    ///
    /// Product construction over the union alphabet with an implicit dead
    /// state on each side; a reachable product state where `other` accepts
    /// and `self` does not witnesses non-containment.
    pub fn contains(&self, other: &Dfa, alphabet: &[Symbol]) -> bool {
        use std::collections::{HashSet, VecDeque};
        let mut seen: HashSet<(Option<usize>, Option<usize>)> = HashSet::new();
        let mut queue = VecDeque::new();
        let start = (Some(self.start()), Some(other.start()));
        seen.insert(start);
        queue.push_back(start);
        while let Some((a, b)) = queue.pop_front() {
            let a_acc = a.is_some_and(|s| self.is_accepting(s));
            let b_acc = b.is_some_and(|s| other.is_accepting(s));
            if b_acc && !a_acc {
                return false;
            }
            if b.is_none() {
                // `other` is dead: nothing more to refute down this branch.
                continue;
            }
            for sym in alphabet {
                let next = (
                    a.and_then(|s| self.step(s, sym)),
                    b.and_then(|s| other.step(s, sym)),
                );
                if seen.insert(next) {
                    queue.push_back(next);
                }
            }
        }
        true
    }
}

impl ContentModel {
    /// Language containment: `L(other) ⊆ L(self)` — "every word this
    /// content model `other` accepts, `self` accepts too". Useful for
    /// schema evolution: a new element type definition that *contains* the
    /// old one accepts every existing document.
    ///
    /// ```
    /// use xic_regex::ContentModel;
    /// let old = ContentModel::parse("(title, author)").unwrap();
    /// let new = ContentModel::parse("(title, author*, (ref + EMPTY))").unwrap();
    /// assert!(new.contains(&old));
    /// assert!(!old.contains(&new));
    /// assert!(new.contains(&new));
    /// ```
    pub fn contains(&self, other: &ContentModel) -> bool {
        let mut alphabet: Vec<Symbol> = self.alphabet().into_iter().collect();
        for s in other.alphabet() {
            if !alphabet.contains(&s) {
                alphabet.push(s);
            }
        }
        Dfa::from_model(self).contains(&Dfa::from_model(other), &alphabet)
    }

    /// Language equivalence: `L(self) = L(other)`.
    pub fn equivalent(&self, other: &ContentModel) -> bool {
        self.contains(other) && other.contains(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xic_model::Name;

    fn sym(s: &str) -> Symbol {
        Symbol::elem(s)
    }

    fn word(s: &str) -> Vec<Symbol> {
        s.split_whitespace()
            .map(|t| if t == "S" { Symbol::S } else { sym(t) })
            .collect()
    }

    #[test]
    fn nfa_and_dfa_agree_with_derivatives_on_cases() {
        let cases = [
            (
                "entry, author*, section*, ref",
                vec![
                    ("entry ref", true),
                    ("entry author author section ref", true),
                    ("entry", false),
                    ("author ref", false),
                    ("entry ref ref", false),
                    ("", false),
                ],
            ),
            (
                "(title, (text + section)*)",
                vec![
                    ("title", true),
                    ("title text text section", true),
                    ("text", false),
                    ("", false),
                ],
            ),
            ("EMPTY", vec![("", true), ("a", false)]),
            ("(a + b)*", vec![("", true), ("a b a", true), ("c", false)]),
            (
                "S, a, S*",
                vec![("S a", true), ("S a S S", true), ("a", false)],
            ),
        ];
        for (src, words) in cases {
            let m = ContentModel::parse(src).unwrap();
            let nfa = Nfa::build(&m);
            let dfa = Dfa::build(&nfa);
            for (w, expect) in words {
                let w = word(w);
                assert_eq!(m.matches_derivative(&w), expect, "deriv {src} / {w:?}");
                assert_eq!(nfa.matches(&w), expect, "nfa {src} / {w:?}");
                assert_eq!(dfa.matches(&w), expect, "dfa {src} / {w:?}");
            }
        }
    }

    #[test]
    fn exhaustive_small_agreement() {
        // All words up to length 4 over {a, b, S} for a few models: the three
        // matchers must agree everywhere.
        let models = [
            "a, b",
            "(a + b)*",
            "a*, b*",
            "(a, b)* + S",
            "a, (b + EMPTY)",
            "((a + b), S)*",
        ];
        let alpha = [sym("a"), sym("b"), Symbol::S];
        for src in models {
            let m = ContentModel::parse(src).unwrap();
            let nfa = Nfa::build(&m);
            let dfa = Dfa::build(&nfa);
            let mut words: Vec<Vec<Symbol>> = vec![vec![]];
            for _ in 0..4 {
                let mut next = Vec::new();
                for w in &words {
                    for s in &alpha {
                        let mut w2 = w.clone();
                        w2.push(s.clone());
                        next.push(w2);
                    }
                }
                words.extend(next);
            }
            for w in &words {
                let d = m.matches_derivative(w);
                assert_eq!(nfa.matches(w), d, "{src} / {w:?}");
                assert_eq!(dfa.matches(w), d, "{src} / {w:?}");
            }
        }
    }

    #[test]
    fn min_word_always_accepted() {
        for src in [
            "entry, author*, section*, ref",
            "(title, (text + section)*)",
            "(a + (b, c))*, d",
            "EMPTY",
        ] {
            let m = ContentModel::parse(src).unwrap();
            let w = m.min_word();
            assert!(Dfa::from_model(&m).matches(&w), "{src}: {w:?}");
        }
    }

    #[test]
    fn unknown_symbols_rejected() {
        let m = ContentModel::parse("a*").unwrap();
        let dfa = Dfa::from_model(&m);
        assert!(!dfa.matches(&[Symbol::Elem(Name::new("z"))]));
    }

    #[test]
    fn streaming_interface_matches_batch() {
        let m = ContentModel::parse("a, b*").unwrap();
        let dfa = Dfa::from_model(&m);
        let w = word("a b b");
        let mut st = dfa.start();
        for s in &w {
            st = dfa.step(st, s).unwrap();
        }
        assert!(dfa.is_accepting(st));
        assert!(dfa.step(dfa.start(), &sym("b")).is_none());
    }

    #[test]
    fn containment_cases() {
        let cases = [
            ("(a + b)*", "a*", true),
            ("a*", "(a + b)*", false),
            ("a, b*", "a", true),
            ("a", "a, b*", false),
            ("(a, a)*", "(a, a, a, a)*", true),
            ("(a, a, a, a)*", "(a, a)*", false),
            ("S*", "S, S", true),
            ("EMPTY", "EMPTY", true),
            ("a", "EMPTY", false),
        ];
        for (big, small, expect) in cases {
            let big_m = ContentModel::parse(big).unwrap();
            let small_m = ContentModel::parse(small).unwrap();
            assert_eq!(
                big_m.contains(&small_m),
                expect,
                "L({small}) ⊆ L({big}) should be {expect}"
            );
        }
    }

    #[test]
    fn equivalence_cases() {
        let a = ContentModel::parse("(a + b)*").unwrap();
        let b = ContentModel::parse("(b + a)*").unwrap();
        assert!(a.equivalent(&b));
        let c = ContentModel::parse("(a, b)*").unwrap();
        assert!(!a.equivalent(&c));
        // Star unrolling: a* ≡ (ε + a, a*).
        let star = ContentModel::parse("a*").unwrap();
        let unrolled = ContentModel::parse("EMPTY + (a, a*)").unwrap();
        assert!(star.equivalent(&unrolled));
    }

    #[test]
    fn containment_respects_disjoint_alphabets() {
        let a = ContentModel::parse("a").unwrap();
        let b = ContentModel::parse("b").unwrap();
        assert!(!a.contains(&b));
        assert!(!b.contains(&a));
    }

    #[test]
    fn glushkov_counts_positions() {
        let m = ContentModel::parse("a, (a + b)*, a").unwrap();
        let nfa = Nfa::build(&m);
        assert_eq!(nfa.positions(), 4);
    }
}
