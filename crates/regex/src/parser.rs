//! Parser for the textual content-model syntax.
//!
//! Grammar (paper syntax, with the XML DTD spellings accepted as aliases):
//!
//! ```text
//! alt    ::= seq ( ('+' | '|') seq )*
//! seq    ::= star ( ',' star )*
//! star   ::= atom '*'?
//! atom   ::= 'S' | '#PCDATA' | 'EMPTY' | 'ε' | name | '(' alt ')'
//! name   ::= [A-Za-z_][A-Za-z0-9_.-]*
//! ```
//!
//! `S`, `#PCDATA` parse to [`ContentModel::S`]; `EMPTY` and `ε` to
//! [`ContentModel::Epsilon`]. Note `S` itself is reserved and cannot be an
//! element name in this syntax.

use std::fmt;

use crate::ast::ContentModel;

/// Content-model parse error with byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "content model parse error at {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: msg.into(),
            offset: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.peek() {
            if c.is_whitespace() {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn eat(&mut self, c: char) -> bool {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += c.len_utf8();
            true
        } else {
            false
        }
    }

    fn alt(&mut self) -> Result<ContentModel, ParseError> {
        let mut m = self.seq()?;
        loop {
            self.skip_ws();
            if self.eat('+') || self.eat('|') {
                let rhs = self.seq()?;
                m = ContentModel::alt(m, rhs);
            } else {
                return Ok(m);
            }
        }
    }

    fn seq(&mut self) -> Result<ContentModel, ParseError> {
        let mut m = self.star()?;
        loop {
            self.skip_ws();
            if self.eat(',') {
                let rhs = self.star()?;
                m = ContentModel::seq(m, rhs);
            } else {
                return Ok(m);
            }
        }
    }

    fn star(&mut self) -> Result<ContentModel, ParseError> {
        let mut m = self.atom()?;
        // Allow iterated stars: a**.
        while self.eat('*') {
            m = ContentModel::star(m);
        }
        Ok(m)
    }

    fn atom(&mut self) -> Result<ContentModel, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some('(') => {
                self.eat('(');
                let m = self.alt()?;
                if !self.eat(')') {
                    return self.err("expected ')'");
                }
                Ok(m)
            }
            Some('#') => {
                let rest = &self.src[self.pos..];
                if let Some(r) = rest.strip_prefix("#PCDATA") {
                    self.pos = self.src.len() - r.len();
                    Ok(ContentModel::S)
                } else {
                    self.err("expected #PCDATA")
                }
            }
            Some('ε') => {
                self.eat('ε');
                Ok(ContentModel::Epsilon)
            }
            Some(c) if c.is_alphabetic() || c == '_' => {
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c.is_alphanumeric() || matches!(c, '_' | '.' | '-') {
                        self.pos += c.len_utf8();
                    } else {
                        break;
                    }
                }
                let name = &self.src[start..self.pos];
                match name {
                    "S" => Ok(ContentModel::S),
                    "EMPTY" => Ok(ContentModel::Epsilon),
                    _ => Ok(ContentModel::elem(name)),
                }
            }
            Some(c) => self.err(format!("unexpected character {c:?}")),
            None => self.err("unexpected end of input"),
        }
    }
}

impl ContentModel {
    /// Parses the textual content-model syntax.
    ///
    /// ```
    /// use xic_regex::ContentModel;
    /// let m = ContentModel::parse("(entry, author*, section*, ref)").unwrap();
    /// assert_eq!(m.to_string(), "entry, author*, section*, ref");
    /// let s = ContentModel::parse("(title, (text | section)*)").unwrap();
    /// assert_eq!(s.to_string(), "title, (text + section)*");
    /// ```
    pub fn parse(src: &str) -> Result<ContentModel, ParseError> {
        let mut p = Parser { src, pos: 0 };
        let m = p.alt()?;
        p.skip_ws();
        if p.pos != src.len() {
            return p.err("trailing input");
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_models() {
        for (src, printed) in [
            (
                "(entry, author*, section*, ref)",
                "entry, author*, section*, ref",
            ),
            ("(title, (text|section)*)", "title, (text + section)*"),
            ("EMPTY", "EMPTY"),
            ("ε", "EMPTY"),
            ("(person*, dept*)", "person*, dept*"),
            ("(name, address)", "name, address"),
            ("dname", "dname"),
            ("#PCDATA", "S"),
            ("S", "S"),
            ("(a + b)* , c", "(a + b)*, c"),
            ("a**", "a**"),
        ] {
            let m = ContentModel::parse(src).unwrap_or_else(|e| panic!("{src}: {e}"));
            assert_eq!(m.to_string(), printed, "source {src}");
        }
    }

    #[test]
    fn round_trips_through_display() {
        for src in [
            "entry, author*, section*, ref",
            "title, (text + section)*",
            "(a, b)*, (c + (d, e))*",
            "S, a, S*",
            "EMPTY",
        ] {
            let m = ContentModel::parse(src).unwrap();
            let again = ContentModel::parse(&m.to_string()).unwrap();
            assert_eq!(m, again, "source {src}");
        }
    }

    #[test]
    fn rejects_garbage() {
        for src in ["", "(a", "a +", "a , , b", "a)", "*a", "#PCDAT", "a b"] {
            assert!(ContentModel::parse(src).is_err(), "should reject {src:?}");
        }
    }

    #[test]
    fn error_reports_offset() {
        let e = ContentModel::parse("(a, b").unwrap_err();
        assert_eq!(e.offset, 5);
        assert!(e.to_string().contains("')'"));
    }

    #[test]
    fn names_with_punctuation() {
        let m = ContentModel::parse("has_staff, in-dept, a.b").unwrap();
        assert_eq!(m.element_types().len(), 3);
    }
}
