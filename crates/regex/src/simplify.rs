//! Algebraic simplification of content models.
//!
//! DTD round-trips and programmatic construction (e.g. `α? ↦ α + ε`,
//! `α+ ↦ α, α*`) produce redundant shapes; [`ContentModel::simplify`]
//! normalizes them using language-preserving identities. Equivalence is
//! property-tested against the DFA-based [`ContentModel::equivalent`].

use crate::ast::ContentModel;

impl ContentModel {
    /// Returns a language-equivalent, usually smaller, content model.
    ///
    /// Applied identities (each preserves `L(α)` exactly):
    ///
    /// * `ε, α = α, ε = α`
    /// * `α + α = α`
    /// * `(α*)* = α*`
    /// * `ε + α = α + ε = α` when `α` is nullable
    /// * `ε* = ε`
    /// * `(α + ε)* = α*` (and symmetrically)
    ///
    /// ```
    /// use xic_regex::ContentModel;
    /// let m = ContentModel::parse("(a + EMPTY), (b*)*, (EMPTY, c)").unwrap();
    /// let s = m.simplify();
    /// assert!(m.equivalent(&s));
    /// assert!(s.size() < m.size());
    /// ```
    pub fn simplify(&self) -> ContentModel {
        use ContentModel::*;
        match self {
            S | Elem(_) | Epsilon => self.clone(),
            Seq(a, b) => {
                let a = a.simplify();
                let b = b.simplify();
                match (a, b) {
                    (Epsilon, b) => b,
                    (a, Epsilon) => a,
                    (a, b) => ContentModel::seq(a, b),
                }
            }
            Alt(a, b) => {
                let a = a.simplify();
                let b = b.simplify();
                if a == b {
                    return a;
                }
                match (a, b) {
                    // ε is absorbed by a nullable sibling.
                    (Epsilon, b) if b.nullable() => b,
                    (a, Epsilon) if a.nullable() => a,
                    (a, b) => ContentModel::alt(a, b),
                }
            }
            Star(a) => {
                let a = a.simplify();
                match a {
                    Epsilon => Epsilon,
                    // (α*)* = α*.
                    Star(inner) => Star(inner),
                    // (α + ε)* = α*; (ε + α)* = α* (children are already
                    // simplified at this point).
                    Alt(x, y) if *y == Epsilon => ContentModel::star(*x),
                    Alt(x, y) if *x == Epsilon => ContentModel::star(*y),
                    a => ContentModel::star(a),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simp(src: &str) -> String {
        ContentModel::parse(src).unwrap().simplify().to_string()
    }

    #[test]
    fn identities() {
        assert_eq!(simp("EMPTY, a"), "a");
        assert_eq!(simp("a, EMPTY"), "a");
        assert_eq!(simp("a + a"), "a");
        assert_eq!(simp("a**"), "a*");
        assert_eq!(simp("EMPTY*"), "EMPTY");
        assert_eq!(simp("(a + EMPTY)*"), "a*");
        assert_eq!(simp("(EMPTY + a)*"), "a*");
        assert_eq!(simp("(a* + EMPTY)"), "a*");
        // Non-nullable alternations keep their ε.
        assert_eq!(simp("a + EMPTY"), "a + EMPTY");
        // Nested.
        assert_eq!(simp("(EMPTY, a), (b + b)*"), "a, b*");
    }

    #[test]
    fn simplification_preserves_language() {
        for src in [
            "(a + EMPTY), (b*)*, (EMPTY, c)",
            "((a + a) + (a + a))*",
            "(EMPTY + (EMPTY + a))*",
            "S, (EMPTY, S)*",
            "(entry, author*, section*, ref)",
            "EMPTY",
            "a + EMPTY",
        ] {
            let m = ContentModel::parse(src).unwrap();
            let s = m.simplify();
            assert!(m.equivalent(&s), "{src} vs {s}");
            assert!(s.size() <= m.size(), "{src}");
            // Idempotent.
            assert_eq!(s.simplify(), s, "{src}");
        }
    }
}
