//! Random word sampling from a content model's language.
//!
//! Used by the synthetic document generators (`xic-legacy`, benches) and by
//! property tests: every sampled word must be accepted by every matcher.

use rand::Rng;

use crate::ast::{ContentModel, Symbol};

impl ContentModel {
    /// Samples a random word of `L(α)`.
    ///
    /// `star_bias` ∈ [0, 1) is the probability of taking another iteration
    /// of a `*` (so iteration counts are geometric with mean
    /// `star_bias / (1 − star_bias)`). Unions pick a branch uniformly.
    ///
    /// ```
    /// use xic_regex::{ContentModel, Dfa};
    /// use rand::SeedableRng;
    /// let m = ContentModel::parse("(entry, author*, section*, ref)").unwrap();
    /// let dfa = Dfa::from_model(&m);
    /// let mut rng = rand::rngs::SmallRng::seed_from_u64(42);
    /// for _ in 0..32 {
    ///     let w = m.sample(&mut rng, 0.5);
    ///     assert!(dfa.matches(&w));
    /// }
    /// ```
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, star_bias: f64) -> Vec<Symbol> {
        let mut out = Vec::new();
        self.sample_into(rng, star_bias, &mut out);
        out
    }

    fn sample_into<R: Rng + ?Sized>(&self, rng: &mut R, star_bias: f64, out: &mut Vec<Symbol>) {
        match self {
            ContentModel::S => out.push(Symbol::S),
            ContentModel::Elem(n) => out.push(Symbol::Elem(n.clone())),
            ContentModel::Epsilon => {}
            ContentModel::Alt(a, b) => {
                if rng.gen_bool(0.5) {
                    a.sample_into(rng, star_bias, out);
                } else {
                    b.sample_into(rng, star_bias, out);
                }
            }
            ContentModel::Seq(a, b) => {
                a.sample_into(rng, star_bias, out);
                b.sample_into(rng, star_bias, out);
            }
            ContentModel::Star(a) => {
                while rng.gen_bool(star_bias) {
                    a.sample_into(rng, star_bias, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automata::{Dfa, Nfa};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn samples_are_members_of_the_language() {
        let models = [
            "(entry, author*, section*, ref)",
            "(title, (text + section)*)",
            "(a + (b, c))*, d",
            "EMPTY",
            "S, (a + S)*",
        ];
        let mut rng = SmallRng::seed_from_u64(7);
        for src in models {
            let m = ContentModel::parse(src).unwrap();
            let nfa = Nfa::build(&m);
            let dfa = Dfa::build(&nfa);
            for _ in 0..200 {
                let w = m.sample(&mut rng, 0.6);
                assert!(nfa.matches(&w), "{src}: {w:?}");
                assert!(dfa.matches(&w), "{src}: {w:?}");
            }
        }
    }

    #[test]
    fn star_bias_zero_gives_min_iterations() {
        let m = ContentModel::parse("a*, b").unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let w = m.sample(&mut rng, 0.0);
        assert_eq!(w, vec![Symbol::elem("b")]);
    }

    #[test]
    fn high_bias_produces_long_words() {
        let m = ContentModel::parse("a*").unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        let total: usize = (0..50).map(|_| m.sample(&mut rng, 0.9).len()).sum();
        assert!(total > 100, "expected long words, got total {total}");
    }
}
