//! Property-based tests for content models: the three matchers
//! (derivative / Glushkov NFA / subset DFA) agree on arbitrary models and
//! words; sampling produces members; occurrence intervals are sound.

use proptest::prelude::*;
use xic_model::Name;
use xic_regex::{occurrences, ContentModel, Dfa, Nfa, Symbol};

/// Strategy for arbitrary content models over a 3-letter alphabet + S.
fn model_strategy() -> impl Strategy<Value = ContentModel> {
    let leaf = prop_oneof![
        Just(ContentModel::S),
        Just(ContentModel::Epsilon),
        Just(ContentModel::elem("a")),
        Just(ContentModel::elem("b")),
        Just(ContentModel::elem("c")),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| ContentModel::alt(x, y)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| ContentModel::seq(x, y)),
            inner.prop_map(ContentModel::star),
        ]
    })
}

/// Strategy for arbitrary words over the same alphabet.
fn word_strategy() -> impl Strategy<Value = Vec<Symbol>> {
    prop::collection::vec(
        prop_oneof![
            Just(Symbol::S),
            Just(Symbol::elem("a")),
            Just(Symbol::elem("b")),
            Just(Symbol::elem("c")),
        ],
        0..8,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn matchers_agree(m in model_strategy(), w in word_strategy()) {
        let d = m.matches_derivative(&w);
        let nfa = Nfa::build(&m);
        prop_assert_eq!(nfa.matches(&w), d);
        let dfa = Dfa::build(&nfa);
        prop_assert_eq!(dfa.matches(&w), d);
    }

    #[test]
    fn display_parse_preserves_language(m in model_strategy(), w in word_strategy()) {
        let printed = m.to_string();
        let again = ContentModel::parse(&printed).unwrap();
        prop_assert_eq!(again.matches_derivative(&w), m.matches_derivative(&w),
            "language change through printing: {}", printed);
    }

    #[test]
    fn min_word_is_member(m in model_strategy()) {
        let w = m.min_word();
        prop_assert!(m.matches_derivative(&w));
        prop_assert_eq!(m.nullable(), w.is_empty());
    }

    #[test]
    fn sampled_words_are_members(m in model_strategy(), seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let dfa = Dfa::from_model(&m);
        for _ in 0..8 {
            let w = m.sample(&mut rng, 0.4);
            prop_assert!(dfa.matches(&w), "sample {:?} rejected for {}", w, m);
        }
    }

    #[test]
    fn occurrence_interval_is_sound(m in model_strategy(), w in word_strategy()) {
        // For any accepted word, the occurrence count of each letter lies
        // inside the computed interval.
        if m.matches_derivative(&w) {
            for e in ["a", "b", "c"] {
                let name = Name::new(e);
                let iv = occurrences(&m, &name);
                let count = w.iter().filter(|s| s.as_elem() == Some(&name)).count() as u32;
                prop_assert!(count >= iv.min, "{} occurs {} < min {} in {}", e, count, iv.min, m);
                if let Some(max) = iv.max {
                    prop_assert!(count <= max, "{} occurs {} > max {} in {}", e, count, max, m);
                }
            }
        }
    }

    #[test]
    fn containment_is_sound_on_samples(
        big in model_strategy(),
        small in model_strategy(),
        seed in 0u64..1000,
    ) {
        use rand::SeedableRng;
        // If L(small) ⊆ L(big), every sampled word of `small` is accepted
        // by `big`; and containment is reflexive.
        prop_assert!(big.contains(&big));
        if big.contains(&small) {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            let dfa = Dfa::from_model(&big);
            for _ in 0..8 {
                let w = small.sample(&mut rng, 0.4);
                prop_assert!(dfa.matches(&w), "{:?} ∈ L({}) ⊄ L({})", w, small, big);
            }
        }
    }

    #[test]
    fn simplify_preserves_language_and_shrinks(m in model_strategy(), w in word_strategy()) {
        let s = m.simplify();
        prop_assert!(s.size() <= m.size(), "{} grew to {}", m, s);
        prop_assert_eq!(
            s.matches_derivative(&w),
            m.matches_derivative(&w),
            "simplify changed the language of {}", m
        );
        // Idempotence.
        prop_assert_eq!(s.simplify(), s);
    }

    #[test]
    fn containment_refutations_are_witnessed(m in model_strategy(), w in word_strategy()) {
        // Any word separates only in the allowed direction: if w ∈ L(m)
        // for every m that `contains` another, consistency holds by the
        // definition; here check contrapositive on concrete words.
        let other = ContentModel::star(m.clone());
        // m* always contains m.
        prop_assert!(other.contains(&m));
        if m.matches_derivative(&w) {
            prop_assert!(other.matches_derivative(&w));
        }
    }

    #[test]
    fn unique_subelement_words_have_exactly_one(m in model_strategy(), seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        for e in ["a", "b"] {
            let name = Name::new(e);
            if m.is_unique_subelement(&name) {
                for _ in 0..8 {
                    let w = m.sample(&mut rng, 0.5);
                    let count = w.iter().filter(|s| s.as_elem() == Some(&name)).count();
                    prop_assert_eq!(count, 1, "unique sub-element {} occurs {} times in {:?} of {}", e, count, w, m);
                }
            }
        }
    }
}
