//! Integration tests for the hand-rolled JSON codec, exercised through
//! the public [`Metrics`] API (`to_json` / `parse_json`): string-escaping
//! edge cases (control characters, quotes, backslashes, non-ASCII) and a
//! render→parse→render round-trip property over adversarial key names.
//!
//! Span and counter names in practice are tame dotted identifiers, but
//! the codec must not *depend* on that — a collector name is an arbitrary
//! string once snapshots are merged from foreign sources.

use std::collections::BTreeMap;

use proptest::prelude::*;
use xic_obs::{Histogram, Metrics, SpanStat};

fn metrics_with_keys(keys: &[&str]) -> Metrics {
    let mut m = Metrics {
        wall_nanos: 123,
        ..Metrics::default()
    };
    for (i, k) in keys.iter().enumerate() {
        m.counters.insert((*k).to_string(), i as u64 + 1);
        m.spans.insert(
            format!("span {k}"),
            SpanStat {
                count: 1,
                nanos: 10,
            },
        );
        m.maxima.insert(format!("max {k}"), 99);
        let mut h = Histogram::default();
        h.record(i as u64);
        m.hists.insert(format!("hist {k}"), h);
    }
    m
}

#[test]
fn escaping_edge_cases_round_trip() {
    let nasty = [
        "quote\"inside",
        "back\\slash",
        "tab\there",
        "new\nline",
        "carriage\rreturn",
        "nul\u{0}byte",
        "bell\u{7}char",
        "esc\u{1b}seq",
        "ünïcodé-ключ-鍵",
        "emoji 🗝 key",
        " leading and trailing ",
        "",
    ];
    let m = metrics_with_keys(&nasty);
    let rendered = m.to_json();
    let back = Metrics::parse_json(&rendered).expect("rendered JSON parses back");
    assert_eq!(back, m);
    // Control characters never appear raw in the output (escapes only);
    // the quote and backslash keys are escaped.
    for c in rendered.chars() {
        assert!(
            c == '\n' || (c as u32) >= 0x20,
            "raw control char {:?} leaked into output",
            c
        );
    }
    assert!(rendered.contains("quote\\\"inside"), "{rendered}");
    assert!(rendered.contains("back\\\\slash"), "{rendered}");
    assert!(rendered.contains("\\u0000"), "{rendered}");
    // Non-ASCII passes through unescaped (the output is UTF-8).
    assert!(rendered.contains("ünïcodé-ключ-鍵"), "{rendered}");
}

#[test]
fn rendering_is_deterministic_and_stable() {
    let m = metrics_with_keys(&["b", "a\"x", "\\"]);
    let once = m.to_json();
    let twice = Metrics::parse_json(&once).unwrap().to_json();
    assert_eq!(once, twice, "parse→render is not a fixed point");
}

/// Keys drawn to stress the escaper: plain runs, every escape-relevant
/// character, and multi-byte UTF-8.
fn key() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            // ASCII printable runs
            "[a-z.]{1,6}",
            // One character from the danger set
            prop_oneof![
                Just("\"".to_string()),
                Just("\\".to_string()),
                Just("\n".to_string()),
                Just("\t".to_string()),
                Just("\r".to_string()),
                Just("\u{0}".to_string()),
                Just("\u{1f}".to_string()),
                Just("é".to_string()),
                Just("→".to_string()),
                Just("🗝".to_string()),
            ],
        ],
        0..6,
    )
    .prop_map(|parts| parts.concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// parse(render(m)) == m for arbitrary key names and values, and
    /// render is a fixed point of parse→render. Values stay within the
    /// codec's documented exact range (integers representable in an
    /// `f64`, < 2⁵³); histogram samples stay below 2⁴⁹ so a ten-sample
    /// sum is still exact.
    #[test]
    fn render_parse_round_trip(
        wall in 0u64..(1 << 53),
        counters in proptest::collection::vec((key(), 0u64..(1 << 53)), 0..8),
        spans in proptest::collection::vec(
            (key(), 0u64..(1 << 53), 0u64..(1 << 53)),
            0..8,
        ),
        maxima in proptest::collection::vec((key(), 0u64..(1 << 53)), 0..4),
        hist_samples in proptest::collection::vec(
            (key(), proptest::collection::vec(0u64..(1 << 49), 1..10)),
            0..4,
        ),
    ) {
        let mut m = Metrics {
            wall_nanos: wall,
            counters: counters.into_iter().collect(),
            spans: spans
                .into_iter()
                .map(|(k, count, nanos)| (k, SpanStat { count, nanos }))
                .collect(),
            maxima: maxima.into_iter().collect(),
            hists: BTreeMap::new(),
        };
        for (k, samples) in hist_samples {
            let mut h = Histogram::default();
            for s in samples {
                h.record(s);
            }
            m.hists.insert(k, h);
        }
        let rendered = m.to_json();
        let back = Metrics::parse_json(&rendered).unwrap();
        prop_assert_eq!(&back, &m);
        prop_assert_eq!(back.to_json(), rendered);
    }
}
