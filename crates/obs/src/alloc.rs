//! Process-wide heap counters fed by an installed counting allocator.
//!
//! This crate is `forbid(unsafe_code)` and a `GlobalAlloc` impl is
//! necessarily unsafe, so the work is split: a binary that wants heap
//! totals expands [`install_counting_alloc!`](crate::install_counting_alloc)
//! at its crate root (the `xic` binary and the bench binaries all do),
//! which installs a thin `#[global_allocator]` wrapper around
//! [`std::alloc::System`] reporting every allocation through the safe hooks
//! here. [`stats`] then surfaces the totals, which the CLI folds into a
//! [`Metrics`](crate::Metrics) snapshot as the `alloc.count` counter and
//! the `alloc.peak` maximum whenever `--metrics` is requested.
//!
//! When no wrapper is installed every total stays zero and the CLI emits
//! nothing — library users of `xic-cli` see unchanged output.
//!
//! The hooks are relaxed atomic updates: they add about a nanosecond per
//! allocation, and the whole point of the streaming hot path is to make
//! allocations rare enough that this never shows up in a profile.

use std::sync::atomic::{AtomicU64, Ordering};

static COUNT: AtomicU64 = AtomicU64::new(0);
static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

/// Totals accumulated by the installed allocator wrapper.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Number of heap acquisitions (allocation calls plus reallocations).
    pub count: u64,
    /// High-water mark of live heap bytes.
    pub peak: u64,
    /// Currently live heap bytes.
    pub live: u64,
}

/// Records a successful allocation of `size` bytes.
#[inline]
pub fn on_alloc(size: usize) {
    COUNT.fetch_add(1, Ordering::Relaxed);
    let live = LIVE.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

/// Records a successful deallocation of `size` bytes.
#[inline]
pub fn on_dealloc(size: usize) {
    LIVE.fetch_sub(size as u64, Ordering::Relaxed);
}

/// Records a successful reallocation from `old` to `new` bytes: one more
/// acquisition, live bytes adjusted by the delta.
#[inline]
pub fn on_realloc(old: usize, new: usize) {
    COUNT.fetch_add(1, Ordering::Relaxed);
    if new >= old {
        let grow = (new - old) as u64;
        let live = LIVE.fetch_add(grow, Ordering::Relaxed) + grow;
        PEAK.fetch_max(live, Ordering::Relaxed);
    } else {
        LIVE.fetch_sub((old - new) as u64, Ordering::Relaxed);
    }
}

/// A snapshot of the process-wide totals — all zero when no counting
/// allocator was installed.
pub fn stats() -> AllocStats {
    AllocStats {
        count: COUNT.load(Ordering::Relaxed),
        peak: PEAK.load(Ordering::Relaxed),
        live: LIVE.load(Ordering::Relaxed),
    }
}

/// Resets the peak to the current live count and returns that baseline;
/// [`peak_above`] then reports the high-water mark of a subsequent region
/// relative to it. Benchmarks use the pair to attribute peak heap to one
/// validation path rather than to the whole process.
pub fn reset_peak() -> u64 {
    let live = LIVE.load(Ordering::Relaxed);
    PEAK.store(live, Ordering::Relaxed);
    live
}

/// Peak heap bytes above `baseline` since the matching [`reset_peak`].
pub fn peak_above(baseline: u64) -> u64 {
    PEAK.load(Ordering::Relaxed).saturating_sub(baseline)
}

/// Installs a counting `#[global_allocator]`: a thin wrapper around
/// [`std::alloc::System`] reporting every heap operation to the hooks in
/// this module.
///
/// Every workspace library is `forbid(unsafe_code)` and a
/// [`std::alloc::GlobalAlloc`] impl cannot be, so the wrapper must live in
/// each binary that wants heap totals; this macro is that wrapper, written
/// once. Expand it at a binary's crate root:
///
/// ```ignore
/// xic_obs::install_counting_alloc!();
/// ```
#[macro_export]
macro_rules! install_counting_alloc {
    () => {
        mod __xic_counting_alloc {
            use std::alloc::{GlobalAlloc, Layout, System};

            /// [`System`] wrapper feeding the process-wide counters in
            /// `xic_obs::alloc`.
            pub struct CountingAlloc;

            // SAFETY: defers all allocation to `System` unchanged; the
            // hooks update relaxed atomics only and never influence the
            // returned pointers.
            unsafe impl GlobalAlloc for CountingAlloc {
                unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
                    let p = System.alloc(layout);
                    if !p.is_null() {
                        $crate::alloc::on_alloc(layout.size());
                    }
                    p
                }

                unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
                    let p = System.alloc_zeroed(layout);
                    if !p.is_null() {
                        $crate::alloc::on_alloc(layout.size());
                    }
                    p
                }

                unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
                    System.dealloc(ptr, layout);
                    $crate::alloc::on_dealloc(layout.size());
                }

                unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
                    let p = System.realloc(ptr, layout, new_size);
                    if !p.is_null() {
                        $crate::alloc::on_realloc(layout.size(), new_size);
                    }
                    p
                }
            }
        }

        #[global_allocator]
        static __XIC_COUNTING_ALLOC: __xic_counting_alloc::CountingAlloc =
            __xic_counting_alloc::CountingAlloc;
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // The counters are process-wide statics shared with any concurrently
    // running test, so assertions are on deltas and invariants only.
    #[test]
    fn hooks_accumulate_and_peak_tracks_high_water() {
        let before = stats();
        on_alloc(1000);
        on_realloc(1000, 1500);
        let mid = stats();
        assert!(mid.count >= before.count + 2);
        assert!(mid.peak >= before.live + 1500);
        on_dealloc(1500);
        let after = stats();
        assert!(after.live <= mid.live);
        // Peak never decreases.
        assert!(after.peak >= mid.peak);
        // Shrinking reallocations release the difference.
        on_alloc(800);
        on_realloc(800, 300);
        on_dealloc(300);
        assert!(stats().peak >= after.peak);
    }
}
