//! Process-wide heap counters fed by an installed counting allocator.
//!
//! This crate is `forbid(unsafe_code)` and a `GlobalAlloc` impl is
//! necessarily unsafe, so the work is split: a binary that wants heap
//! totals installs its own thin `#[global_allocator]` wrapper around
//! [`std::alloc::System`] (the `xic` binary and the bench `experiments`
//! runner both do) and reports every allocation through the safe hooks
//! here. [`stats`] then surfaces the totals, which the CLI folds into a
//! [`Metrics`](crate::Metrics) snapshot as the `alloc.count` counter and
//! the `alloc.peak` maximum whenever `--metrics` is requested.
//!
//! When no wrapper is installed every total stays zero and the CLI emits
//! nothing — library users of `xic-cli` see unchanged output.
//!
//! The hooks are relaxed atomic updates: they add about a nanosecond per
//! allocation, and the whole point of the streaming hot path is to make
//! allocations rare enough that this never shows up in a profile.

use std::sync::atomic::{AtomicU64, Ordering};

static COUNT: AtomicU64 = AtomicU64::new(0);
static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

/// Totals accumulated by the installed allocator wrapper.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Number of heap acquisitions (allocation calls plus reallocations).
    pub count: u64,
    /// High-water mark of live heap bytes.
    pub peak: u64,
    /// Currently live heap bytes.
    pub live: u64,
}

/// Records a successful allocation of `size` bytes.
#[inline]
pub fn on_alloc(size: usize) {
    COUNT.fetch_add(1, Ordering::Relaxed);
    let live = LIVE.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

/// Records a successful deallocation of `size` bytes.
#[inline]
pub fn on_dealloc(size: usize) {
    LIVE.fetch_sub(size as u64, Ordering::Relaxed);
}

/// Records a successful reallocation from `old` to `new` bytes: one more
/// acquisition, live bytes adjusted by the delta.
#[inline]
pub fn on_realloc(old: usize, new: usize) {
    COUNT.fetch_add(1, Ordering::Relaxed);
    if new >= old {
        let grow = (new - old) as u64;
        let live = LIVE.fetch_add(grow, Ordering::Relaxed) + grow;
        PEAK.fetch_max(live, Ordering::Relaxed);
    } else {
        LIVE.fetch_sub((old - new) as u64, Ordering::Relaxed);
    }
}

/// A snapshot of the process-wide totals — all zero when no counting
/// allocator was installed.
pub fn stats() -> AllocStats {
    AllocStats {
        count: COUNT.load(Ordering::Relaxed),
        peak: PEAK.load(Ordering::Relaxed),
        live: LIVE.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The counters are process-wide statics shared with any concurrently
    // running test, so assertions are on deltas and invariants only.
    #[test]
    fn hooks_accumulate_and_peak_tracks_high_water() {
        let before = stats();
        on_alloc(1000);
        on_realloc(1000, 1500);
        let mid = stats();
        assert!(mid.count >= before.count + 2);
        assert!(mid.peak >= before.live + 1500);
        on_dealloc(1500);
        let after = stats();
        assert!(after.live <= mid.live);
        // Peak never decreases.
        assert!(after.peak >= mid.peak);
        // Shrinking reallocations release the difference.
        on_alloc(800);
        on_realloc(800, 300);
        on_dealloc(300);
        assert!(stats().peak >= after.peak);
    }
}
