//! A bounded ring buffer of raw span events, exportable as a Chrome
//! trace-event timeline.
//!
//! Where [`MetricsCollector`](crate::MetricsCollector) aggregates (span
//! sums, counters, histograms), a [`TraceCollector`] keeps the *events
//! themselves* — name, originating thread, start offset, duration — so
//! thread overlap and pipeline occupancy can be inspected on a timeline
//! instead of inferred from totals. [`TraceCollector::to_chrome_json`]
//! renders the buffer in the Chrome trace-event array format, which loads
//! directly in `chrome://tracing` and [Perfetto](https://ui.perfetto.dev)
//! (the `xic` CLI writes it via `--trace-out`).
//!
//! The buffer is a fixed-capacity ring (default 65 536 events): when it
//! fills, the *oldest* events are dropped and counted, so a long run
//! keeps its most recent window and the export says how much history was
//! shed. Spans report only on close, so a span's start offset is
//! reconstructed as `now − duration` against the collector's epoch —
//! exact for the event itself, unaffected by ring overflow.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;
use std::thread::ThreadId;
use std::time::Instant;

use crate::json::Json;
use crate::{Collector, Metrics};

/// Default ring capacity (events). At phase/chunk/edit granularity this
/// holds minutes of history; a heavy `apply-edits` run overflows
/// gracefully (oldest dropped, counted in [`TraceCollector::dropped`]).
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

/// One completed span, as raw material for a timeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// The span name (see the taxonomy table in the crate docs).
    pub name: &'static str,
    /// Ordinal of the originating thread (0 = first thread seen).
    pub tid: u64,
    /// Nanoseconds from collector creation to the span's start.
    pub start_nanos: u64,
    /// The span's duration in nanoseconds.
    pub dur_nanos: u64,
}

#[derive(Default)]
struct TraceInner {
    events: VecDeque<TraceEvent>,
    /// Events shed by ring overflow (oldest-first).
    dropped: u64,
    /// First-seen ordinals: `ThreadId` is opaque, so threads are numbered
    /// in order of their first recorded span.
    tids: HashMap<ThreadId, u64>,
}

/// A [`Collector`] recording raw span events into a bounded ring buffer.
///
/// Counters and maxima are ignored — this collector is about *when*
/// things happened, not totals; pair it with a
/// [`MetricsCollector`](crate::MetricsCollector) under a
/// [`Fanout`](crate::Fanout) to get both.
///
/// ```
/// use xic_obs::{Obs, TraceCollector};
/// use std::sync::Arc;
///
/// let tc = Arc::new(TraceCollector::new());
/// let obs = Obs::new(tc.clone());
/// obs.span("check").end();
/// let events = tc.events();
/// assert_eq!(events.len(), 1);
/// assert_eq!(events[0].name, "check");
/// assert_eq!(events[0].tid, 0);
/// ```
pub struct TraceCollector {
    start: Instant,
    capacity: usize,
    inner: Mutex<TraceInner>,
}

impl Default for TraceCollector {
    fn default() -> Self {
        TraceCollector::new()
    }
}

impl TraceCollector {
    /// An empty ring with the default capacity; the timeline epoch
    /// (offset 0) is now.
    pub fn new() -> Self {
        TraceCollector::with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// An empty ring holding at most `capacity` events (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        TraceCollector {
            start: Instant::now(),
            capacity: capacity.max(1),
            inner: Mutex::new(TraceInner::default()),
        }
    }

    /// The buffered events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.lock().unwrap().events.iter().copied().collect()
    }

    /// How many events ring overflow has shed so far.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    /// Renders the buffer in Chrome trace-event **array form** — a JSON
    /// array of complete (`"ph": "X"`) events with microsecond `ts`/`dur`
    /// — loadable as-is in `chrome://tracing` or Perfetto. Thread
    /// ordinals become `tid`; `pid` is always 1. If overflow shed events,
    /// a zero-duration metadata-style marker named `xic.trace_dropped`
    /// leads the array so the loss is visible on the timeline.
    pub fn to_chrome_json(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let mut items = Vec::with_capacity(inner.events.len() + 1);
        if inner.dropped > 0 {
            items.push(Json::Object(vec![
                (
                    "name".into(),
                    Json::String(format!("xic.trace_dropped: {}", inner.dropped)),
                ),
                ("ph".into(), Json::String("X".into())),
                ("ts".into(), Json::Number(0.0)),
                ("dur".into(), Json::Number(0.0)),
                ("pid".into(), Json::Number(1.0)),
                ("tid".into(), Json::Number(0.0)),
            ]));
        }
        for e in &inner.events {
            items.push(Json::Object(vec![
                ("name".into(), Json::String(e.name.to_string())),
                ("ph".into(), Json::String("X".into())),
                ("ts".into(), Json::Number(e.start_nanos as f64 / 1e3)),
                ("dur".into(), Json::Number(e.dur_nanos as f64 / 1e3)),
                ("pid".into(), Json::Number(1.0)),
                ("tid".into(), Json::Number(e.tid as f64)),
            ]));
        }
        Json::Array(items).render()
    }
}

impl Collector for TraceCollector {
    fn record_span(&self, name: &'static str, nanos: u64) {
        // The span just closed: its start is `now − duration` relative to
        // the collector's epoch (saturating in case the span began before
        // the collector existed).
        let now = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let start_nanos = now.saturating_sub(nanos);
        let thread = std::thread::current().id();
        let mut inner = self.inner.lock().unwrap();
        let next = inner.tids.len() as u64;
        let tid = match inner.tids.entry(thread) {
            Entry::Occupied(o) => *o.get(),
            Entry::Vacant(v) => *v.insert(next),
        };
        if inner.events.len() == self.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(TraceEvent {
            name,
            tid,
            start_nanos,
            dur_nanos: nanos,
        });
    }

    fn add(&self, _name: &'static str, _delta: u64) {}

    fn record_max(&self, _name: &'static str, _value: u64) {}
}

/// A [`Collector`] forwarding every event to several collectors — e.g. a
/// [`MetricsCollector`](crate::MetricsCollector) for aggregates *and* a
/// [`TraceCollector`] for the timeline, behind one [`Obs`](crate::Obs)
/// handle. [`Collector::metrics`] returns the first child snapshot.
pub struct Fanout {
    children: Vec<std::sync::Arc<dyn Collector>>,
}

impl Fanout {
    /// A collector forwarding to every collector in `children`.
    pub fn new(children: Vec<std::sync::Arc<dyn Collector>>) -> Self {
        Fanout { children }
    }
}

impl Collector for Fanout {
    fn record_span(&self, name: &'static str, nanos: u64) {
        for c in &self.children {
            c.record_span(name, nanos);
        }
    }

    fn add(&self, name: &'static str, delta: u64) {
        for c in &self.children {
            c.add(name, delta);
        }
    }

    fn record_max(&self, name: &'static str, value: u64) {
        for c in &self.children {
            c.record_max(name, value);
        }
    }

    fn metrics(&self) -> Option<Metrics> {
        self.children.iter().find_map(|c| c.metrics())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::{MetricsCollector, Obs};
    use std::sync::Arc;

    #[test]
    fn records_events_with_plausible_offsets() {
        let tc = Arc::new(TraceCollector::new());
        let obs = Obs::new(tc.clone());
        obs.record_span("parse", 5_000);
        std::thread::sleep(std::time::Duration::from_millis(2));
        obs.record_span("check", 1_000);
        let ev = tc.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].name, "parse");
        assert_eq!(ev[0].dur_nanos, 5_000);
        // The second span started strictly after the first (≥ 2 ms later).
        assert!(ev[1].start_nanos > ev[0].start_nanos);
        assert_eq!(tc.dropped(), 0);
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let tc = TraceCollector::with_capacity(3);
        for name in ["a", "b", "c", "d", "e"] {
            tc.record_span(name, 10);
        }
        let ev = tc.events();
        assert_eq!(ev.len(), 3);
        assert_eq!(ev[0].name, "c");
        assert_eq!(ev[2].name, "e");
        assert_eq!(tc.dropped(), 2);
        // The export flags the loss.
        assert!(tc.to_chrome_json().contains("xic.trace_dropped: 2"));
    }

    #[test]
    fn threads_get_stable_first_seen_ordinals() {
        let tc = Arc::new(TraceCollector::new());
        tc.record_span("main", 1); // this thread becomes tid 0
        std::thread::scope(|s| {
            for _ in 0..3 {
                let tc = tc.clone();
                s.spawn(move || {
                    tc.record_span("worker", 1);
                    tc.record_span("worker", 2);
                });
            }
        });
        let ev = tc.events();
        assert_eq!(ev.len(), 7);
        assert_eq!(ev[0].tid, 0);
        let mut tids: Vec<u64> = ev.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids, vec![0, 1, 2, 3]);
        // Both spans from one worker share a tid.
        for w in 1..=3 {
            assert_eq!(ev.iter().filter(|e| e.tid == w).count(), 2);
        }
    }

    /// The acceptance-criteria schema check: array form, every event has
    /// `name`/`ph:"X"`/`ts`/`dur`/`pid`/`tid`, and the document parses as
    /// JSON (what `chrome://tracing` / Perfetto require of an import).
    #[test]
    fn chrome_export_matches_trace_event_schema() {
        let tc = Arc::new(TraceCollector::new());
        let obs = Obs::new(tc.clone());
        {
            let _g = obs.span("check");
            obs.record_span("par.chunk", 42_000);
        }
        let out = tc.to_chrome_json();
        let doc = json::parse(&out).expect("trace export must be valid JSON");
        let events = doc.as_array("trace doc").unwrap();
        assert_eq!(events.len(), 2);
        for ev in events {
            let obj = ev.as_object("trace event").unwrap();
            let keys: Vec<&str> = obj.iter().map(|(k, _)| k.as_str()).collect();
            assert_eq!(keys, ["name", "ph", "ts", "dur", "pid", "tid"]);
            let get = |k: &str| {
                obj.iter()
                    .find(|(key, _)| key == k)
                    .map(|(_, v)| v)
                    .unwrap()
            };
            assert_eq!(get("ph"), &json::Json::String("X".into()));
            assert!(matches!(get("ts"), json::Json::Number(n) if *n >= 0.0));
            assert!(matches!(get("dur"), json::Json::Number(n) if *n >= 0.0));
            assert_eq!(get("pid").as_u64("pid").unwrap(), 1);
            get("tid").as_u64("tid").unwrap();
        }
    }

    #[test]
    fn fanout_feeds_metrics_and_trace_together() {
        let mc = Arc::new(MetricsCollector::new());
        let tc = Arc::new(TraceCollector::new());
        let fan = Arc::new(Fanout::new(vec![mc.clone(), tc.clone()]));
        let obs = Obs::new(fan);
        obs.record_span("edit", 1_234);
        obs.add("edits", 1);
        obs.max("stream.peak_depth", 9);
        let m = mc.snapshot();
        assert_eq!(m.span("edit").count, 1);
        assert_eq!(m.counter("edits"), 1);
        assert_eq!(tc.events().len(), 1);
        // Fanout::metrics surfaces the aggregating child's snapshot.
        assert!(obs.snapshot().is_some());
    }
}
