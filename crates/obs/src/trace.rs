//! A bounded ring buffer of raw span events, exportable as a Chrome
//! trace-event timeline.
//!
//! Where [`MetricsCollector`](crate::MetricsCollector) aggregates (span
//! sums, counters, histograms), a [`TraceCollector`] keeps the *events
//! themselves* — name, originating thread, start offset, duration — so
//! thread overlap and pipeline occupancy can be inspected on a timeline
//! instead of inferred from totals. [`TraceCollector::to_chrome_json`]
//! renders the buffer in the Chrome trace-event array format, which loads
//! directly in `chrome://tracing` and [Perfetto](https://ui.perfetto.dev)
//! (the `xic` CLI writes it via `--trace-out`).
//!
//! Each recording thread owns its own fixed-capacity ring (default
//! 65 536 events per thread), so the record path locks only a mutex no
//! other thread touches and recorders never contend with each other.
//! When a ring fills, that thread's *oldest* events are dropped and
//! counted, so a long run keeps its most recent window and the export
//! says how much history was shed. Exports merge the rings in thread
//! order. Spans report only on close, so a span's start offset is
//! reconstructed as `now − duration` against the collector's epoch —
//! exact for the event itself, unaffected by ring overflow.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::Json;
use crate::{Collector, Metrics};

thread_local! {
    /// The request id spans recorded on this thread are attributed to
    /// (0 = no request in scope).
    static CURRENT_REQ: Cell<u64> = const { Cell::new(0) };
    /// This thread's ring per collector it has recorded to, keyed by the
    /// collector's unique generation (never reused, so a recycled
    /// allocation address can't alias a dead collector's cache entry).
    static MY_RINGS: RefCell<Vec<(u64, Arc<Mutex<ThreadRing>>)>> =
        const { RefCell::new(Vec::new()) };
}

/// Generation source for [`TraceCollector`] identity.
static NEXT_GEN: AtomicU64 = AtomicU64::new(1);

/// The request id currently in scope on this thread, or 0 when none is.
pub fn current_request() -> u64 {
    CURRENT_REQ.get()
}

/// Attributes every span recorded on this thread to request `req` until
/// the returned guard drops (restoring the previous scope, so nesting is
/// safe). Request ids are caller-assigned; 0 means "no request" and makes
/// the guard a no-op tag.
///
/// This is how a request id crosses layers without threading a parameter
/// through every [`Obs`](crate::Obs) call site: an HTTP worker wraps route
/// dispatch in a scope, a shard thread wraps each dequeued request, and
/// any [`TraceCollector`] they share tags the spans automatically.
///
/// ```
/// use xic_obs::{current_request, request_scope};
///
/// assert_eq!(current_request(), 0);
/// {
///     let _scope = request_scope(7);
///     assert_eq!(current_request(), 7);
/// }
/// assert_eq!(current_request(), 0);
/// ```
pub fn request_scope(req: u64) -> RequestScope {
    let prev = CURRENT_REQ.replace(req);
    RequestScope { prev }
}

/// RAII guard from [`request_scope`]; restores the previous request id on
/// drop.
#[must_use = "the scope ends when this guard drops"]
pub struct RequestScope {
    prev: u64,
}

impl Drop for RequestScope {
    fn drop(&mut self) {
        CURRENT_REQ.set(self.prev);
    }
}

/// Default ring capacity (events). At phase/chunk/edit granularity this
/// holds minutes of history; a heavy `apply-edits` run overflows
/// gracefully (oldest dropped, counted in [`TraceCollector::dropped`]).
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

/// One completed span, as raw material for a timeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// The span name (see the taxonomy table in the crate docs).
    pub name: &'static str,
    /// Ordinal of the originating thread (0 = first thread seen).
    pub tid: u64,
    /// Nanoseconds from collector creation to the span's start.
    pub start_nanos: u64,
    /// The span's duration in nanoseconds.
    pub dur_nanos: u64,
    /// The request id in scope when the span closed (see
    /// [`request_scope`]); 0 when the span was not request-scoped.
    pub req: u64,
}

/// One recording thread's private ring. Each thread locks only its own
/// ring on the record path, so concurrent recorders never contend;
/// exports and drains walk the registry and take the rings one by one.
struct ThreadRing {
    /// This thread's ordinal (order of first recorded span).
    tid: u64,
    events: VecDeque<TraceEvent>,
    /// Events shed by ring overflow (oldest-first).
    dropped: u64,
}

/// A [`Collector`] recording raw span events into a bounded ring buffer.
///
/// Counters and maxima are ignored — this collector is about *when*
/// things happened, not totals; pair it with a
/// [`MetricsCollector`](crate::MetricsCollector) under a
/// [`Fanout`](crate::Fanout) to get both.
///
/// ```
/// use xic_obs::{Obs, TraceCollector};
/// use std::sync::Arc;
///
/// let tc = Arc::new(TraceCollector::new());
/// let obs = Obs::new(tc.clone());
/// obs.span("check").end();
/// let events = tc.events();
/// assert_eq!(events.len(), 1);
/// assert_eq!(events[0].name, "check");
/// assert_eq!(events[0].tid, 0);
/// ```
pub struct TraceCollector {
    start: Instant,
    capacity: usize,
    /// Unique collector identity (keys the thread-local ring cache).
    gen: u64,
    /// Every recording thread's ring, in first-span order (index = tid).
    rings: Mutex<Vec<Arc<Mutex<ThreadRing>>>>,
}

impl Default for TraceCollector {
    fn default() -> Self {
        TraceCollector::new()
    }
}

impl TraceCollector {
    /// An empty ring with the default capacity; the timeline epoch
    /// (offset 0) is now.
    pub fn new() -> Self {
        TraceCollector::with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// An empty ring holding at most `capacity` events (minimum 1) per
    /// recording thread.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceCollector {
            start: Instant::now(),
            capacity: capacity.max(1),
            gen: NEXT_GEN.fetch_add(1, Ordering::Relaxed),
            rings: Mutex::new(Vec::new()),
        }
    }

    /// Registers (once per thread) and returns this thread's ring.
    fn my_ring(&self) -> Arc<Mutex<ThreadRing>> {
        MY_RINGS.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some((_, ring)) = cache.iter().find(|(g, _)| *g == self.gen) {
                return ring.clone();
            }
            // First span from this thread: register a fresh ring. Also
            // drop cache entries whose collector is gone (the registry
            // held the only other strong reference), so a long-lived
            // thread outliving many collectors doesn't accumulate rings.
            cache.retain(|(_, r)| Arc::strong_count(r) > 1);
            let mut rings = self.rings.lock().unwrap();
            let ring = Arc::new(Mutex::new(ThreadRing {
                tid: rings.len() as u64,
                events: VecDeque::new(),
                dropped: 0,
            }));
            rings.push(ring.clone());
            drop(rings);
            cache.push((self.gen, ring.clone()));
            ring
        })
    }

    /// A merged snapshot: every thread's buffered events (grouped by
    /// thread ordinal, oldest first within each) and the total overflow
    /// count. When `clear` is set the rings are emptied as they are read.
    fn collect(&self, clear: bool) -> (Vec<TraceEvent>, u64) {
        let rings = self.rings.lock().unwrap();
        let mut events = Vec::new();
        let mut dropped = 0;
        for ring in rings.iter() {
            let mut r = ring.lock().unwrap();
            events.extend(r.events.iter().copied());
            dropped += r.dropped;
            if clear {
                r.events.clear();
                r.dropped = 0;
            }
        }
        (events, dropped)
    }

    /// The buffered events, grouped by thread ordinal (oldest first
    /// within each thread).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.collect(false).0
    }

    /// How many events ring overflow has shed so far (all threads).
    pub fn dropped(&self) -> u64 {
        self.collect(false).1
    }

    /// Renders the buffer in Chrome trace-event **array form** — a JSON
    /// array of complete (`"ph": "X"`) events with microsecond `ts`/`dur`
    /// — loadable as-is in `chrome://tracing` or Perfetto. Thread
    /// ordinals become `tid`; `pid` is always 1; request-scoped events
    /// carry `"args": {"req": N}`. If overflow shed events, a
    /// zero-duration metadata-style marker named `xic.trace_dropped`
    /// leads the array so the loss is visible on the timeline.
    pub fn to_chrome_json(&self) -> String {
        let (events, dropped) = self.collect(false);
        render_chrome_json(&events, dropped)
    }

    /// Like [`TraceCollector::to_chrome_json`], but empties the rings
    /// (events and the dropped count) as they are rendered, so each
    /// event is exported at most once. This backs the daemon's live
    /// `GET /trace` endpoint: successive drains partition the timeline.
    pub fn drain_chrome_json(&self) -> String {
        let (events, dropped) = self.collect(true);
        render_chrome_json(&events, dropped)
    }
}

fn render_chrome_json(events: &[TraceEvent], dropped: u64) -> String {
    let mut items = Vec::with_capacity(events.len() + 1);
    if dropped > 0 {
        items.push(Json::Object(vec![
            (
                "name".into(),
                Json::String(format!("xic.trace_dropped: {dropped}")),
            ),
            ("ph".into(), Json::String("X".into())),
            ("ts".into(), Json::Number(0.0)),
            ("dur".into(), Json::Number(0.0)),
            ("pid".into(), Json::Number(1.0)),
            ("tid".into(), Json::Number(0.0)),
        ]));
    }
    for e in events {
        let mut pairs = vec![
            ("name".into(), Json::String(e.name.to_string())),
            ("ph".into(), Json::String("X".into())),
            ("ts".into(), Json::Number(e.start_nanos as f64 / 1e3)),
            ("dur".into(), Json::Number(e.dur_nanos as f64 / 1e3)),
            ("pid".into(), Json::Number(1.0)),
            ("tid".into(), Json::Number(e.tid as f64)),
        ];
        if e.req != 0 {
            pairs.push((
                "args".into(),
                Json::Object(vec![("req".into(), Json::Number(e.req as f64))]),
            ));
        }
        items.push(Json::Object(pairs));
    }
    Json::Array(items).render()
}

impl Collector for TraceCollector {
    fn record_span(&self, name: &'static str, nanos: u64) {
        // The span just closed: its start is `now − duration` relative to
        // the collector's epoch (saturating in case the span began before
        // the collector existed).
        let now = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let start_nanos = now.saturating_sub(nanos);
        let ring = self.my_ring();
        let mut r = ring.lock().unwrap();
        if r.events.len() == self.capacity {
            r.events.pop_front();
            r.dropped += 1;
        }
        let tid = r.tid;
        r.events.push_back(TraceEvent {
            name,
            tid,
            start_nanos,
            dur_nanos: nanos,
            req: current_request(),
        });
    }

    fn add(&self, _name: &'static str, _delta: u64) {}

    fn record_max(&self, _name: &'static str, _value: u64) {}
}

/// A [`Collector`] forwarding every event to several collectors — e.g. a
/// [`MetricsCollector`](crate::MetricsCollector) for aggregates *and* a
/// [`TraceCollector`] for the timeline, behind one [`Obs`](crate::Obs)
/// handle. [`Collector::metrics`] returns the first child snapshot.
pub struct Fanout {
    children: Vec<std::sync::Arc<dyn Collector>>,
}

impl Fanout {
    /// A collector forwarding to every collector in `children`.
    pub fn new(children: Vec<std::sync::Arc<dyn Collector>>) -> Self {
        Fanout { children }
    }
}

impl Collector for Fanout {
    fn record_span(&self, name: &'static str, nanos: u64) {
        for c in &self.children {
            c.record_span(name, nanos);
        }
    }

    fn add(&self, name: &'static str, delta: u64) {
        for c in &self.children {
            c.add(name, delta);
        }
    }

    fn record_max(&self, name: &'static str, value: u64) {
        for c in &self.children {
            c.record_max(name, value);
        }
    }

    fn metrics(&self) -> Option<Metrics> {
        self.children.iter().find_map(|c| c.metrics())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::{MetricsCollector, Obs};
    use std::sync::Arc;

    #[test]
    fn records_events_with_plausible_offsets() {
        let tc = Arc::new(TraceCollector::new());
        let obs = Obs::new(tc.clone());
        obs.record_span("parse", 5_000);
        std::thread::sleep(std::time::Duration::from_millis(2));
        obs.record_span("check", 1_000);
        let ev = tc.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].name, "parse");
        assert_eq!(ev[0].dur_nanos, 5_000);
        // The second span started strictly after the first (≥ 2 ms later).
        assert!(ev[1].start_nanos > ev[0].start_nanos);
        assert_eq!(tc.dropped(), 0);
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let tc = TraceCollector::with_capacity(3);
        for name in ["a", "b", "c", "d", "e"] {
            tc.record_span(name, 10);
        }
        let ev = tc.events();
        assert_eq!(ev.len(), 3);
        assert_eq!(ev[0].name, "c");
        assert_eq!(ev[2].name, "e");
        assert_eq!(tc.dropped(), 2);
        // The export flags the loss.
        assert!(tc.to_chrome_json().contains("xic.trace_dropped: 2"));
    }

    #[test]
    fn threads_get_stable_first_seen_ordinals() {
        let tc = Arc::new(TraceCollector::new());
        tc.record_span("main", 1); // this thread becomes tid 0
        std::thread::scope(|s| {
            for _ in 0..3 {
                let tc = tc.clone();
                s.spawn(move || {
                    tc.record_span("worker", 1);
                    tc.record_span("worker", 2);
                });
            }
        });
        let ev = tc.events();
        assert_eq!(ev.len(), 7);
        assert_eq!(ev[0].tid, 0);
        let mut tids: Vec<u64> = ev.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids, vec![0, 1, 2, 3]);
        // Both spans from one worker share a tid.
        for w in 1..=3 {
            assert_eq!(ev.iter().filter(|e| e.tid == w).count(), 2);
        }
    }

    /// The acceptance-criteria schema check: array form, every event has
    /// `name`/`ph:"X"`/`ts`/`dur`/`pid`/`tid` (plus a trailing `args`
    /// object only when request-scoped), and the document parses as JSON
    /// (what `chrome://tracing` / Perfetto require of an import).
    #[test]
    fn chrome_export_matches_trace_event_schema() {
        let tc = Arc::new(TraceCollector::new());
        let obs = Obs::new(tc.clone());
        {
            let _g = obs.span("check");
            obs.record_span("par.chunk", 42_000);
        }
        {
            let _scope = request_scope(9);
            obs.record_span("edit.batch", 1_000);
        }
        let out = tc.to_chrome_json();
        let doc = json::parse(&out).expect("trace export must be valid JSON");
        let events = doc.as_array("trace doc").unwrap();
        assert_eq!(events.len(), 3);
        for ev in events {
            let obj = ev.as_object("trace event").unwrap();
            let keys: Vec<&str> = obj.iter().map(|(k, _)| k.as_str()).collect();
            let name = obj[0].1.as_str("name").unwrap();
            if name == "edit.batch" {
                assert_eq!(keys, ["name", "ph", "ts", "dur", "pid", "tid", "args"]);
                let args = ev.get("args").unwrap();
                assert_eq!(args.get("req").unwrap().as_u64("req").unwrap(), 9);
            } else {
                assert_eq!(keys, ["name", "ph", "ts", "dur", "pid", "tid"]);
            }
            let get = |k: &str| ev.get(k).unwrap();
            assert_eq!(get("ph"), &json::Json::String("X".into()));
            assert!(matches!(get("ts"), json::Json::Number(n) if *n >= 0.0));
            assert!(matches!(get("dur"), json::Json::Number(n) if *n >= 0.0));
            assert_eq!(get("pid").as_u64("pid").unwrap(), 1);
            get("tid").as_u64("tid").unwrap();
        }
    }

    #[test]
    fn request_scope_tags_spans_and_restores_on_drop() {
        let tc = Arc::new(TraceCollector::new());
        let obs = Obs::new(tc.clone());
        obs.record_span("boot", 10);
        {
            let _outer = request_scope(3);
            obs.record_span("http.request", 20);
            {
                let _inner = request_scope(4);
                obs.record_span("edit.batch", 30);
            }
            // Nested scope ended: back to the outer request.
            obs.record_span("wal.append", 40);
        }
        obs.record_span("idle", 50);
        let reqs: Vec<u64> = tc.events().iter().map(|e| e.req).collect();
        assert_eq!(reqs, vec![0, 3, 4, 3, 0]);
        // Scoping is per-thread: another thread is untagged.
        let _scope = request_scope(8);
        std::thread::scope(|s| {
            s.spawn(|| assert_eq!(current_request(), 0));
        });
        assert_eq!(current_request(), 8);
    }

    #[test]
    fn drain_empties_ring_and_partitions_exports() {
        let tc = TraceCollector::with_capacity(2);
        tc.record_span("a", 1);
        tc.record_span("b", 1);
        tc.record_span("c", 1); // overflows: "a" dropped
        let first = tc.drain_chrome_json();
        assert!(first.contains("xic.trace_dropped: 1"));
        assert!(first.contains("\"b\"") && first.contains("\"c\""));
        // Drained: ring and dropped count both reset.
        assert_eq!(tc.events().len(), 0);
        assert_eq!(tc.dropped(), 0);
        tc.record_span("d", 1);
        let second = tc.drain_chrome_json();
        assert!(!second.contains("trace_dropped"));
        assert!(second.contains("\"d\"") && !second.contains("\"c\""));
    }

    #[test]
    fn fanout_feeds_metrics_and_trace_together() {
        let mc = Arc::new(MetricsCollector::new());
        let tc = Arc::new(TraceCollector::new());
        let fan = Arc::new(Fanout::new(vec![mc.clone(), tc.clone()]));
        let obs = Obs::new(fan);
        obs.record_span("edit", 1_234);
        obs.add("edits", 1);
        obs.max("stream.peak_depth", 9);
        let m = mc.snapshot();
        assert_eq!(m.span("edit").count, 1);
        assert_eq!(m.counter("edits"), 1);
        assert_eq!(tc.events().len(), 1);
        // Fanout::metrics surfaces the aggregating child's snapshot.
        assert!(obs.snapshot().is_some());
    }
}
