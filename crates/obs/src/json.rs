//! A tiny JSON codec for the [`Metrics`](crate::Metrics) wire format,
//! the Chrome trace-event export, and the daemon's structured surfaces
//! (`/status`, the access log).
//!
//! Only the subset this crate emits is supported — objects with string
//! keys, arrays, numbers, strings, and booleans — which keeps the parser
//! small and the crate dependency-free. Object order is preserved on
//! both sides so emitted documents are byte-stable.

/// A parsed JSON value (the supported subset).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// An object, in emission/parse order.
    Object(Vec<(String, Json)>),
    /// An array.
    Array(Vec<Json>),
    /// A number (all metrics values are non-negative integers that fit
    /// an `f64` exactly; `u64::MAX` sentinels survive via saturation).
    Number(f64),
    /// A string.
    String(String),
    /// A boolean (`true` / `false`).
    Bool(bool),
}

impl Json {
    /// Renders with `"key": value` pairs, two-space indentation.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, Some(0));
        out
    }

    /// Renders on a single line with no indentation — the form JSON-lines
    /// consumers (one document per line) require.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, None);
        out
    }

    /// `indent` is `None` for the compact single-line form.
    fn render_into(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                let Some(indent) = indent else {
                    out.push('{');
                    for (i, (k, v)) in pairs.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        out.push('"');
                        escape_into(k, out);
                        out.push_str("\": ");
                        v.render_into(out, None);
                    }
                    out.push('}');
                    return;
                };
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    for _ in 0..indent + 1 {
                        out.push_str("  ");
                    }
                    out.push('"');
                    escape_into(k, out);
                    out.push_str("\": ");
                    v.render_into(out, Some(indent + 1));
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                for _ in 0..indent {
                    out.push_str("  ");
                }
                out.push('}');
            }
            Json::Array(items) => {
                // Arrays render on one line: the crate only emits arrays
                // of scalars (histogram buckets) or short trace events.
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    v.render_into(out, indent);
                }
                out.push(']');
            }
            Json::Number(n) => render_number(*n, out),
            Json::String(s) => {
                out.push('"');
                escape_into(s, out);
                out.push('"');
            }
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }

    /// The object's pairs, or an error naming `what`.
    pub fn as_object(&self, what: &str) -> Result<&[(String, Json)], String> {
        match self {
            Json::Object(pairs) => Ok(pairs),
            other => Err(format!("{what}: expected an object, got {other:?}")),
        }
    }

    /// The value as a non-negative integer, or an error naming `what`.
    pub fn as_u64(&self, what: &str) -> Result<u64, String> {
        match self {
            Json::Number(n) if *n >= 0.0 => Ok(*n as u64),
            other => Err(format!(
                "{what}: expected a non-negative number, got {other:?}"
            )),
        }
    }

    /// The array's items, or an error naming `what`.
    pub fn as_array(&self, what: &str) -> Result<&[Json], String> {
        match self {
            Json::Array(items) => Ok(items),
            other => Err(format!("{what}: expected an array, got {other:?}")),
        }
    }

    /// The value as a string slice, or an error naming `what`.
    pub fn as_str(&self, what: &str) -> Result<&str, String> {
        match self {
            Json::String(s) => Ok(s),
            other => Err(format!("{what}: expected a string, got {other:?}")),
        }
    }

    /// Looks up `key` in an object; `None` when absent or not an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Renders a number the way [`Json::Number`] does: integral values below
/// 2⁵³ print without a fraction. Exposed so hot paths (the access log)
/// can emit codec-identical lines without building a [`Json`] tree.
pub(crate) fn render_number(n: f64, out: &mut String) {
    if n.fract() == 0.0 && n.abs() < 9e15 {
        let _ = std::fmt::Write::write_fmt(out, format_args!("{}", n as i64));
    } else {
        let _ = std::fmt::Write::write_fmt(out, format_args!("{n}"));
    }
}

pub(crate) fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = std::fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Parses a JSON document of the supported subset.
pub fn parse(src: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'s> {
    bytes: &'s [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b" \t\r\n".contains(b))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected {word:?} at byte {}", self.pos))
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            s.push(char::from_u32(code).ok_or("bad \\u escape")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s_rest = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s_rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || b"+-.eE".contains(&b))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_parses_nested_objects() {
        let doc = Json::Object(vec![
            ("a".into(), Json::Number(1.0)),
            (
                "b".into(),
                Json::Object(vec![("c".into(), Json::String("x\"y".into()))]),
            ),
            ("empty".into(), Json::Object(vec![])),
        ]);
        let text = doc.render();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_syntax() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("[1 2]").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn arrays_render_inline_and_round_trip() {
        let doc = Json::Array(vec![
            Json::Number(1.0),
            Json::Object(vec![("k".into(), Json::Array(vec![]))]),
            Json::String("x".into()),
        ]);
        let text = doc.render();
        assert_eq!(parse(&text).unwrap(), doc);
        assert_eq!(
            Json::Array(vec![Json::Number(1.0), Json::Number(2.0)]).render(),
            "[1, 2]"
        );
        assert_eq!(parse("[ ]").unwrap(), Json::Array(vec![]));
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Number(42.0).render(), "42");
        assert_eq!(Json::Number(1.5).render(), "1.5");
    }

    #[test]
    fn booleans_render_and_round_trip() {
        let doc = Json::Object(vec![
            ("on".into(), Json::Bool(true)),
            ("off".into(), Json::Bool(false)),
        ]);
        let text = doc.render();
        assert!(text.contains("\"on\": true"));
        assert_eq!(parse(&text).unwrap(), doc);
        assert!(parse("tru").is_err());
        assert!(parse("falsey").is_err());
    }

    #[test]
    fn compact_render_is_single_line_and_round_trips() {
        let doc = Json::Object(vec![
            ("a".into(), Json::Number(7.0)),
            (
                "b".into(),
                Json::Object(vec![("c".into(), Json::Bool(true))]),
            ),
            ("d".into(), Json::Array(vec![Json::String("x\ny".into())])),
        ]);
        let line = doc.render_compact();
        assert!(
            !line.contains('\n'),
            "compact form must be one line: {line}"
        );
        assert_eq!(line, "{\"a\": 7, \"b\": {\"c\": true}, \"d\": [\"x\\ny\"]}");
        assert_eq!(parse(&line).unwrap(), doc);
    }
}
