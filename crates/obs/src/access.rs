//! JSON-lines structured access logging for the daemon.
//!
//! One [`AccessRecord`] per served HTTP request, rendered as a single
//! compact JSON object per line through the crate's own codec
//! ([`crate::json`]) — no dependencies, parseable by anything that
//! speaks JSON. Records carry the same monotonic request id that tags
//! trace spans (see [`request_scope`](crate::request_scope)), so a slow
//! line in the log can be joined against its span tree in a `/trace`
//! drain.
//!
//! An [`AccessLog`] serializes writers behind a mutex and optionally
//! samples: with `sample = N`, every N-th request is logged (the first,
//! the N+1-th, …), which bounds log volume under load while keeping the
//! stream statistically useful.

use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::json;

/// Everything the daemon records about one served request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccessRecord {
    /// The monotonic request id (also tags this request's trace spans).
    pub req: u64,
    /// The document the route addressed, or `""` for non-doc routes.
    pub doc: String,
    /// The HTTP method.
    pub method: String,
    /// The request path.
    pub path: String,
    /// The route family the request resolved to (e.g. `http.route.edits`).
    pub route: String,
    /// The numeric response status (e.g. 200, 404).
    pub status: u16,
    /// Request body bytes.
    pub bytes_in: u64,
    /// Response body bytes.
    pub bytes_out: u64,
    /// Nanoseconds the connection waited in the accept queue before a
    /// worker picked it up (0 for follow-up requests on a keep-alive
    /// connection — the wait is paid once, on the first request).
    pub queue_wait_nanos: u64,
    /// Nanoseconds spent routing and handling the request (excluding
    /// queue wait and response write).
    pub handler_nanos: u64,
}

impl AccessRecord {
    /// Renders the record as one JSON object on a single line (no
    /// trailing newline), byte-identical to building the equivalent
    /// [`crate::json::Json`] tree and calling
    /// [`crate::json::Json::render_compact`] — but written straight into
    /// one buffer, since this runs once per served request on the
    /// daemon's hot path.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(
            160 + self.doc.len() + self.method.len() + self.path.len() + self.route.len(),
        );
        let str_field = |out: &mut String, key: &str, value: &str| {
            out.push('"');
            out.push_str(key);
            out.push_str("\": \"");
            json::escape_into(value, out);
            out.push_str("\", ");
        };
        out.push_str("{\"req\": ");
        json::render_number(self.req as f64, &mut out);
        out.push_str(", ");
        str_field(&mut out, "doc", &self.doc);
        str_field(&mut out, "method", &self.method);
        str_field(&mut out, "path", &self.path);
        str_field(&mut out, "route", &self.route);
        for (key, value) in [
            ("status", f64::from(self.status)),
            ("bytes_in", self.bytes_in as f64),
            ("bytes_out", self.bytes_out as f64),
            ("queue_wait_nanos", self.queue_wait_nanos as f64),
            ("handler_nanos", self.handler_nanos as f64),
        ] {
            out.push('"');
            out.push_str(key);
            out.push_str("\": ");
            json::render_number(value, &mut out);
            out.push_str(", ");
        }
        out.truncate(out.len() - 2);
        out.push('}');
        out
    }

    /// Parses a line produced by [`AccessRecord::to_json_line`]. Strict:
    /// every field must be present and well-typed, unknown keys are
    /// rejected — so a round-trip is exact.
    pub fn parse(line: &str) -> Result<AccessRecord, String> {
        let doc = json::parse(line)?;
        let pairs = doc.as_object("access record")?;
        let mut rec = AccessRecord {
            req: 0,
            doc: String::new(),
            method: String::new(),
            path: String::new(),
            route: String::new(),
            status: 0,
            bytes_in: 0,
            bytes_out: 0,
            queue_wait_nanos: 0,
            handler_nanos: 0,
        };
        let mut seen = Vec::new();
        for (key, value) in pairs {
            if seen.contains(key) {
                return Err(format!("access record: duplicate key {key:?}"));
            }
            seen.push(key.clone());
            match key.as_str() {
                "req" => rec.req = value.as_u64("req")?,
                "doc" => rec.doc = value.as_str("doc")?.to_string(),
                "method" => rec.method = value.as_str("method")?.to_string(),
                "path" => rec.path = value.as_str("path")?.to_string(),
                "route" => rec.route = value.as_str("route")?.to_string(),
                "status" => {
                    rec.status = u16::try_from(value.as_u64("status")?)
                        .map_err(|_| "access record: status out of range".to_string())?
                }
                "bytes_in" => rec.bytes_in = value.as_u64("bytes_in")?,
                "bytes_out" => rec.bytes_out = value.as_u64("bytes_out")?,
                "queue_wait_nanos" => rec.queue_wait_nanos = value.as_u64("queue_wait_nanos")?,
                "handler_nanos" => rec.handler_nanos = value.as_u64("handler_nanos")?,
                other => return Err(format!("access record: unknown key {other:?}")),
            }
        }
        if seen.len() != 10 {
            return Err(format!(
                "access record: expected 10 fields, got {}",
                seen.len()
            ));
        }
        Ok(rec)
    }
}

/// How long buffered lines may wait before a record forces a flush.
const FLUSH_INTERVAL: std::time::Duration = std::time::Duration::from_millis(100);

struct Sink {
    w: io::BufWriter<Box<dyn Write + Send>>,
    last_flush: std::time::Instant,
}

/// A sampled, thread-safe JSON-lines access-log writer.
pub struct AccessLog {
    /// Log every `sample`-th record (1 = every record).
    sample: u64,
    /// Records offered so far (logged or sampled away).
    offered: AtomicU64,
    sink: Mutex<Sink>,
}

impl AccessLog {
    /// A log writing to `sink`, keeping every `sample`-th record
    /// (`sample` is clamped to ≥ 1).
    pub fn new(sink: Box<dyn Write + Send>, sample: u64) -> AccessLog {
        AccessLog {
            sample: sample.max(1),
            offered: AtomicU64::new(0),
            sink: Mutex::new(Sink {
                w: io::BufWriter::with_capacity(64 * 1024, sink),
                last_flush: std::time::Instant::now(),
            }),
        }
    }

    /// Opens `path` for appending (`-` means stdout).
    pub fn open(path: &str, sample: u64) -> io::Result<AccessLog> {
        let sink: Box<dyn Write + Send> = if path == "-" {
            Box::new(io::stdout())
        } else {
            Box::new(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?,
            )
        };
        Ok(AccessLog::new(sink, sample))
    }

    /// Offers `rec` to the log; returns whether it was written (false
    /// when sampled away). Lines are buffered and flushed adaptively: a
    /// record arriving more than 100 ms after the last flush flushes
    /// immediately (so a live tail of a quiet daemon sees every line as
    /// it happens), while under load flushes are paced to ~10/s so the
    /// log costs one `write` per few hundred requests instead of one
    /// per request. [`AccessLog::flush`] drains the tail — the daemon
    /// calls it on shutdown. Write errors are swallowed: logging must
    /// never take the serving path down.
    pub fn record(&self, rec: &AccessRecord) -> bool {
        let n = self.offered.fetch_add(1, Ordering::Relaxed);
        if !n.is_multiple_of(self.sample) {
            return false;
        }
        let mut line = rec.to_json_line();
        line.push('\n');
        let mut sink = self.sink.lock().unwrap();
        let _ = sink.w.write_all(line.as_bytes());
        if sink.last_flush.elapsed() >= FLUSH_INTERVAL {
            let _ = sink.w.flush();
            sink.last_flush = std::time::Instant::now();
        }
        true
    }

    /// Flushes buffered lines to the underlying sink.
    pub fn flush(&self) {
        let mut sink = self.sink.lock().unwrap();
        let _ = sink.w.flush();
        sink.last_flush = std::time::Instant::now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn sample_record(req: u64) -> AccessRecord {
        AccessRecord {
            req,
            doc: "orders".into(),
            method: "POST".into(),
            path: "/docs/orders/edits".into(),
            route: "http.route.edits".into(),
            status: 200,
            bytes_in: 41,
            bytes_out: 128,
            queue_wait_nanos: 12_345,
            handler_nanos: 67_890,
        }
    }

    #[test]
    fn record_round_trips_through_json_line() {
        let rec = sample_record(7);
        let line = rec.to_json_line();
        assert!(!line.contains('\n'));
        assert_eq!(AccessRecord::parse(&line).unwrap(), rec);
    }

    /// The hand-rolled hot-path renderer must stay byte-identical to the
    /// codec's own compact form, including escapes.
    #[test]
    fn fast_line_matches_codec_render() {
        let mut rec = sample_record(42);
        rec.path = "/docs/we\"ird\\id\n/edits".into();
        rec.doc = "we\"ird\\id\n".into();
        let tree = json::Json::Object(vec![
            ("req".into(), json::Json::Number(rec.req as f64)),
            ("doc".into(), json::Json::String(rec.doc.clone())),
            ("method".into(), json::Json::String(rec.method.clone())),
            ("path".into(), json::Json::String(rec.path.clone())),
            ("route".into(), json::Json::String(rec.route.clone())),
            ("status".into(), json::Json::Number(f64::from(rec.status))),
            ("bytes_in".into(), json::Json::Number(rec.bytes_in as f64)),
            ("bytes_out".into(), json::Json::Number(rec.bytes_out as f64)),
            (
                "queue_wait_nanos".into(),
                json::Json::Number(rec.queue_wait_nanos as f64),
            ),
            (
                "handler_nanos".into(),
                json::Json::Number(rec.handler_nanos as f64),
            ),
        ]);
        assert_eq!(rec.to_json_line(), tree.render_compact());
    }

    /// Property-style round-trip: pseudo-random records (LCG-driven, so
    /// deterministic and dependency-free) survive render → parse exactly,
    /// including paths with quotes, backslashes, and control characters.
    #[test]
    fn randomized_records_round_trip_exactly() {
        // xorshift64* — deterministic, plenty for test-input diversity.
        struct Rng(u64);
        impl Rng {
            fn next(&mut self) -> u64 {
                self.0 ^= self.0 >> 12;
                self.0 ^= self.0 << 25;
                self.0 ^= self.0 >> 27;
                self.0 = self.0.wrapping_mul(0x2545_f491_4f6c_dd1d);
                self.0
            }
            fn string(&mut self, max_len: u64) -> String {
                const ALPHABET: [char; 16] = [
                    'a', 'b', 'z', '0', '9', '.', '_', '-', '/', '"', '\\', '\n', '\t', 'é', '√',
                    ' ',
                ];
                let len = self.next() % max_len;
                (0..len)
                    .map(|_| ALPHABET[(self.next() % ALPHABET.len() as u64) as usize])
                    .collect()
            }
        }
        let mut rng = Rng(0x9e37_79b9_7f4a_7c15);
        for _ in 0..500 {
            let rec = AccessRecord {
                req: rng.next() >> 12, // keep integers exactly representable in f64
                doc: rng.string(8),
                method: rng.string(8),
                path: rng.string(24),
                route: rng.string(16),
                status: (rng.next() % 600) as u16,
                bytes_in: rng.next() >> 12,
                bytes_out: rng.next() >> 12,
                queue_wait_nanos: rng.next() >> 12,
                handler_nanos: rng.next() >> 12,
            };
            let line = rec.to_json_line();
            assert!(!line.contains('\n'), "escaping must keep one line: {line}");
            let back = AccessRecord::parse(&line)
                .unwrap_or_else(|e| panic!("parse failed: {e}\nline: {line}"));
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn parse_rejects_malformed_records() {
        assert!(AccessRecord::parse("not json").is_err());
        assert!(AccessRecord::parse("{\"req\": 1}").is_err()); // missing fields
        let rec = sample_record(1);
        let extra = rec.to_json_line().replace("{", "{\"zzz\": 1, ");
        assert!(AccessRecord::parse(&extra).is_err()); // unknown key
        let dup = rec.to_json_line().replace("{", "{\"req\": 2, ");
        assert!(AccessRecord::parse(&dup).is_err()); // duplicate key
    }

    /// A shared Vec<u8> sink for asserting what was written.
    #[derive(Clone, Default)]
    struct Buf(Arc<Mutex<Vec<u8>>>);

    impl Write for Buf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn sampling_keeps_every_nth_record() {
        let buf = Buf::default();
        let log = AccessLog::new(Box::new(buf.clone()), 3);
        let written: Vec<bool> = (0..7).map(|i| log.record(&sample_record(i))).collect();
        assert_eq!(written, [true, false, false, true, false, false, true]);
        log.flush(); // lines are buffered between adaptive flushes
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let reqs: Vec<u64> = text
            .lines()
            .map(|l| AccessRecord::parse(l).unwrap().req)
            .collect();
        assert_eq!(reqs, vec![0, 3, 6]);
    }
}
