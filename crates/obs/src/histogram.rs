//! A fixed-size log₂-bucketed latency histogram.
//!
//! The distribution counterpart of [`SpanStat`](crate::SpanStat): where a
//! span stat remembers only *count* and *total*, a [`Histogram`] keeps
//! enough shape to answer tail questions (p50/p95/p99/max) — the numbers
//! that matter for a long-running validation service, where the E13 means
//! (1–10 µs/edit) say nothing about the p99 an interactive client sees.
//!
//! The design is HDR-in-spirit but deliberately simpler: **64 fixed
//! buckets**, one per power of two of the recorded value (nanoseconds for
//! span durations). Bucket `i` counts values `v` with `⌊log₂ v⌋ = i`
//! (bucket 0 also takes `v ∈ {0, 1}`), so any `u64` lands in exactly one
//! bucket via a single `leading_zeros` instruction — no search, no
//! allocation, no configuration. Quantiles are therefore exact only up to
//! a factor of two, which is the right resolution for "is the p99 1 µs or
//! 1 ms?" and costs 512 bytes per span family. Two histograms merge by
//! element-wise addition, so per-thread or per-run instances combine
//! losslessly ([`Histogram::merge`], used by
//! [`Metrics::merge`](crate::Metrics::merge)).

/// Number of log₂ buckets — one per bit of a `u64` value.
pub const BUCKETS: usize = 64;

/// A log₂-bucketed distribution of `u64` samples (span nanoseconds).
///
/// ```
/// use xic_obs::Histogram;
/// let mut h = Histogram::default();
/// for v in [100u64, 200, 300, 90_000] {
///     h.record(v);
/// }
/// assert_eq!(h.count, 4);
/// assert_eq!(h.max, 90_000);
/// // p50 (the 2nd smallest sample, 200) resolves to its power-of-two
/// // bucket ⌊log₂ 200⌋ = 7, whose upper bound is 255.
/// assert_eq!(h.quantile(0.5), 255);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    /// `buckets[i]` counts samples `v` with `⌊log₂ max(v, 1)⌋ = i`.
    pub buckets: [u64; BUCKETS],
    /// Total number of recorded samples.
    pub count: u64,
    /// Sum of all recorded samples (saturating).
    pub sum: u64,
    /// Largest recorded sample (exact, not bucketed).
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("max", &self.max)
            .field("p50", &self.quantile(0.5))
            .field("p99", &self.quantile(0.99))
            .finish()
    }
}

/// The bucket index of sample `v`: `⌊log₂ v⌋`, with 0 and 1 sharing
/// bucket 0.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (63 - (v | 1).leading_zeros()) as usize
}

/// The inclusive upper bound of bucket `i` (`2^(i+1) - 1`; `u64::MAX` for
/// the last bucket).
#[inline]
pub fn bucket_upper(i: usize) -> u64 {
    if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (2u64 << i) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Folds `other` into `self` (element-wise bucket addition). Merging
    /// is associative and commutative, so per-thread snapshots combine in
    /// any order.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the bucket
    /// holding the `⌈q·count⌉`-th smallest sample, capped at the exact
    /// recorded [`Histogram::max`]. Zero when empty. Accurate to within a
    /// factor of two by construction.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// The index of the highest non-empty bucket, if any sample was
    /// recorded (used to trim rendered bucket arrays).
    pub fn last_bucket(&self) -> Option<usize> {
        self.buckets.iter().rposition(|&c| c > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), 63);
        assert_eq!(bucket_upper(0), 1);
        assert_eq!(bucket_upper(9), 1023);
        assert_eq!(bucket_upper(63), u64::MAX);
    }

    #[test]
    fn record_tracks_count_sum_max() {
        let mut h = Histogram::new();
        for v in [5u64, 9, 1_000_000, 0] {
            h.record(v);
        }
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 1_000_014);
        assert_eq!(h.max, 1_000_000);
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[2], 1); // 5
        assert_eq!(h.buckets[3], 1); // 9
        assert_eq!(h.buckets[19], 1); // 1e6
        assert_eq!(h.last_bucket(), Some(19));
    }

    #[test]
    fn quantiles_hit_the_right_bucket() {
        let mut h = Histogram::new();
        // 98 fast samples (~1 µs), 2 slow (~1 ms): p50/p95 fast, p99 slow.
        for _ in 0..98 {
            h.record(1_000);
        }
        h.record(1_000_000);
        h.record(1_048_575);
        assert_eq!(h.quantile(0.5), bucket_upper(bucket_of(1_000)));
        assert_eq!(h.quantile(0.95), bucket_upper(bucket_of(1_000)));
        // The slow bucket's upper bound caps at the exact max.
        assert_eq!(h.quantile(0.99), 1_048_575);
        assert_eq!(h.quantile(1.0), 1_048_575);
        // A quantile never exceeds the recorded max even in the top bucket.
        let mut one = Histogram::new();
        one.record(3);
        assert_eq!(one.quantile(0.5), 3);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.last_bucket(), None);
    }

    #[test]
    fn merge_is_elementwise_addition() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for (i, v) in [3u64, 70, 900, 12_345, 6, 6, 1 << 40].iter().enumerate() {
            whole.record(*v);
            if i % 2 == 0 {
                a.record(*v);
            } else {
                b.record(*v);
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }
}
