//! Prometheus text exposition (format 0.0.4) for [`Metrics`] — what
//! `xic serve` answers at `GET /metrics`.
//!
//! The mapping keeps every surface of a snapshot scrapeable:
//!
//! | metrics field | Prometheus series |
//! |---------------|-------------------|
//! | counter `nodes` | `xic_nodes_total` (counter) |
//! | maximum `stream.peak_depth` | `xic_stream_peak_depth` (gauge) |
//! | span `check` | `xic_span_seconds` summary: `_sum{span="check"}` / `_count{span="check"}` |
//! | histogram `edit` | `xic_edit_seconds` histogram: cumulative `_bucket{le="…"}` / `_sum` / `_count` |
//! | `wall_nanos` | `xic_wall_seconds` (gauge) |
//!
//! Dotted names are sanitized to underscores; durations are exposed in
//! seconds (Prometheus base unit). Histogram `le` bounds are the log₂
//! bucket upper bounds in seconds, trimmed after the last non-empty
//! bucket with the mandatory `+Inf` bucket closing each series.

use std::fmt::Write;

use crate::histogram::bucket_upper;
use crate::Metrics;

/// `stream.peak_depth` → `stream_peak_depth` (metric-name-safe).
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Splits the labeled-key convention `base#label=value` (see
/// [`Metrics::with_label`]) into the base name and the rendered label
/// pair, if any. A key without `#` has no label.
fn split_label(name: &str) -> (&str, Option<String>) {
    let Some((base, rest)) = name.split_once('#') else {
        return (name, None);
    };
    let Some((label, value)) = rest.split_once('=') else {
        return (name, None);
    };
    let escaped: String = value
        .chars()
        .flat_map(|c| match c {
            '\\' => vec!['\\', '\\'],
            '"' => vec!['\\', '"'],
            '\n' => vec!['\\', 'n'],
            c => vec![c],
        })
        .collect();
    (base, Some(format!("{}=\"{escaped}\"", sanitize(label))))
}

/// Emits a `# TYPE` header unless one was already written for the same
/// metric name (labeled variants of one base share a single header).
fn type_header(out: &mut String, last: &mut Option<String>, metric: &str, kind: &str) {
    if last.as_deref() != Some(metric) {
        let _ = writeln!(out, "# TYPE {metric} {kind}");
        *last = Some(metric.to_string());
    }
}

/// Nanoseconds as seconds, in plain decimal (Rust's `f64` `Display`
/// never produces scientific notation, which the exposition format does
/// not guarantee every parser accepts).
fn secs(nanos: u64) -> String {
    format!("{}", nanos as f64 / 1e9)
}

impl Metrics {
    /// Renders the snapshot in Prometheus text exposition format
    /// (version 0.0.4): every series preceded by `# TYPE`, terminated
    /// with a trailing newline.
    ///
    /// ```
    /// use xic_obs::Metrics;
    /// let mut m = Metrics::default();
    /// m.counters.insert("nodes".into(), 7);
    /// let text = m.to_prometheus();
    /// assert!(text.contains("# TYPE xic_nodes_total counter"));
    /// assert!(text.contains("xic_nodes_total 7"));
    /// ```
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# TYPE xic_wall_seconds gauge");
        let _ = writeln!(out, "xic_wall_seconds {}", secs(self.wall_nanos));
        let mut last = None;
        for (name, &v) in &self.counters {
            let (base, label) = split_label(name);
            let n = sanitize(base);
            type_header(&mut out, &mut last, &format!("xic_{n}_total"), "counter");
            let lb = label.map(|l| format!("{{{l}}}")).unwrap_or_default();
            let _ = writeln!(out, "xic_{n}_total{lb} {v}");
        }
        let mut last = None;
        for (name, &v) in &self.maxima {
            let (base, label) = split_label(name);
            let n = sanitize(base);
            type_header(&mut out, &mut last, &format!("xic_{n}"), "gauge");
            let lb = label.map(|l| format!("{{{l}}}")).unwrap_or_default();
            let _ = writeln!(out, "xic_{n}{lb} {v}");
        }
        if !self.spans.is_empty() {
            let _ = writeln!(out, "# TYPE xic_span_seconds summary");
            for (name, s) in &self.spans {
                let (base, label) = split_label(name);
                let lb = label.map(|l| format!(",{l}")).unwrap_or_default();
                let _ = writeln!(
                    out,
                    "xic_span_seconds_sum{{span=\"{base}\"{lb}}} {}",
                    secs(s.nanos)
                );
                let _ = writeln!(
                    out,
                    "xic_span_seconds_count{{span=\"{base}\"{lb}}} {}",
                    s.count
                );
            }
        }
        let mut last = None;
        for (name, h) in &self.hists {
            let (base, label) = split_label(name);
            let n = sanitize(base);
            type_header(
                &mut out,
                &mut last,
                &format!("xic_{n}_seconds"),
                "histogram",
            );
            // A labeled histogram keeps its label ahead of `le`, so one
            // series per (doc, bucket): `_bucket{doc="a",le="…"}`.
            let lb = label.clone().map(|l| format!("{l},")).unwrap_or_default();
            let solo = label.map(|l| format!("{{{l}}}")).unwrap_or_default();
            let mut cum = 0u64;
            if let Some(last) = h.last_bucket() {
                for (i, &c) in h.buckets[..=last].iter().enumerate() {
                    cum += c;
                    let _ = writeln!(
                        out,
                        "xic_{n}_seconds_bucket{{{lb}le=\"{}\"}} {cum}",
                        secs(bucket_upper(i).min(1 << 62))
                    );
                }
            }
            let _ = writeln!(out, "xic_{n}_seconds_bucket{{{lb}le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "xic_{n}_seconds_sum{solo} {}", secs(h.sum));
            let _ = writeln!(out, "xic_{n}_seconds_count{solo} {}", h.count);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Histogram, SpanStat};

    fn sample() -> Metrics {
        let mut m = Metrics {
            wall_nanos: 2_000_000_000,
            ..Metrics::default()
        };
        m.counters.insert("nodes".into(), 10_001);
        m.counters.insert("edits".into(), 3);
        m.maxima.insert("stream.peak_depth".into(), 17);
        m.spans.insert(
            "check.key".into(),
            SpanStat {
                count: 4,
                nanos: 1_500_000,
            },
        );
        let mut h = Histogram::default();
        h.record(900);
        h.record(1_100);
        h.record(250_000);
        m.hists.insert("edit".into(), h);
        m
    }

    #[test]
    fn every_series_has_a_type_header() {
        let text = sample().to_prometheus();
        for ty in [
            "# TYPE xic_wall_seconds gauge",
            "# TYPE xic_nodes_total counter",
            "# TYPE xic_edits_total counter",
            "# TYPE xic_stream_peak_depth gauge",
            "# TYPE xic_span_seconds summary",
            "# TYPE xic_edit_seconds histogram",
        ] {
            assert!(text.contains(ty), "missing {ty:?} in:\n{text}");
        }
        assert!(text.ends_with('\n'));
        // Dots never leak into metric names (labels may keep them).
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let name = line.split(['{', ' ']).next().unwrap();
            assert!(!name.contains('.'), "unsanitized name in {line:?}");
        }
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_closed_by_inf() {
        let text = sample().to_prometheus();
        let buckets: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("xic_edit_seconds_bucket"))
            .collect();
        assert!(buckets.len() >= 2);
        let counts: Vec<u64> = buckets
            .iter()
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
        assert_eq!(*counts.last().unwrap(), 3);
        assert!(buckets.last().unwrap().contains("le=\"+Inf\""));
        assert!(text.contains("xic_edit_seconds_count 3"));
        // 900 and 1100 land in the first emitted buckets; the le bound of
        // the bucket holding 900 ns is 2^10−1 ns ≈ 1.023e-6 s, printed in
        // plain decimal.
        assert!(text.contains("le=\"0.000001023\""), "{text}");
    }

    #[test]
    fn span_summary_series_carry_labels() {
        let text = sample().to_prometheus();
        assert!(text.contains("xic_span_seconds_sum{span=\"check.key\"} 0.0015"));
        assert!(text.contains("xic_span_seconds_count{span=\"check.key\"} 4"));
    }

    #[test]
    fn labeled_keys_render_as_prometheus_labels() {
        let mut per_doc = Metrics::default();
        per_doc.counters.insert("edits".into(), 5);
        per_doc.spans.insert(
            "parse".into(),
            SpanStat {
                count: 1,
                nanos: 2_000_000,
            },
        );
        let mut h = Histogram::default();
        h.record(1_000);
        per_doc.hists.insert("edit.batch".into(), h);
        let mut m = per_doc.with_label("doc", "a");
        m.merge(&per_doc.with_label("doc", "b\"x"));
        let text = m.to_prometheus();
        assert!(text.contains("xic_edits_total{doc=\"a\"} 5"), "{text}");
        assert!(text.contains("xic_edits_total{doc=\"b\\\"x\"} 5"), "{text}");
        assert!(
            text.contains("xic_span_seconds_count{span=\"parse\",doc=\"a\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("xic_edit_batch_seconds_bucket{doc=\"a\",le=\"+Inf\"} 1"),
            "{text}"
        );
        assert!(text.contains("xic_edit_batch_seconds_count{doc=\"a\"} 1"));
        // One TYPE header per metric name, however many labeled series.
        assert_eq!(
            text.matches("# TYPE xic_edits_total counter").count(),
            1,
            "{text}"
        );
        assert_eq!(
            text.matches("# TYPE xic_edit_batch_seconds histogram")
                .count(),
            1,
            "{text}"
        );
    }

    #[test]
    fn values_render_in_plain_decimal() {
        let m = Metrics {
            wall_nanos: 1, // 1e-9 s — must not print as "1e-9"
            ..Metrics::default()
        };
        let text = m.to_prometheus();
        assert!(text.contains("xic_wall_seconds 0.000000001"), "{text}");
        // No value token in scientific notation.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let value = line.rsplit(' ').next().unwrap();
            assert!(!value.contains(['e', 'E']), "scientific notation: {line}");
        }
    }
}
