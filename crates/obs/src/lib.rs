//! # xic-obs — observability for the xic validation stack
//!
//! A lightweight span/counter layer threaded through the whole pipeline
//! (`xic-xml` → `xic-validate` → `xic-implication` → the CLI) so a run is
//! no longer a black box: where did the time go (parse? column
//! extraction? which constraint kind?), how much work was done (nodes,
//! attributes, entity expansions, chase steps), and how busy were the
//! parallel stages (per-chunk timings, stream-pipeline occupancy, peak
//! in-flight frames)?
//!
//! The design constraints, in order:
//!
//! 1. **Zero cost when disabled.** Instrumented code holds an [`Obs`]
//!    handle — a pointer-sized `Option`. While it is [`Obs::off`] (the
//!    default everywhere), every instrumentation point is one untaken
//!    branch: no clock is read, no atomic touched, nothing allocated.
//!    E14 (see `EXPERIMENTS.md`) keeps the disabled-handle overhead of
//!    the full validation pipeline within measurement noise (&lt; 2 %).
//! 2. **No dependencies.** Timing is [`std::time::Instant`], aggregation
//!    is a mutex around two B-tree maps, counters flush in batches. No
//!    `tracing`, no `serde`; the JSON codec for [`Metrics`] is ~100 lines
//!    in this crate.
//! 3. **Off the hot path even when enabled.** Instrumentation points sit
//!    at *phase*, *constraint*, *chunk* and *edit* granularity — never
//!    per node or per event. Per-item totals (nodes, attributes, XML
//!    events) are accumulated in plain local fields by the code that
//!    already owns a loop over them and recorded once at the end.
//!
//! ## Using it
//!
//! Everything starts from a [`Collector`] — usually a
//! [`MetricsCollector`] — wrapped in an [`Obs`] handle and handed to the
//! component under observation:
//!
//! ```
//! use xic_obs::{MetricsCollector, Obs};
//!
//! let collector = MetricsCollector::shared();
//! let obs = Obs::new(collector.clone());
//!
//! {
//!     let _guard = obs.span("check"); // records on drop
//!     obs.add("nodes", 10_001);
//! }
//!
//! let m = collector.snapshot();
//! assert_eq!(m.counter("nodes"), 10_001);
//! assert_eq!(m.span("check").count, 1);
//! assert!(m.wall_nanos >= m.span("check").nanos);
//! ```
//!
//! The resulting [`Metrics`] snapshot serializes to a stable, key-ordered
//! JSON document ([`Metrics::to_json`] / [`Metrics::parse_json`]) and a
//! human-readable table ([`Metrics::to_text`]); the `xic` CLI surfaces
//! both through `--metrics text|json`.
//!
//! ## Span taxonomy
//!
//! Span and counter names are dotted, lower-case, and stable — they are
//! part of the CLI's JSON output. The validation stack uses:
//!
//! | name | kind | meaning |
//! |------|------|---------|
//! | `parse` | span | producing the document: tree parse, or the fused streaming pass |
//! | `structure` | span | Definition 2.4 clauses 1–3 (streaming: the deferred node-order sort) |
//! | `plan` | span | extent/column extraction (`DocIndex` build) |
//! | `check` | span | constraint checking over the planned columns |
//! | `check.key` … `check.inverse_id` | span | per-constraint-kind share of `check` |
//! | `merge` | span | concatenating per-constraint violation lists in Σ order |
//! | `par.constraint`, `par.chunk` | span | one parallel task at each fan-out grain |
//! | `stream.apply`, `stream.recv_wait` | span | pipeline occupancy: consumer work vs. waiting on the lexer thread |
//! | `edit`, `edit.set_attr`, … | span | one `LiveValidator` edit (total and per kind) |
//! | `implication.query`, `chase` | span | one implication query / chase run |
//! | `nodes`, `attrs`, `violations` | counter | document totals per run |
//! | `xml.events`, `xml.entity_expansions` | counter | lexer/parser totals |
//! | `stream.batches`, `par.tasks`, `edits` | counter | work items per run |
//! | `violations.raised`, `violations.cleared` | counter | `ReportDiff` totals across edits |
//! | `implication.rules`, `chase.steps` | counter | proof-rule applications / chase firings |
//! | `stream.peak_depth` | maximum | peak in-flight element frames (streaming) |
//! | `alloc.count` | counter | heap acquisitions process-wide (binaries installing the [`alloc`] hooks) |
//! | `alloc.peak` | maximum | peak live heap bytes process-wide (same condition) |
//!
//! ## Tracing
//!
//! Setting the `XIC_TRACE` environment variable makes the CLI's collector
//! echo every matching span to stderr as it closes (`XIC_TRACE=1` for
//! everything, or a comma-separated list of name prefixes such as
//! `XIC_TRACE=check,edit`). Each line carries the originating thread's
//! first-seen ordinal and the span's start offset from collector
//! creation — `[xic-trace] t2 +14.103ms par.chunk 3.220ms` — so
//! interleaved parallel spans stay attributable. See [`TraceFilter`].
//!
//! ## Distributions, timelines, scraping
//!
//! Beyond span *sums*, three surfaces answer tail and timeline questions:
//!
//! - **Histograms** ([`Histogram`]): span families opted in via
//!   [`MetricsCollector::with_histograms`] record log₂-bucketed latency
//!   distributions, surfaced as p50/p95/p99/max in [`Metrics`], its JSON
//!   and text renderings, and the CLI's `--metrics`.
//! - **Timelines** ([`TraceCollector`]): a bounded ring of raw span
//!   events (name, thread, start, duration) exporting Chrome
//!   trace-event JSON for `chrome://tracing` / Perfetto (`--trace-out`).
//!   Combine with a [`MetricsCollector`] under a [`Fanout`].
//! - **Scraping** ([`Metrics::to_prometheus`]): Prometheus text
//!   exposition of counters, maxima, span sums and histogram buckets,
//!   served live by `xic serve` at `GET /metrics`.
//! - **Request scoping** ([`request_scope`] / [`current_request`]): a
//!   thread-local request id tags every span a [`TraceCollector`]
//!   records while the scope is held, so one request's span tree (queue
//!   wait → route → shard dispatch → `edit.batch` → `wal.append`) can
//!   be stitched back together from the shared ring — drained live by
//!   `xic serve` at `GET /trace`.
//! - **Access logs** ([`AccessLog`] / [`AccessRecord`]): one compact
//!   JSON line per served request (id, doc, route, status, bytes,
//!   queue-wait and handler latency), sampled N:1 under load
//!   (`xic serve --access-log`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access;
pub mod alloc;
mod histogram;
pub mod json;
mod metrics;
mod prom;
mod trace;

pub use access::{AccessLog, AccessRecord};
pub use histogram::{bucket_of, bucket_upper, Histogram, BUCKETS};
pub use metrics::{Metrics, SpanStat};
pub use trace::{
    current_request, request_scope, Fanout, RequestScope, TraceCollector, TraceEvent,
    DEFAULT_TRACE_CAPACITY,
};

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;
use std::time::Instant;

/// A sink for observability events.
///
/// Implementations must be cheap and thread-safe: spans and counters are
/// reported from parallel validation workers. The provided
/// [`Collector::metrics`] hook lets aggregating collectors surface a
/// [`Metrics`] snapshot through code that only holds the trait object
/// (e.g. to embed metrics in a validation `Report`).
pub trait Collector: Send + Sync {
    /// A span named `name` completed, having taken `nanos` nanoseconds.
    fn record_span(&self, name: &'static str, nanos: u64);

    /// Adds `delta` to the counter named `name`.
    fn add(&self, name: &'static str, delta: u64);

    /// Raises the maximum named `name` to at least `value`.
    fn record_max(&self, name: &'static str, value: u64);

    /// A snapshot of everything recorded so far, if this collector
    /// aggregates (the default implementation returns `None`).
    fn metrics(&self) -> Option<Metrics> {
        None
    }
}

/// The handle instrumented code holds: either off (the default — every
/// operation is one untaken branch) or a shared reference to a
/// [`Collector`].
///
/// `Obs` is deliberately owned and cloneable rather than borrowed, so
/// long-lived components (validators, solvers, live documents) can store
/// it without growing lifetime parameters.
#[derive(Clone, Default)]
pub struct Obs {
    collector: Option<Arc<dyn Collector>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Obs {
    /// A handle forwarding to `collector`.
    pub fn new(collector: Arc<dyn Collector>) -> Self {
        Obs {
            collector: Some(collector),
        }
    }

    /// The disabled handle (what `Default` also produces).
    pub fn off() -> Self {
        Obs::default()
    }

    /// Whether a collector is attached.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.collector.is_some()
    }

    /// Starts a span; the returned guard records the elapsed time into
    /// `name` when dropped. When disabled, no clock is read.
    #[inline]
    pub fn span(&self, name: &'static str) -> Span<'_> {
        Span {
            active: self.collector.as_deref().map(|c| (c, name, Instant::now())),
        }
    }

    /// Adds `delta` to the counter `name` (no-op when disabled).
    #[inline]
    pub fn add(&self, name: &'static str, delta: u64) {
        if let Some(c) = self.collector.as_deref() {
            c.add(name, delta);
        }
    }

    /// Raises the maximum `name` to at least `value` (no-op when
    /// disabled).
    #[inline]
    pub fn max(&self, name: &'static str, value: u64) {
        if let Some(c) = self.collector.as_deref() {
            c.record_max(name, value);
        }
    }

    /// Records an already-measured span duration (for callers that time
    /// a region themselves, e.g. across a thread boundary).
    #[inline]
    pub fn record_span(&self, name: &'static str, nanos: u64) {
        if let Some(c) = self.collector.as_deref() {
            c.record_span(name, nanos);
        }
    }

    /// A [`Metrics`] snapshot from the attached collector, if it
    /// aggregates one (see [`Collector::metrics`]).
    pub fn snapshot(&self) -> Option<Metrics> {
        self.collector.as_deref().and_then(Collector::metrics)
    }
}

/// An in-flight span (see [`Obs::span`]); records on drop.
///
/// Dropping the guard of a disabled handle does nothing — not even a
/// clock read happened when it was created.
#[must_use = "a span records when the guard is dropped"]
pub struct Span<'a> {
    active: Option<(&'a dyn Collector, &'static str, Instant)>,
}

impl Span<'_> {
    /// Ends the span now (equivalent to dropping it).
    pub fn end(self) {}
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some((c, name, start)) = self.active.take() {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            c.record_span(name, nanos);
        }
    }
}

/// Which span names the collector echoes to stderr as they close.
///
/// Built from the `XIC_TRACE` environment variable by
/// [`TraceFilter::from_env`]: `1`, `all` or `*` match every span; any
/// other value is a comma-separated list of name prefixes (`check` also
/// matches `check.key`).
#[derive(Clone, Debug)]
pub struct TraceFilter {
    /// `None` ⇒ match everything; otherwise the accepted name prefixes.
    prefixes: Option<Vec<String>>,
}

impl TraceFilter {
    /// A filter matching every span.
    pub fn all() -> Self {
        TraceFilter { prefixes: None }
    }

    /// A filter matching spans whose name starts with any of `prefixes`.
    pub fn prefixes<I: IntoIterator<Item = S>, S: Into<String>>(prefixes: I) -> Self {
        TraceFilter {
            prefixes: Some(prefixes.into_iter().map(Into::into).collect()),
        }
    }

    /// The filter requested by the `XIC_TRACE` environment variable, or
    /// `None` when the variable is unset or empty.
    pub fn from_env() -> Option<Self> {
        let v = std::env::var("XIC_TRACE").ok()?;
        Self::parse(&v)
    }

    /// Parses an `XIC_TRACE` value (see the type docs). Empty ⇒ `None`.
    pub fn parse(value: &str) -> Option<Self> {
        let v = value.trim();
        if v.is_empty() {
            return None;
        }
        if v == "1" || v == "all" || v == "*" {
            return Some(TraceFilter::all());
        }
        Some(TraceFilter::prefixes(
            v.split(',').map(str::trim).filter(|p| !p.is_empty()),
        ))
    }

    /// Whether `name` passes the filter.
    pub fn matches(&self, name: &str) -> bool {
        match &self.prefixes {
            None => true,
            Some(ps) => ps.iter().any(|p| name.starts_with(p.as_str())),
        }
    }
}

/// The standard aggregating [`Collector`]: span totals, counters and
/// maxima behind one mutex. Spans and counters arrive at phase,
/// constraint, chunk and edit granularity (a few hundred events per run),
/// so a mutex around two B-tree maps is plenty fast and keeps the crate
/// dependency-free.
///
/// Optionally echoes matching spans to stderr as they close (see
/// [`TraceFilter`]); `wall_nanos` in the snapshot is the time since
/// construction.
pub struct MetricsCollector {
    start: Instant,
    trace: Option<TraceFilter>,
    /// Span families recording full latency histograms (empty ⇒ none).
    hist_families: Vec<String>,
    /// First-seen thread ordinals for `XIC_TRACE` stderr lines (touched
    /// only on the traced path).
    tids: Mutex<HashMap<ThreadId, u64>>,
    inner: Mutex<metrics::Inner>,
}

impl Default for MetricsCollector {
    fn default() -> Self {
        MetricsCollector::new()
    }
}

/// The span families that record latency histograms by default (see
/// [`MetricsCollector::with_histograms`]): per-edit latency, parallel
/// chunk tasks, constraint checks, stream-pipeline stalls, and the
/// durability path (`wal.append`, `snapshot.write`, `recover.replay`) —
/// the distributions operators alert on. Families with no samples cost
/// nothing and emit no series.
pub const DEFAULT_HIST_FAMILIES: [&str; 7] = [
    "edit",
    "par.chunk",
    "check",
    "stream.recv_wait",
    "wal",
    "snapshot",
    "recover",
];

/// Whether span `name` belongs to `family`: equal, or `family` followed
/// by a dotted suffix (`check` matches `check.key`, not `checkpoint`).
fn family_matches(family: &str, name: &str) -> bool {
    name == family
        || (name.len() > family.len()
            && name.starts_with(family)
            && name.as_bytes()[family.len()] == b'.')
}

impl MetricsCollector {
    /// An empty collector; the snapshot's wall clock starts now.
    pub fn new() -> Self {
        MetricsCollector {
            start: Instant::now(),
            trace: None,
            hist_families: Vec::new(),
            tids: Mutex::new(HashMap::new()),
            inner: Mutex::new(metrics::Inner::default()),
        }
    }

    /// An empty collector that also echoes spans matching `filter` to
    /// stderr as they close.
    pub fn with_trace(filter: TraceFilter) -> Self {
        MetricsCollector {
            trace: Some(filter),
            ..MetricsCollector::new()
        }
    }

    /// An empty collector recording latency histograms for the
    /// [`DEFAULT_HIST_FAMILIES`].
    pub fn with_histograms() -> Self {
        let mut c = MetricsCollector::new();
        c.enable_default_histograms();
        c
    }

    /// Enables histogram recording for the [`DEFAULT_HIST_FAMILIES`].
    pub fn enable_default_histograms(&mut self) {
        self.set_histogram_families(DEFAULT_HIST_FAMILIES);
    }

    /// Enables histogram recording for exactly `families` (a family
    /// matches its own name plus any dotted suffix).
    pub fn set_histogram_families<I: IntoIterator<Item = S>, S: Into<String>>(
        &mut self,
        families: I,
    ) {
        self.hist_families = families.into_iter().map(Into::into).collect();
    }

    /// A collector honouring the `XIC_TRACE` environment variable,
    /// ready to share (`Arc`-wrapped for [`Obs::new`]).
    pub fn shared() -> Arc<Self> {
        Arc::new(match TraceFilter::from_env() {
            Some(f) => MetricsCollector::with_trace(f),
            None => MetricsCollector::new(),
        })
    }

    /// [`MetricsCollector::shared`] plus histogram recording for the
    /// [`DEFAULT_HIST_FAMILIES`] (what `xic serve` and
    /// `--metrics` with histograms use).
    pub fn shared_with_histograms() -> Arc<Self> {
        let mut c = match TraceFilter::from_env() {
            Some(f) => MetricsCollector::with_trace(f),
            None => MetricsCollector::new(),
        };
        c.enable_default_histograms();
        Arc::new(c)
    }

    /// Everything recorded so far, with `wall_nanos` the time since this
    /// collector was created.
    pub fn snapshot(&self) -> Metrics {
        let wall = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.inner.lock().unwrap().snapshot(wall)
    }
}

impl Collector for MetricsCollector {
    fn record_span(&self, name: &'static str, nanos: u64) {
        if let Some(t) = &self.trace {
            if t.matches(name) {
                // Attribute the span: first-seen thread ordinal plus its
                // start offset (now − duration) from collector creation,
                // so interleaved parallel spans read unambiguously.
                let now = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                let start = now.saturating_sub(nanos);
                let tid = {
                    let mut tids = self.tids.lock().unwrap();
                    let next = tids.len() as u64;
                    *tids.entry(std::thread::current().id()).or_insert(next)
                };
                eprintln!(
                    "[xic-trace] t{tid} +{:.3}ms {name} {:.3}ms",
                    start as f64 / 1e6,
                    nanos as f64 / 1e6
                );
            }
        }
        let record_hist = self.hist_families.iter().any(|f| family_matches(f, name));
        let mut inner = self.inner.lock().unwrap();
        inner.record_span(name, nanos);
        if record_hist {
            inner.record_hist(name, nanos);
        }
    }

    fn add(&self, name: &'static str, delta: u64) {
        self.inner.lock().unwrap().add(name, delta);
    }

    fn record_max(&self, name: &'static str, value: u64) {
        self.inner.lock().unwrap().record_max(name, value);
    }

    fn metrics(&self) -> Option<Metrics> {
        Some(self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing_and_is_cheap() {
        let obs = Obs::off();
        assert!(!obs.enabled());
        let g = obs.span("parse");
        obs.add("nodes", 5);
        obs.max("depth", 9);
        drop(g);
        assert!(obs.snapshot().is_none());
    }

    #[test]
    fn spans_counters_and_maxima_aggregate() {
        let c = MetricsCollector::shared();
        let obs = Obs::new(c.clone());
        for _ in 0..3 {
            let _g = obs.span("check");
        }
        obs.record_span("check", 1_000);
        obs.add("nodes", 7);
        obs.add("nodes", 4);
        obs.max("depth", 3);
        obs.max("depth", 9);
        obs.max("depth", 5);
        let m = c.snapshot();
        assert_eq!(m.span("check").count, 4);
        assert!(m.span("check").nanos >= 1_000);
        assert_eq!(m.counter("nodes"), 11);
        assert_eq!(m.counter("depth"), 9);
        assert!(m.wall_nanos > 0);
        assert!(obs.snapshot().is_some());
    }

    #[test]
    fn histogram_families_record_distributions() {
        let c = Arc::new(MetricsCollector::with_histograms());
        let obs = Obs::new(c.clone());
        obs.record_span("edit", 800);
        obs.record_span("edit", 1_200);
        obs.record_span("edit.set_attr", 500); // dotted suffix of a family
        obs.record_span("check.key", 2_000);
        obs.record_span("parse", 9_999); // not a histogram family
        let m = c.snapshot();
        assert_eq!(m.hist("edit").unwrap().count, 2);
        assert_eq!(m.hist("edit").unwrap().max, 1_200);
        assert_eq!(m.hist("edit.set_attr").unwrap().count, 1);
        assert_eq!(m.hist("check.key").unwrap().count, 1);
        assert!(m.hist("parse").is_none());
        // Span sums are unaffected by histogram capture.
        assert_eq!(m.span("parse").nanos, 9_999);
        assert_eq!(m.span("edit").count, 2);
        // Off by default.
        let plain = MetricsCollector::new();
        plain.record_span("edit", 1);
        assert!(plain.snapshot().hist("edit").is_none());
    }

    #[test]
    fn family_matching_requires_dot_boundary() {
        assert!(family_matches("check", "check"));
        assert!(family_matches("check", "check.key"));
        assert!(!family_matches("check", "checkpoint"));
        assert!(!family_matches("check", "chec"));
        assert!(family_matches("par.chunk", "par.chunk"));
        assert!(!family_matches("par.chunk", "par.constraint"));
    }

    #[test]
    fn trace_filter_parsing() {
        assert!(TraceFilter::parse("").is_none());
        assert!(TraceFilter::parse("  ").is_none());
        for all in ["1", "all", "*"] {
            let f = TraceFilter::parse(all).unwrap();
            assert!(f.matches("anything"));
        }
        let f = TraceFilter::parse("check, edit").unwrap();
        assert!(f.matches("check"));
        assert!(f.matches("check.key"));
        assert!(f.matches("edit.set_attr"));
        assert!(!f.matches("parse"));
    }

    #[test]
    fn collector_is_shareable_across_threads() {
        let c = MetricsCollector::shared();
        let obs = Obs::new(c.clone());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let obs = obs.clone();
                s.spawn(move || {
                    let _g = obs.span("par.task");
                    obs.add("par.tasks", 1);
                });
            }
        });
        let m = c.snapshot();
        assert_eq!(m.span("par.task").count, 4);
        assert_eq!(m.counter("par.tasks"), 4);
    }
}
