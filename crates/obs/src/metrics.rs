//! The [`Metrics`] snapshot: what a [`MetricsCollector`] aggregated.
//!
//! [`MetricsCollector`]: crate::MetricsCollector

use std::collections::BTreeMap;
use std::fmt;

use crate::json::{self, Json};

/// Aggregate of one span name: how often it closed and the total time
/// spent inside it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of completed spans with this name.
    pub count: u64,
    /// Total nanoseconds across those spans.
    pub nanos: u64,
}

/// A point-in-time snapshot of everything a collector recorded.
///
/// Both maps are B-trees so iteration — and hence [`Metrics::to_json`] /
/// [`Metrics::to_text`] output — is deterministically key-ordered;
/// serializing the same snapshot twice yields identical bytes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Nanoseconds from collector creation to this snapshot.
    pub wall_nanos: u64,
    /// Per span name: completion count and total time.
    pub spans: BTreeMap<String, SpanStat>,
    /// Per counter name: accumulated total (maxima are folded in here as
    /// their final value).
    pub counters: BTreeMap<String, u64>,
}

/// Mutable aggregation state behind the collector's mutex.
#[derive(Default)]
pub(crate) struct Inner {
    spans: BTreeMap<&'static str, SpanStat>,
    counters: BTreeMap<&'static str, u64>,
    maxima: BTreeMap<&'static str, u64>,
}

impl Inner {
    pub(crate) fn record_span(&mut self, name: &'static str, nanos: u64) {
        let s = self.spans.entry(name).or_default();
        s.count += 1;
        s.nanos = s.nanos.saturating_add(nanos);
    }

    pub(crate) fn add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_default() += delta;
    }

    pub(crate) fn record_max(&mut self, name: &'static str, value: u64) {
        let slot = self.maxima.entry(name).or_default();
        *slot = (*slot).max(value);
    }

    pub(crate) fn snapshot(&self, wall_nanos: u64) -> Metrics {
        let mut counters: BTreeMap<String, u64> = self
            .counters
            .iter()
            .map(|(&k, &v)| (k.to_string(), v))
            .collect();
        for (&k, &v) in &self.maxima {
            counters.insert(k.to_string(), v);
        }
        Metrics {
            wall_nanos,
            spans: self
                .spans
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            counters,
        }
    }
}

impl Metrics {
    /// The stat of span `name` (zero if never recorded).
    pub fn span(&self, name: &str) -> SpanStat {
        self.spans.get(name).copied().unwrap_or_default()
    }

    /// The value of counter `name` (zero if never recorded).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Serializes to a stable JSON document: keys appear in B-tree
    /// (lexicographic) order, so equal snapshots produce identical bytes.
    ///
    /// ```
    /// use xic_obs::Metrics;
    /// let mut m = Metrics::default();
    /// m.wall_nanos = 42;
    /// m.counters.insert("nodes".into(), 7);
    /// let j = m.to_json();
    /// assert_eq!(Metrics::parse_json(&j).unwrap(), m);
    /// ```
    pub fn to_json(&self) -> String {
        let mut spans = Vec::new();
        for (name, s) in &self.spans {
            spans.push((
                name.clone(),
                Json::Object(vec![
                    ("count".into(), Json::Number(s.count as f64)),
                    ("nanos".into(), Json::Number(s.nanos as f64)),
                ]),
            ));
        }
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), Json::Number(v as f64)))
            .collect();
        let doc = Json::Object(vec![
            ("wall_nanos".into(), Json::Number(self.wall_nanos as f64)),
            ("spans".into(), Json::Object(spans)),
            ("counters".into(), Json::Object(counters)),
        ]);
        doc.render()
    }

    /// Parses a document produced by [`Metrics::to_json`]. Unknown keys
    /// are rejected; this is a codec for this crate's own output, not a
    /// general JSON reader.
    pub fn parse_json(src: &str) -> Result<Metrics, String> {
        let doc = json::parse(src)?;
        let top = doc.as_object("top level")?;
        let mut m = Metrics::default();
        for (k, v) in top {
            match k.as_str() {
                "wall_nanos" => m.wall_nanos = v.as_u64("wall_nanos")?,
                "spans" => {
                    for (name, stat) in v.as_object("spans")? {
                        let mut s = SpanStat::default();
                        for (sk, sv) in stat.as_object("span stat")? {
                            match sk.as_str() {
                                "count" => s.count = sv.as_u64("count")?,
                                "nanos" => s.nanos = sv.as_u64("nanos")?,
                                other => return Err(format!("unknown span key {other:?}")),
                            }
                        }
                        m.spans.insert(name.clone(), s);
                    }
                }
                "counters" => {
                    for (name, v) in v.as_object("counters")? {
                        m.counters.insert(name.clone(), v.as_u64(name)?);
                    }
                }
                other => return Err(format!("unknown metrics key {other:?}")),
            }
        }
        Ok(m)
    }

    /// A human-readable per-phase breakdown: each span with its share of
    /// wall time, the counters, and a derived nodes/s throughput when a
    /// `nodes` counter is present.
    pub fn to_text(&self) -> String {
        self.to_string()
    }
}

/// Formats a duration in the most readable unit.
fn human_time(nanos: u64) -> String {
    let n = nanos as f64;
    if n >= 1e9 {
        format!("{:.3}s", n / 1e9)
    } else if n >= 1e6 {
        format!("{:.3}ms", n / 1e6)
    } else if n >= 1e3 {
        format!("{:.3}µs", n / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "metrics (wall {}):", human_time(self.wall_nanos))?;
        let name_w = self.spans.keys().map(String::len).max().unwrap_or(0);
        for (name, s) in &self.spans {
            let pct = if self.wall_nanos > 0 {
                s.nanos as f64 * 100.0 / self.wall_nanos as f64
            } else {
                0.0
            };
            writeln!(
                f,
                "  {name:<name_w$}  {:>10}  {pct:5.1}%  ×{}",
                human_time(s.nanos),
                s.count
            )?;
        }
        for (name, v) in &self.counters {
            writeln!(f, "  {name} = {v}")?;
        }
        let nodes = self.counter("nodes");
        if nodes > 0 && self.wall_nanos > 0 {
            writeln!(
                f,
                "  throughput = {:.0} nodes/s",
                nodes as f64 * 1e9 / self.wall_nanos as f64
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Metrics {
        let mut inner = Inner::default();
        inner.record_span("parse", 1_500_000);
        inner.record_span("check", 2_000_000);
        inner.record_span("check", 500_000);
        inner.add("nodes", 10_001);
        inner.add("attrs", 3);
        inner.record_max("stream.peak_depth", 17);
        inner.snapshot(10_000_000)
    }

    #[test]
    fn json_round_trips() {
        let m = sample();
        let j = m.to_json();
        let back = Metrics::parse_json(&j).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn json_is_stable_and_key_ordered() {
        let m = sample();
        assert_eq!(m.to_json(), m.to_json());
        let j = m.to_json();
        // Spans and counters appear in lexicographic key order.
        assert!(j.find("\"check\"").unwrap() < j.find("\"parse\"").unwrap());
        assert!(j.find("\"attrs\"").unwrap() < j.find("\"nodes\"").unwrap());
        // Maxima fold into the counters map.
        assert!(j.contains("\"stream.peak_depth\": 17"));
    }

    #[test]
    fn parse_rejects_unknown_keys_and_garbage() {
        assert!(Metrics::parse_json("{\"bogus\": 1}").is_err());
        assert!(Metrics::parse_json("not json").is_err());
        assert!(Metrics::parse_json("{\"wall_nanos\": \"x\"}").is_err());
    }

    #[test]
    fn text_breakdown_mentions_phases_counters_and_throughput() {
        let t = sample().to_text();
        assert!(t.contains("parse"), "{t}");
        assert!(t.contains("check"), "{t}");
        assert!(t.contains("nodes = 10001"), "{t}");
        assert!(t.contains("nodes/s"), "{t}");
    }

    #[test]
    fn human_time_units() {
        assert_eq!(human_time(12), "12ns");
        assert_eq!(human_time(12_300), "12.300µs");
        assert_eq!(human_time(12_300_000), "12.300ms");
        assert_eq!(human_time(1_230_000_000), "1.230s");
    }
}
