//! The [`Metrics`] snapshot: what a [`MetricsCollector`] aggregated.
//!
//! [`MetricsCollector`]: crate::MetricsCollector

use std::collections::BTreeMap;
use std::fmt;

use crate::histogram::Histogram;
use crate::json::{self, Json};

/// Aggregate of one span name: how often it closed and the total time
/// spent inside it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of completed spans with this name.
    pub count: u64,
    /// Total nanoseconds across those spans.
    pub nanos: u64,
}

/// A point-in-time snapshot of everything a collector recorded.
///
/// Both maps are B-trees so iteration — and hence [`Metrics::to_json`] /
/// [`Metrics::to_text`] output — is deterministically key-ordered;
/// serializing the same snapshot twice yields identical bytes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Nanoseconds from collector creation to this snapshot.
    pub wall_nanos: u64,
    /// Per span name: completion count and total time.
    pub spans: BTreeMap<String, SpanStat>,
    /// Per counter name: accumulated total.
    pub counters: BTreeMap<String, u64>,
    /// Per maximum name: largest value recorded. Kept apart from
    /// `counters` so [`Metrics::merge`] can combine them correctly
    /// (maxima take the max, counters add); [`Metrics::counter`] still
    /// falls back here, so `counter("stream.peak_depth")` keeps working.
    pub maxima: BTreeMap<String, u64>,
    /// Per span family that opted into distribution recording: the
    /// latency [`Histogram`] (see
    /// [`MetricsCollector::with_histograms`](crate::MetricsCollector::with_histograms)).
    pub hists: BTreeMap<String, Histogram>,
}

/// Mutable aggregation state behind the collector's mutex.
#[derive(Default)]
pub(crate) struct Inner {
    spans: BTreeMap<&'static str, SpanStat>,
    counters: BTreeMap<&'static str, u64>,
    maxima: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Histogram>,
}

impl Inner {
    pub(crate) fn record_span(&mut self, name: &'static str, nanos: u64) {
        let s = self.spans.entry(name).or_default();
        s.count += 1;
        s.nanos = s.nanos.saturating_add(nanos);
    }

    pub(crate) fn record_hist(&mut self, name: &'static str, nanos: u64) {
        self.hists.entry(name).or_default().record(nanos);
    }

    pub(crate) fn add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_default() += delta;
    }

    pub(crate) fn record_max(&mut self, name: &'static str, value: u64) {
        let slot = self.maxima.entry(name).or_default();
        *slot = (*slot).max(value);
    }

    pub(crate) fn snapshot(&self, wall_nanos: u64) -> Metrics {
        Metrics {
            wall_nanos,
            spans: self
                .spans
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            counters: self
                .counters
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            maxima: self
                .maxima
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            hists: self
                .hists
                .iter()
                .map(|(&k, v)| (k.to_string(), v.clone()))
                .collect(),
        }
    }
}

impl Metrics {
    /// The stat of span `name` (zero if never recorded).
    pub fn span(&self, name: &str) -> SpanStat {
        self.spans.get(name).copied().unwrap_or_default()
    }

    /// The value of counter `name`, falling back to the maximum of the
    /// same name (zero if neither was recorded).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .get(name)
            .or_else(|| self.maxima.get(name))
            .copied()
            .unwrap_or(0)
    }

    /// The recorded maximum `name` (zero if never recorded).
    pub fn maximum(&self, name: &str) -> u64 {
        self.maxima.get(name).copied().unwrap_or(0)
    }

    /// The latency histogram of span family `name`, if that family opted
    /// into distribution recording.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// Returns a copy of the snapshot with every span, counter, maximum
    /// and histogram key suffixed by `#label=value` — the labeled-key
    /// convention [`Metrics::to_prometheus`] renders as a Prometheus
    /// label pair. `xic serve` uses this to merge one collector per
    /// document into a single scrape without per-doc series colliding:
    ///
    /// ```
    /// use xic_obs::Metrics;
    /// let mut m = Metrics::default();
    /// m.counters.insert("edits".into(), 3);
    /// let labeled = m.with_label("doc", "orders");
    /// assert_eq!(labeled.counter("edits#doc=orders"), 3);
    /// assert!(labeled.to_prometheus().contains("xic_edits_total{doc=\"orders\"} 3"));
    /// ```
    pub fn with_label(&self, label: &str, value: &str) -> Metrics {
        let key = |name: &str| format!("{name}#{label}={value}");
        Metrics {
            wall_nanos: self.wall_nanos,
            spans: self.spans.iter().map(|(k, &v)| (key(k), v)).collect(),
            counters: self.counters.iter().map(|(k, &v)| (key(k), v)).collect(),
            maxima: self.maxima.iter().map(|(k, &v)| (key(k), v)).collect(),
            hists: self
                .hists
                .iter()
                .map(|(k, h)| (key(k), h.clone()))
                .collect(),
        }
    }

    /// Folds `other` into `self`: counters and span stats add, maxima
    /// and `wall_nanos` take the larger value, histograms merge
    /// bucket-wise. Lets per-thread or per-request snapshots combine into
    /// one (the `xic serve` daemon merges its HTTP-layer collector into
    /// the validator's this way).
    pub fn merge(&mut self, other: &Metrics) {
        self.wall_nanos = self.wall_nanos.max(other.wall_nanos);
        for (name, s) in &other.spans {
            let slot = self.spans.entry(name.clone()).or_default();
            slot.count += s.count;
            slot.nanos = slot.nanos.saturating_add(s.nanos);
        }
        for (name, &v) in &other.counters {
            *self.counters.entry(name.clone()).or_default() += v;
        }
        for (name, &v) in &other.maxima {
            let slot = self.maxima.entry(name.clone()).or_default();
            *slot = (*slot).max(v);
        }
        for (name, h) in &other.hists {
            self.hists.entry(name.clone()).or_default().merge(h);
        }
    }

    /// Serializes to a stable JSON document: keys appear in B-tree
    /// (lexicographic) order, so equal snapshots produce identical bytes.
    ///
    /// ```
    /// use xic_obs::Metrics;
    /// let mut m = Metrics::default();
    /// m.wall_nanos = 42;
    /// m.counters.insert("nodes".into(), 7);
    /// let j = m.to_json();
    /// assert_eq!(Metrics::parse_json(&j).unwrap(), m);
    /// ```
    pub fn to_json(&self) -> String {
        let mut spans = Vec::new();
        for (name, s) in &self.spans {
            spans.push((
                name.clone(),
                Json::Object(vec![
                    ("count".into(), Json::Number(s.count as f64)),
                    ("nanos".into(), Json::Number(s.nanos as f64)),
                ]),
            ));
        }
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), Json::Number(v as f64)))
            .collect();
        let mut pairs = vec![
            ("wall_nanos".into(), Json::Number(self.wall_nanos as f64)),
            ("spans".into(), Json::Object(spans)),
            ("counters".into(), Json::Object(counters)),
        ];
        if !self.maxima.is_empty() {
            pairs.push((
                "maxima".into(),
                Json::Object(
                    self.maxima
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::Number(v as f64)))
                        .collect(),
                ),
            ));
        }
        if !self.hists.is_empty() {
            let hists = self
                .hists
                .iter()
                .map(|(k, h)| (k.clone(), hist_to_json(h)))
                .collect();
            pairs.push(("hists".into(), Json::Object(hists)));
        }
        Json::Object(pairs).render()
    }

    /// Parses a document produced by [`Metrics::to_json`]. Unknown keys
    /// are rejected; this is a codec for this crate's own output, not a
    /// general JSON reader.
    pub fn parse_json(src: &str) -> Result<Metrics, String> {
        let doc = json::parse(src)?;
        let top = doc.as_object("top level")?;
        let mut m = Metrics::default();
        for (k, v) in top {
            match k.as_str() {
                "wall_nanos" => m.wall_nanos = v.as_u64("wall_nanos")?,
                "spans" => {
                    for (name, stat) in v.as_object("spans")? {
                        let mut s = SpanStat::default();
                        for (sk, sv) in stat.as_object("span stat")? {
                            match sk.as_str() {
                                "count" => s.count = sv.as_u64("count")?,
                                "nanos" => s.nanos = sv.as_u64("nanos")?,
                                other => return Err(format!("unknown span key {other:?}")),
                            }
                        }
                        m.spans.insert(name.clone(), s);
                    }
                }
                "counters" => {
                    for (name, v) in v.as_object("counters")? {
                        m.counters.insert(name.clone(), v.as_u64(name)?);
                    }
                }
                "maxima" => {
                    for (name, v) in v.as_object("maxima")? {
                        m.maxima.insert(name.clone(), v.as_u64(name)?);
                    }
                }
                "hists" => {
                    for (name, h) in v.as_object("hists")? {
                        m.hists.insert(name.clone(), hist_from_json(h)?);
                    }
                }
                other => return Err(format!("unknown metrics key {other:?}")),
            }
        }
        Ok(m)
    }

    /// A human-readable per-phase breakdown: each span with its share of
    /// wall time, the counters, and a derived nodes/s throughput when a
    /// `nodes` counter is present.
    pub fn to_text(&self) -> String {
        self.to_string()
    }
}

/// Renders one histogram: count/sum/max, derived p50/p95/p99, and the
/// raw bucket counts (trimmed after the last non-empty bucket) so the
/// distribution round-trips losslessly and merged offline.
fn hist_to_json(h: &Histogram) -> Json {
    let last = h.last_bucket().map_or(0, |i| i + 1);
    let buckets = h.buckets[..last]
        .iter()
        .map(|&c| Json::Number(c as f64))
        .collect();
    Json::Object(vec![
        ("count".into(), Json::Number(h.count as f64)),
        ("sum".into(), Json::Number(h.sum as f64)),
        ("max".into(), Json::Number(h.max as f64)),
        ("p50".into(), Json::Number(h.quantile(0.5) as f64)),
        ("p95".into(), Json::Number(h.quantile(0.95) as f64)),
        ("p99".into(), Json::Number(h.quantile(0.99) as f64)),
        ("buckets".into(), Json::Array(buckets)),
    ])
}

/// Parses what [`hist_to_json`] emitted; `p50`/`p95`/`p99` are derived,
/// so they are accepted and ignored.
fn hist_from_json(v: &Json) -> Result<Histogram, String> {
    let mut h = Histogram::default();
    for (k, v) in v.as_object("hist")? {
        match k.as_str() {
            "count" => h.count = v.as_u64("count")?,
            "sum" => h.sum = v.as_u64("sum")?,
            "max" => h.max = v.as_u64("max")?,
            "p50" | "p95" | "p99" => {}
            "buckets" => {
                let items = v.as_array("buckets")?;
                if items.len() > h.buckets.len() {
                    return Err(format!("too many hist buckets: {}", items.len()));
                }
                for (i, item) in items.iter().enumerate() {
                    h.buckets[i] = item.as_u64("bucket")?;
                }
            }
            other => return Err(format!("unknown hist key {other:?}")),
        }
    }
    Ok(h)
}

/// Formats a duration in the most readable unit.
fn human_time(nanos: u64) -> String {
    let n = nanos as f64;
    if n >= 1e9 {
        format!("{:.3}s", n / 1e9)
    } else if n >= 1e6 {
        format!("{:.3}ms", n / 1e6)
    } else if n >= 1e3 {
        format!("{:.3}µs", n / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "metrics (wall {}):", human_time(self.wall_nanos))?;
        let name_w = self.spans.keys().map(String::len).max().unwrap_or(0);
        for (name, s) in &self.spans {
            let pct = if self.wall_nanos > 0 {
                s.nanos as f64 * 100.0 / self.wall_nanos as f64
            } else {
                0.0
            };
            writeln!(
                f,
                "  {name:<name_w$}  {:>10}  {pct:5.1}%  ×{}",
                human_time(s.nanos),
                s.count
            )?;
        }
        for (name, v) in &self.counters {
            writeln!(f, "  {name} = {v}")?;
        }
        for (name, v) in &self.maxima {
            writeln!(f, "  {name} = {v} (max)")?;
        }
        for (name, h) in &self.hists {
            writeln!(
                f,
                "  {name}: p50 {}  p95 {}  p99 {}  max {}  (n={})",
                human_time(h.quantile(0.5)),
                human_time(h.quantile(0.95)),
                human_time(h.quantile(0.99)),
                human_time(h.max),
                h.count
            )?;
        }
        let nodes = self.counter("nodes");
        if nodes > 0 && self.wall_nanos > 0 {
            writeln!(
                f,
                "  throughput = {:.0} nodes/s",
                nodes as f64 * 1e9 / self.wall_nanos as f64
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Metrics {
        let mut inner = Inner::default();
        inner.record_span("parse", 1_500_000);
        inner.record_span("check", 2_000_000);
        inner.record_span("check", 500_000);
        inner.add("nodes", 10_001);
        inner.add("attrs", 3);
        inner.record_max("stream.peak_depth", 17);
        inner.record_hist("edit", 900);
        inner.record_hist("edit", 1_100);
        inner.record_hist("edit", 250_000);
        inner.snapshot(10_000_000)
    }

    #[test]
    fn json_round_trips() {
        let m = sample();
        let j = m.to_json();
        let back = Metrics::parse_json(&j).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn json_is_stable_and_key_ordered() {
        let m = sample();
        assert_eq!(m.to_json(), m.to_json());
        let j = m.to_json();
        // Spans and counters appear in lexicographic key order.
        assert!(j.find("\"check\"").unwrap() < j.find("\"parse\"").unwrap());
        assert!(j.find("\"attrs\"").unwrap() < j.find("\"nodes\"").unwrap());
        // Maxima appear under their own key with the final value.
        assert!(j.contains("\"stream.peak_depth\": 17"));
        assert!(j.contains("\"maxima\""));
        // Histograms surface the derived quantiles and the raw buckets.
        assert!(j.contains("\"hists\""));
        assert!(j.contains("\"p99\""));
        assert!(j.contains("\"buckets\": ["));
    }

    #[test]
    fn counter_falls_back_to_maxima() {
        let m = sample();
        assert_eq!(m.counter("stream.peak_depth"), 17);
        assert_eq!(m.maximum("stream.peak_depth"), 17);
        assert_eq!(m.counter("nodes"), 10_001);
        assert_eq!(m.maximum("nodes"), 0);
    }

    #[test]
    fn hist_quantiles_surface_in_snapshot_and_text() {
        let m = sample();
        let h = m.hist("edit").expect("edit family recorded");
        assert_eq!(h.count, 3);
        assert_eq!(h.max, 250_000);
        assert_eq!(h.quantile(0.99), 250_000);
        let t = m.to_text();
        assert!(t.contains("edit: p50"), "{t}");
        assert!(t.contains("stream.peak_depth = 17 (max)"), "{t}");
    }

    #[test]
    fn merge_combines_snapshots() {
        let mut a = sample();
        let mut b = Metrics {
            wall_nanos: 20_000_000,
            ..Metrics::default()
        };
        b.spans.insert(
            "check".into(),
            SpanStat {
                count: 1,
                nanos: 1_000_000,
            },
        );
        b.counters.insert("nodes".into(), 9);
        b.maxima.insert("stream.peak_depth".into(), 5);
        b.maxima.insert("http.peak".into(), 2);
        let mut bh = Histogram::default();
        bh.record(4_000);
        b.hists.insert("edit".into(), bh);
        a.merge(&b);
        assert_eq!(a.wall_nanos, 20_000_000); // max, not sum
        assert_eq!(a.span("check").count, 3);
        assert_eq!(a.span("check").nanos, 3_500_000);
        assert_eq!(a.counter("nodes"), 10_010);
        assert_eq!(a.maximum("stream.peak_depth"), 17); // max wins
        assert_eq!(a.maximum("http.peak"), 2);
        assert_eq!(a.hist("edit").unwrap().count, 4);
        // Merging is reflected in the JSON round trip too.
        assert_eq!(Metrics::parse_json(&a.to_json()).unwrap(), a);
    }

    #[test]
    fn parse_rejects_unknown_keys_and_garbage() {
        assert!(Metrics::parse_json("{\"bogus\": 1}").is_err());
        assert!(Metrics::parse_json("not json").is_err());
        assert!(Metrics::parse_json("{\"wall_nanos\": \"x\"}").is_err());
    }

    #[test]
    fn text_breakdown_mentions_phases_counters_and_throughput() {
        let t = sample().to_text();
        assert!(t.contains("parse"), "{t}");
        assert!(t.contains("check"), "{t}");
        assert!(t.contains("nodes = 10001"), "{t}");
        assert!(t.contains("nodes/s"), "{t}");
    }

    #[test]
    fn human_time_units() {
        assert_eq!(human_time(12), "12ns");
        assert_eq!(human_time(12_300), "12.300µs");
        assert_eq!(human_time(12_300_000), "12.300ms");
        assert_eq!(human_time(1_230_000_000), "1.230s");
    }
}
