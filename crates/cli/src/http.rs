//! Minimal HTTP/1.1 framing shared by `xic serve` and the bench load
//! generator.
//!
//! Both sides of the daemon speak the same tiny dialect — request/status
//! line, headers, `Content-Length`-framed bodies, `Connection:
//! keep-alive` reuse — so the parser and serializer live here once
//! instead of being reimplemented by the server loop and every test or
//! benchmark client. No chunked encoding, no HTTP/2: `Content-Length`
//! framing is what lets a worker serve many requests per connection
//! without ever guessing where a body ends.
//!
//! The server side is [`read_request`] + [`write_response`]; the client
//! side is [`HttpClient`], a keep-alive connection that frames requests
//! the same way and parses the response status and body back out.

use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One parsed HTTP request: the request line, the body (already read to
/// its full `Content-Length`), and whether the client asked to keep the
/// connection open.
#[derive(Debug)]
pub struct Request {
    /// The HTTP method, as sent (`GET`, `POST`, `PUT`, `DELETE`, …).
    pub method: String,
    /// The request target (path plus optional query string).
    pub path: String,
    /// The request body, exactly `Content-Length` bytes, as UTF-8.
    pub body: String,
    /// False iff the client sent `Connection: close` (HTTP/1.1 defaults
    /// to keep-alive).
    pub keep_alive: bool,
}

/// Why [`read_request`] failed, split by what the server should do next.
#[derive(Debug)]
pub enum HttpError {
    /// Clean end of stream before any request byte: the client is done
    /// with this keep-alive connection. Not an error to report.
    Closed,
    /// The socket read timed out (a stalled or idle client). The
    /// connection should be dropped so the worker is freed.
    Timeout,
    /// The request is syntactically broken (bad request line, bad
    /// header, bad `Content-Length`, non-UTF-8 body). Answer `400`.
    Malformed(String),
    /// `Content-Length` exceeds the server's body limit. Answer `413`
    /// and close (the body was not read).
    TooLarge {
        /// The declared `Content-Length`.
        declared: usize,
        /// The server's limit.
        limit: usize,
    },
    /// Any other I/O failure mid-request; drop the connection.
    Io(String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::Timeout => write!(f, "read timed out"),
            HttpError::Malformed(m) => write!(f, "{m}"),
            HttpError::TooLarge { declared, limit } => {
                write!(f, "body of {declared} bytes exceeds the {limit}-byte limit")
            }
            HttpError::Io(m) => write!(f, "{m}"),
        }
    }
}

/// Classifies an I/O error: timeouts become [`HttpError::Timeout`],
/// everything else [`HttpError::Io`].
fn io_error(e: std::io::Error) -> HttpError {
    match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => HttpError::Timeout,
        _ => HttpError::Io(e.to_string()),
    }
}

/// Reads one framed HTTP/1.1 request from `reader`: request line,
/// headers (`Content-Length` and `Connection` are interpreted, the rest
/// skipped), then exactly `Content-Length` body bytes. Bodies above
/// `max_body` are rejected *before* being read, so an oversized upload
/// costs the server nothing but the header scan.
pub fn read_request<R: BufRead>(reader: &mut R, max_body: usize) -> Result<Request, HttpError> {
    let mut line = String::new();
    let n = reader.read_line(&mut line).map_err(io_error)?;
    if n == 0 {
        return Err(HttpError::Closed);
    }
    let mut parts = line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::Malformed(format!(
            "malformed request line {:?}",
            line.trim_end()
        )));
    };
    if !version.starts_with("HTTP/") || parts.next().is_some() {
        return Err(HttpError::Malformed(format!(
            "malformed request line {:?}",
            line.trim_end()
        )));
    }
    let (method, path) = (method.to_string(), path.to_string());
    let mut content_length = 0usize;
    let mut keep_alive = true;
    loop {
        let mut header = String::new();
        let n = reader.read_line(&mut header).map_err(io_error)?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-headers".into()));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(HttpError::Malformed(format!("malformed header {header:?}")));
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| HttpError::Malformed(format!("bad Content-Length {value:?}")))?;
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.trim().eq_ignore_ascii_case("close");
        }
    }
    if content_length > max_body {
        return Err(HttpError::TooLarge {
            declared: content_length,
            limit: max_body,
        });
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| {
        if matches!(io_error(e), HttpError::Timeout) {
            HttpError::Timeout
        } else {
            HttpError::Malformed("truncated body".into())
        }
    })?;
    let body =
        String::from_utf8(body).map_err(|_| HttpError::Malformed("body is not UTF-8".into()))?;
    Ok(Request {
        method,
        path,
        body,
        keep_alive,
    })
}

/// Writes one complete `Content-Length`-framed response. With
/// `keep_alive` the connection header invites reuse; otherwise it
/// announces the close the caller is about to perform.
pub fn write_response<W: Write>(
    w: &mut W,
    status: &str,
    content_type: &str,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
        body.len()
    );
    w.write_all(head.as_bytes())?;
    w.write_all(body.as_bytes())?;
    w.flush()
}

/// A keep-alive HTTP/1.1 client connection: one TCP stream reused across
/// any number of [`HttpClient::request`] calls, with responses parsed by
/// their `Content-Length`. This is the client the serve tests and the
/// e18 load generator drive — the framing mirror of [`read_request`].
pub struct HttpClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl HttpClient {
    /// Connects to `addr`. `timeout` bounds every subsequent read so a
    /// wedged server cannot hang the client forever.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> std::io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        writer.set_read_timeout(Some(timeout))?;
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(HttpClient { writer, reader })
    }

    /// Sends one request on the open connection and reads the complete
    /// response. Returns the numeric status code and the body.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> std::io::Result<(u16, String)> {
        let req = format!(
            "{method} {path} HTTP/1.1\r\nHost: xic\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.writer.write_all(req.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Reads one framed response: status line, headers, then exactly
    /// `Content-Length` body bytes.
    fn read_response(&mut self) -> std::io::Result<(u16, String)> {
        let bad = |m: &str| std::io::Error::new(ErrorKind::InvalidData, m.to_string());
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad(&format!("bad status line {line:?}")))?;
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            if self.reader.read_line(&mut header)? == 0 {
                return Err(bad("connection closed mid-headers"));
            }
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| bad(&format!("bad Content-Length {value:?}")))?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        String::from_utf8(body)
            .map(|b| (status, b))
            .map_err(|_| bad("response body is not UTF-8"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str, max: usize) -> Result<Request, HttpError> {
        read_request(&mut Cursor::new(raw.as_bytes()), max)
    }

    #[test]
    fn frames_a_request_with_body() {
        let r = parse(
            "POST /edits HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello trailing-garbage",
            1024,
        )
        .unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/edits");
        assert_eq!(r.body, "hello");
        assert!(r.keep_alive);
    }

    #[test]
    fn connection_close_is_honoured() {
        let r = parse("GET /report HTTP/1.1\r\nConnection: close\r\n\r\n", 1024).unwrap();
        assert!(!r.keep_alive);
    }

    #[test]
    fn malformed_inputs_are_typed() {
        assert!(matches!(parse("", 10), Err(HttpError::Closed)));
        assert!(matches!(
            parse("GARBAGE\r\n\r\n", 10),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET /x HTTP/1.1 extra\r\n\r\n", 10),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n", 10),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 10),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: 99\r\n\r\nshort", 1024),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_bodies_are_rejected_before_reading() {
        match parse("POST /x HTTP/1.1\r\nContent-Length: 2048\r\n\r\n", 1024) {
            Err(HttpError::TooLarge { declared, limit }) => {
                assert_eq!((declared, limit), (2048, 1024));
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn responses_round_trip_through_the_client_parser() {
        let mut wire = Vec::new();
        write_response(&mut wire, "200 OK", "text/plain", "abc", true).unwrap();
        let s = String::from_utf8(wire).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"), "{s}");
        assert!(s.contains("Content-Length: 3\r\n"));
        assert!(s.contains("Connection: keep-alive\r\n"));
        assert!(s.ends_with("\r\n\r\nabc"));
        let mut wire = Vec::new();
        write_response(&mut wire, "503 Busy", "text/plain", "", false).unwrap();
        let s = String::from_utf8(wire).unwrap();
        assert!(s.contains("Connection: close\r\n"), "{s}");
    }
}
