//! # xic-cli — the `xic` command-line tool
//!
//! A thin, dependency-free front end over the `xic` workspace:
//!
//! ```text
//! xic validate <doc.xml> [--dtd FILE --root NAME] [--sigma FILE --lang L|Lu|Lid] [--lenient] [--threads N] [--no-stream] [--metrics text|json|prom] [--trace-out FILE]
//! xic apply-edits <doc.xml> <edits.txt> [--dtd FILE --root NAME] [--sigma FILE --lang L|Lu|Lid] [--lenient] [--metrics text|json|prom] [--trace-out FILE]
//! xic serve    [<doc.xml>] --addr HOST:PORT [--dtd FILE --root NAME] [--sigma FILE --lang L|Lu|Lid] [--http-threads N] [--queue N] [--max-body BYTES] [--timeout SECS] [--state-dir DIR --fsync always|never --snapshot-every N] [--access-log FILE|- --log-sample N] [--trace-buffer N --trace-out FILE]
//! xic snapshot <doc.xml> --state-dir DIR [--doc-id ID] [--dtd FILE --root NAME] [--sigma FILE --lang L|Lu|Lid]
//! xic recover  --state-dir DIR [--doc-id ID] [--sigma FILE --lang L|Lu|Lid]
//! xic implies  --dtd FILE --root NAME --sigma FILE --lang L|Lu|Lid [--finite|--unrestricted] CONSTRAINT
//! xic path     --dtd FILE --root NAME --sigma FILE CONSTRAINT
//! xic render   <doc.xml>
//! xic xsd      --dtd FILE --root NAME --sigma FILE --lang L|Lu|Lid
//! ```
//!
//! * `validate` — checks a document against a `DTD^C` (Definition 2.4).
//!   The DTD comes from `--dtd`, or from the document's own `<!DOCTYPE>`
//!   internal subset. `Σ` comes from `--sigma` (the constraint syntax of
//!   `xic-constraints`, one per line, `#` comments). By default the check
//!   streams over the source text in one bounded-memory pass
//!   ([`Validator::validate_events`]); `--no-stream` materializes the
//!   document tree first. Both paths print identical reports.
//!   `--metrics text|json` appends a per-phase breakdown (parse,
//!   structure, plan, check, merge timings plus node/attribute/violation
//!   counters) from the [`xic::obs`] layer; `XIC_TRACE=1`
//!   additionally echoes spans to stderr as they close.
//! * `apply-edits` — loads a document into a [`LiveValidator`], plays a
//!   line-based edit script against it (`set-attr`, `remove-attr`,
//!   `set-text`, `delete`, `insert`; vertices are addressed by the node
//!   numbers `render` prints), and prints the violations the script raised
//!   (`+`) and cleared (`-`) followed by the final report — incremental
//!   revalidation, never a from-scratch pass. By default the whole script
//!   is submitted as one [`LiveValidator::apply_batch`] call: repeated
//!   writes to the same (vertex, attribute) or text slot coalesce
//!   last-writer-wins and propagation runs once for the batch, so the
//!   printed diff is the script's *net* effect. `--sequential` restores
//!   one propagation per line with per-edit diffs; the final report is
//!   identical either way.
//! * `snapshot` / `recover` — durable live-validator state (`xic-storage`):
//!   `snapshot` validates a document and persists its state as a versioned,
//!   checksummed snapshot under `--state-dir`; `recover` warm-starts from
//!   the snapshot plus the write-ahead log of edit batches `serve
//!   --state-dir` appends, and prints the identical report without parsing
//!   or revalidating from scratch.
//! * `implies` — decides `Σ ⊨ φ` / `Σ ⊨_f φ` with the solver matching
//!   `--lang`, printing the derivation or a countermodel when available.
//! * `path` — decides a Section-4 path constraint
//!   (`a.b.c -> a.d`, `a.b <= c.d`, `a.b <=> c.d`) against `Σ` in `L_id`.
//! * `render` — prints the Figure-2 style outline of a document.
//! * `xsd` — exports `Σ` as XML Schema identity constraints
//!   (`xs:key`/`xs:keyref`), flagging the forms XML Schema cannot express
//!   (set-valued foreign keys, inverses).
//!
//! Exit codes: 0 = valid/implied, 1 = invalid/not implied, 2 = usage or
//! input error. The library entry point [`run`] is used directly by the
//! tests; `main` only forwards `std::env::args`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod durable;
pub mod http;
mod serve;

pub use serve::serve_on;

use std::fmt::Write as _;

use xic::implication::lu::Mode;
use xic::prelude::*;

/// Parsed command-line options.
#[derive(Default, Debug, Clone)]
struct Opts {
    positional: Vec<String>,
    dtd: Option<String>,
    root: Option<String>,
    sigma: Option<String>,
    lang: Option<String>,
    lenient: bool,
    sequential: bool,
    finite: bool,
    unrestricted: bool,
    emit_countermodel: Option<String>,
    threads: Option<usize>,
    no_stream: bool,
    ids: bool,
    metrics: Option<String>,
    trace_out: Option<String>,
    addr: Option<String>,
    max_body: Option<usize>,
    http_threads: Option<usize>,
    queue: Option<usize>,
    timeout_secs: Option<f64>,
    state_dir: Option<String>,
    fsync: Option<String>,
    snapshot_every: Option<u64>,
    doc_id: Option<String>,
    access_log: Option<String>,
    log_sample: Option<u64>,
    trace_buffer: Option<usize>,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut grab = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} expects a value"))
        };
        match a.as_str() {
            "--dtd" => o.dtd = Some(grab("--dtd")?),
            "--root" => o.root = Some(grab("--root")?),
            "--sigma" => o.sigma = Some(grab("--sigma")?),
            "--lang" => o.lang = Some(grab("--lang")?),
            "--emit-countermodel" => o.emit_countermodel = Some(grab("--emit-countermodel")?),
            "--threads" => {
                let v = grab("--threads")?;
                o.threads = Some(
                    v.parse()
                        .map_err(|_| format!("--threads expects a number, got {v:?}"))?,
                );
            }
            "--metrics" => {
                let v = grab("--metrics")?;
                if v != "text" && v != "json" && v != "prom" {
                    return Err(format!("--metrics expects text, json or prom, got {v:?}"));
                }
                o.metrics = Some(v);
            }
            "--trace-out" => o.trace_out = Some(grab("--trace-out")?),
            "--addr" => o.addr = Some(grab("--addr")?),
            "--max-body" => {
                let v = grab("--max-body")?;
                o.max_body = Some(
                    v.parse()
                        .map_err(|_| format!("--max-body expects a byte count, got {v:?}"))?,
                );
            }
            "--http-threads" => {
                let v = grab("--http-threads")?;
                o.http_threads = Some(
                    v.parse()
                        .map_err(|_| format!("--http-threads expects a number, got {v:?}"))?,
                );
            }
            "--queue" => {
                let v = grab("--queue")?;
                o.queue = Some(
                    v.parse()
                        .map_err(|_| format!("--queue expects a number, got {v:?}"))?,
                );
            }
            "--timeout" => {
                let v = grab("--timeout")?;
                let secs: f64 = v
                    .parse()
                    .map_err(|_| format!("--timeout expects seconds, got {v:?}"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(format!("--timeout expects positive seconds, got {v:?}"));
                }
                o.timeout_secs = Some(secs);
            }
            "--state-dir" => o.state_dir = Some(grab("--state-dir")?),
            "--fsync" => {
                let v = grab("--fsync")?;
                if v != "always" && v != "never" {
                    return Err(format!("--fsync expects always or never, got {v:?}"));
                }
                o.fsync = Some(v);
            }
            "--snapshot-every" => {
                let v = grab("--snapshot-every")?;
                o.snapshot_every =
                    Some(v.parse().map_err(|_| {
                        format!("--snapshot-every expects a batch count, got {v:?}")
                    })?);
            }
            "--doc-id" => o.doc_id = Some(grab("--doc-id")?),
            "--access-log" => o.access_log = Some(grab("--access-log")?),
            "--log-sample" => {
                let v = grab("--log-sample")?;
                let n: u64 = v
                    .parse()
                    .map_err(|_| format!("--log-sample expects a number, got {v:?}"))?;
                if n == 0 {
                    return Err("--log-sample expects a number >= 1 (1 = log everything)".into());
                }
                o.log_sample = Some(n);
            }
            "--trace-buffer" => {
                let v = grab("--trace-buffer")?;
                o.trace_buffer = Some(v.parse().map_err(|_| {
                    format!("--trace-buffer expects an event count (0 disables), got {v:?}")
                })?);
            }
            "--lenient" => o.lenient = true,
            "--sequential" => o.sequential = true,
            "--ids" => o.ids = true,
            "--stream" => o.no_stream = false,
            "--no-stream" => o.no_stream = true,
            "--finite" => o.finite = true,
            "--unrestricted" => o.unrestricted = true,
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            _ => o.positional.push(a.clone()),
        }
    }
    Ok(o)
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn parse_lang(s: Option<&str>) -> Result<Language, String> {
    match s.unwrap_or("Lu") {
        "L" | "l" => Ok(Language::L),
        "Lu" | "lu" | "L_u" => Ok(Language::Lu),
        "Lid" | "lid" | "L_id" => Ok(Language::Lid),
        other => Err(format!(
            "unknown language {other:?} (expected L, Lu or Lid)"
        )),
    }
}

/// Builds the `DTD^C` from `--dtd/--root/--sigma/--lang`, or from a parsed
/// document's internal subset when `--dtd` is absent. When `checked` is
/// false the set-level well-formedness of `Σ` is skipped (implication
/// accepts arbitrary constraint sets; side conditions are derived).
fn load_dtdc(o: &Opts, doc_dtd: Option<&DtdStructure>, checked: bool) -> Result<DtdC, String> {
    let structure = match (&o.dtd, doc_dtd) {
        (Some(path), _) => {
            let root = o
                .root
                .as_deref()
                .ok_or("--dtd requires --root <element>")?;
            parse_dtd(&read(path)?, root).map_err(|e| e.to_string())?
        }
        (None, Some(d)) => d.clone(),
        (None, None) => {
            return Err("no DTD: pass --dtd FILE --root NAME, or use a document with an internal <!DOCTYPE> subset".into())
        }
    };
    let lang = parse_lang(o.lang.as_deref())?;
    let sigma_src = match &o.sigma {
        Some(path) => read(path)?,
        None => String::new(),
    };
    if checked {
        DtdC::parse(structure, lang, &sigma_src)
    } else {
        let sigma =
            Constraint::parse_set(&sigma_src, &structure, lang).map_err(|e| e.to_string())?;
        Ok(DtdC::new_unchecked(structure, lang, sigma))
    }
}

/// The observability wiring for one invocation: the handle instrumented
/// code holds, plus the trace ring when `--trace-out` asked for one (the
/// caller drains it into the file after the run).
struct ObsSetup {
    obs: Obs,
    trace: Option<std::sync::Arc<TraceCollector>>,
}

/// Builds the [`Obs`] handle for this invocation: a fresh
/// [`MetricsCollector`] (honouring the `XIC_TRACE` span-echo filter, with
/// latency histograms on the default span families) when `--metrics` was
/// passed, a [`TraceCollector`] ring when `--trace-out` was, both under a
/// [`Fanout`] when both were — otherwise the disabled handle, where the
/// validator never reads a clock.
fn obs_setup(o: &Opts) -> ObsSetup {
    let metrics = o
        .metrics
        .as_ref()
        .map(|_| MetricsCollector::shared_with_histograms());
    let trace = o
        .trace_out
        .as_ref()
        .map(|_| std::sync::Arc::new(TraceCollector::new()));
    let obs = match (metrics, &trace) {
        (None, None) => Obs::off(),
        (Some(m), None) => Obs::new(m),
        (None, Some(t)) => Obs::new(t.clone()),
        (Some(m), Some(t)) => Obs::new(std::sync::Arc::new(Fanout::new(vec![m, t.clone()]))),
    };
    ObsSetup { obs, trace }
}

/// Writes the Chrome trace-event export to `--trace-out`, if requested.
fn emit_trace(o: &Opts, setup: &ObsSetup) -> Result<(), String> {
    if let (Some(path), Some(tc)) = (&o.trace_out, &setup.trace) {
        std::fs::write(path, tc.to_chrome_json())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    Ok(())
}

/// Appends the metrics block after a report, in the `--metrics` format.
///
/// When the process runs under a counting global allocator (the `xic`
/// binary installs one; see `main.rs`), the snapshot gains the heap
/// totals as an `alloc.count` counter and an `alloc.peak` maximum.
/// Library embedders without the allocator see no such keys.
fn emit_metrics(o: &Opts, metrics: Option<&Metrics>, out: &mut String) {
    let (Some(fmt), Some(m)) = (o.metrics.as_deref(), metrics) else {
        return;
    };
    let alloc = xic::obs::alloc::stats();
    let mut with_alloc;
    let m = if alloc.count > 0 {
        with_alloc = m.clone();
        with_alloc
            .counters
            .insert("alloc.count".into(), alloc.count);
        with_alloc.maxima.insert("alloc.peak".into(), alloc.peak);
        &with_alloc
    } else {
        m
    };
    if !out.is_empty() && !out.ends_with('\n') {
        out.push('\n');
    }
    match fmt {
        "json" => {
            let _ = writeln!(out, "{}", m.to_json());
        }
        "prom" => out.push_str(&m.to_prometheus()),
        _ => {
            let _ = write!(out, "{}", m.to_text());
        }
    }
}

/// Runs the CLI. Returns the process exit code; human-readable output goes
/// to `out`.
pub fn run(args: &[String], out: &mut String) -> i32 {
    match run_inner(args, out) {
        Ok(code) => code,
        Err(msg) => {
            let _ = writeln!(out, "error: {msg}");
            let _ = writeln!(out, "{USAGE}");
            2
        }
    }
}

const USAGE: &str = "\
usage:
  xic validate <doc.xml> [--dtd FILE --root NAME] [--sigma FILE --lang L|Lu|Lid] [--lenient]
               [--threads N]   (0 = auto, 1 = sequential; reports are identical either way)
               [--stream|--no-stream]  (default --stream: single-pass validation straight
               from the source text; --no-stream parses a tree first — same report)
               [--metrics text|json|prom]  (append per-phase timings, counters and latency
               histograms after the report; prom = Prometheus text exposition; set
               XIC_TRACE=1 or XIC_TRACE=prefix,... to echo spans to stderr)
               [--trace-out FILE]  (write a Chrome trace-event / Perfetto timeline of
               all spans; open in chrome://tracing or ui.perfetto.dev)
  xic apply-edits <doc.xml> <edits.txt> [--dtd FILE --root NAME] [--sigma FILE --lang L|Lu|Lid]
               [--lenient] [--sequential] [--metrics text|json|prom] [--trace-out FILE]
               incremental revalidation: the whole script is applied as ONE
               batch (repeated writes to the same cell coalesce, one
               propagation pass), printing the net violations it raised (+)
               and cleared (-), then the final report. --sequential applies
               line by line instead, printing each edit's own ± diff — same
               final report, more propagation work. Script lines (# comments;
               vertices are the node numbers `render --ids` prints):
                 set-attr NODE ATTR V[,V...]    remove-attr NODE ATTR
                 set-text NODE INDEX [TEXT]     delete NODE
                 insert PARENT POSITION <xml fragment>
  xic serve    [<doc.xml>] [--addr HOST:PORT] [--dtd FILE --root NAME] [--sigma FILE --lang L|Lu|Lid]
               [--lenient] [--sequential] [--threads N] [--http-threads N] [--queue N]
               [--max-body BYTES] [--timeout SECS]
               [--state-dir DIR] [--fsync always|never] [--snapshot-every N]
               [--access-log FILE|-] [--log-sample N] [--trace-buffer N] [--trace-out FILE]
               long-running multi-tenant validation daemon (default --addr
               127.0.0.1:9100): a store of documents keyed by id, each on
               its own validator shard — independent docs are served in
               parallel, edits to one doc serialize. Connections are
               HTTP/1.1 keep-alive, handled by a fixed pool of
               --http-threads workers over a bounded --queue of accepted
               connections (full queue => 503); bodies above --max-body are
               refused with 413, and --timeout bounds each read so stalled
               clients cannot wedge a worker. The optional positional
               document pre-loads as doc id `default`. HTTP endpoints:
                 PUT    /docs/{id}         ingest/replace a document (body =
                                           XML; internal <!DOCTYPE> or the
                                           server --dtd/--root supplies the
                                           structure, --sigma the Σ);
                                           responds with its report
                 GET    /docs              list document ids
                 GET    /docs/{id}/report  current validation report
                 POST   /docs/{id}/edits   edit-script body (apply-edits
                                           syntax); the response matches
                                           apply-edits output exactly
                 DELETE /docs/{id}         evict the document
                 GET    /report            alias for /docs/default/report
                 POST   /edits             alias for /docs/default/edits
                 POST   /docs/{id}/snapshot  write the doc's snapshot now
                                           (requires --state-dir)
                 GET    /metrics           Prometheus text exposition, all
                                           docs merged per doc-id label
                 GET    /metrics.json      the same snapshot as JSON
                 GET    /docs/{id}/metrics one doc's Prometheus exposition
                                           (404 on unknown doc)
                 GET    /healthz           liveness + readiness (503 while
                                           draining)
                 GET    /status            JSON introspection: uptime, build
                                           info, queue depth/capacity, and
                                           per-doc WAL/snapshot state
                 GET    /trace             drain the request-scoped span ring
                                           as Chrome trace-event JSON
                 POST   /shutdown          drain in-flight work and exit
               With --state-dir DIR the daemon is durable: every acknowledged
               edit batch is appended to a per-doc write-ahead log before it
               propagates (--fsync always|never, default always), snapshots
               are written on ingest, eviction, shutdown, on demand, and
               every --snapshot-every N batches; on boot every persisted doc
               is recovered (snapshot + WAL replay) and served warm.
               Observability: every request gets a monotonic id tagging its
               spans in a bounded trace ring (--trace-buffer N events,
               default 65536, 0 disables; GET /trace drains it, --trace-out
               FILE writes the final window at shutdown); --access-log
               FILE|- appends one JSON line per request (every --log-sample
               N-th under load, default 1 = all).
  xic snapshot <doc.xml> --state-dir DIR [--doc-id ID] [--dtd FILE --root NAME]
               [--sigma FILE --lang L|Lu|Lid] [--lenient] [--threads N] [--fsync always|never]
               validate the document and persist its live-validator state as
               a versioned checksummed snapshot under DIR/ID (default id:
               `default`), ready for `xic recover` or `xic serve --state-dir`
  xic recover  --state-dir DIR [--doc-id ID] [--sigma FILE --lang L|Lu|Lid]
               [--lenient] [--threads N]
               warm-start the document from its snapshot + WAL (no XML parse,
               no from-scratch validation) and print its report; pass the
               same --sigma/--lang the snapshot was taken with
  xic implies  --dtd FILE --root NAME --sigma FILE --lang L|Lu|Lid [--finite|--unrestricted]
               [--emit-countermodel FILE] CONSTRAINT
  xic path     --dtd FILE --root NAME --sigma FILE CONSTRAINT
  xic render   <doc.xml> [--ids]
  xic xsd      --dtd FILE --root NAME --sigma FILE --lang L|Lu|Lid";

fn run_inner(args: &[String], out: &mut String) -> Result<i32, String> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err("missing subcommand".into());
    };
    let o = parse_opts(rest)?;
    match cmd.as_str() {
        "validate" => cmd_validate(&o, out),
        "apply-edits" => cmd_apply_edits(&o, out),
        "snapshot" => cmd_snapshot(&o, out),
        "recover" => cmd_recover(&o, out),
        "serve" => serve::cmd_serve(&o, out),
        "implies" => cmd_implies(&o, out),
        "path" => cmd_path(&o, out),
        "render" => cmd_render(&o, out),
        "xsd" => cmd_xsd(&o, out),
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

fn cmd_validate(o: &Opts, out: &mut String) -> Result<i32, String> {
    let [doc_path] = o.positional.as_slice() else {
        return Err("validate takes exactly one document".into());
    };
    let src = read(doc_path)?;
    let mut options = if o.lenient {
        Options::lenient()
    } else {
        Options::default()
    };
    if let Some(threads) = o.threads {
        options = options.with_threads(threads);
    }
    let setup = obs_setup(o);
    let obs = setup.obs.clone();
    let report = if o.no_stream {
        let doc = {
            // On the tree path parsing happens up front, outside the
            // validator — time it here so the phase breakdown still
            // covers the whole run.
            let _parse = obs.span("parse");
            parse_document(&src).map_err(|e| e.to_string())?
        };
        let dtdc = load_dtdc(o, doc.dtd.as_ref(), true)?;
        let validator =
            Validator::with_matcher(&dtdc, MatcherKind::Dfa, options).with_obs(obs.clone());
        validator.validate(&doc.tree)
    } else {
        // Default path: one bounded-memory pass — the document is never
        // built as a tree. The DTD is pulled from the prolog before the
        // first element event, so `load_dtdc` sees it exactly as the tree
        // path would.
        let mut events = parse_events(&src);
        let doc_dtd = events.dtd().map_err(|e| e.to_string())?.cloned();
        let dtdc = load_dtdc(o, doc_dtd.as_ref(), true)?;
        let validator =
            Validator::with_matcher(&dtdc, MatcherKind::Dfa, options).with_obs(obs.clone());
        validator
            .validate_events(events)
            .map_err(|e| e.to_string())?
    };
    let _ = write!(out, "{report}");
    emit_metrics(o, report.metrics.as_ref(), out);
    emit_trace(o, &setup)?;
    Ok(if report.is_valid() { 0 } else { 1 })
}

/// Splits `n` whitespace-separated tokens off the front of `line` and
/// returns them with the (trimmed) remainder of the line.
fn split_tokens(line: &str, n: usize) -> Result<(Vec<&str>, &str), String> {
    let mut rest = line;
    let mut toks = Vec::with_capacity(n);
    for _ in 0..n {
        rest = rest.trim_start();
        let end = rest.find(char::is_whitespace).unwrap_or(rest.len());
        if end == 0 {
            return Err(format!("too few arguments in {line:?}"));
        }
        toks.push(&rest[..end]);
        rest = &rest[end..];
    }
    Ok((toks, rest.trim_start()))
}

/// Parses a vertex address: the node number `render --ids` prints, with an
/// optional `#` or `n` prefix (`7`, `#7` and `n7` all name vertex 7).
fn parse_node(s: &str) -> Result<NodeId, String> {
    let digits = s.strip_prefix(['#', 'n']).unwrap_or(s);
    digits
        .parse::<usize>()
        .map(NodeId::from_index)
        .map_err(|_| format!("bad node id {s:?} (expected a node number, e.g. 7 or #7)"))
}

/// Applies one line of an edit script to the live validator.
fn apply_script_line(live: &mut LiveValidator<'_, '_>, line: &str) -> Result<EditOutcome, String> {
    let (cmd, _) = split_tokens(line, 1)?;
    let model_err = |e: xic::model::ModelError| e.to_string();
    match cmd[0] {
        "set-attr" => {
            let (toks, value) = split_tokens(line, 3)?;
            if value.is_empty() {
                return Err("set-attr NODE ATTR V[,V...]: missing value".into());
            }
            let vals: Vec<&str> = value.split(',').collect();
            let av = if let [single] = vals.as_slice() {
                AttrValue::single(*single)
            } else {
                AttrValue::set(vals)
            };
            live.set_attr(parse_node(toks[1])?, toks[2], av)
                .map_err(model_err)
        }
        "remove-attr" => {
            let (toks, rest) = split_tokens(line, 3)?;
            if !rest.is_empty() {
                return Err("remove-attr takes exactly NODE ATTR".into());
            }
            live.remove_attr(parse_node(toks[1])?, toks[2])
                .map_err(model_err)
        }
        "set-text" => {
            let (toks, text) = split_tokens(line, 3)?;
            let index: usize = toks[2]
                .parse()
                .map_err(|_| format!("bad text index {:?}", toks[2]))?;
            live.set_text(parse_node(toks[1])?, index, text)
                .map_err(model_err)
        }
        "delete" => {
            let (toks, rest) = split_tokens(line, 2)?;
            if !rest.is_empty() {
                return Err("delete takes exactly NODE".into());
            }
            live.delete_subtree(parse_node(toks[1])?).map_err(model_err)
        }
        "insert" => {
            let (toks, fragment) = split_tokens(line, 3)?;
            let position: usize = toks[2]
                .parse()
                .map_err(|_| format!("bad position {:?}", toks[2]))?;
            let sub = parse_document(fragment).map_err(|e| format!("bad fragment: {e}"))?;
            live.insert_subtree(parse_node(toks[1])?, position, &sub.tree)
                .map_err(model_err)
        }
        other => Err(format!(
            "unknown edit {other:?} (expected set-attr, remove-attr, set-text, delete or insert)"
        )),
    }
}

/// Parses one line of an edit script into a batch request: the grammar of
/// [`apply_script_line`], without applying anything.
fn parse_script_edit(line: &str) -> Result<BatchEdit, String> {
    let (cmd, _) = split_tokens(line, 1)?;
    match cmd[0] {
        "set-attr" => {
            let (toks, value) = split_tokens(line, 3)?;
            if value.is_empty() {
                return Err("set-attr NODE ATTR V[,V...]: missing value".into());
            }
            let vals: Vec<&str> = value.split(',').collect();
            let av = if let [single] = vals.as_slice() {
                AttrValue::single(*single)
            } else {
                AttrValue::set(vals)
            };
            Ok(BatchEdit::SetAttr {
                node: parse_node(toks[1])?,
                attr: toks[2].into(),
                value: av,
            })
        }
        "remove-attr" => {
            let (toks, rest) = split_tokens(line, 3)?;
            if !rest.is_empty() {
                return Err("remove-attr takes exactly NODE ATTR".into());
            }
            Ok(BatchEdit::RemoveAttr {
                node: parse_node(toks[1])?,
                attr: toks[2].into(),
            })
        }
        "set-text" => {
            let (toks, text) = split_tokens(line, 3)?;
            let index: usize = toks[2]
                .parse()
                .map_err(|_| format!("bad text index {:?}", toks[2]))?;
            Ok(BatchEdit::SetText {
                node: parse_node(toks[1])?,
                index,
                text: text.into(),
            })
        }
        "delete" => {
            let (toks, rest) = split_tokens(line, 2)?;
            if !rest.is_empty() {
                return Err("delete takes exactly NODE".into());
            }
            Ok(BatchEdit::DeleteSubtree {
                node: parse_node(toks[1])?,
            })
        }
        "insert" => {
            let (toks, fragment) = split_tokens(line, 3)?;
            let position: usize = toks[2]
                .parse()
                .map_err(|_| format!("bad position {:?}", toks[2]))?;
            let sub = parse_document(fragment).map_err(|e| format!("bad fragment: {e}"))?;
            Ok(BatchEdit::InsertSubtree {
                parent: parse_node(toks[1])?,
                position,
                fragment: sub.tree,
            })
        }
        other => Err(format!(
            "unknown edit {other:?} (expected set-attr, remove-attr, set-text, delete or insert)"
        )),
    }
}

/// Plays an edit script against a live validator, rendering the output both
/// `xic apply-edits` and `POST /edits` print.
///
/// The default path parses the whole script up front and submits it as one
/// [`LiveValidator::apply_batch`] call: echoes each line, then a
/// `batch: N edits` summary with the *net* ± violation diff (writes
/// coalesce last-writer-wins, so violations both raised and cleared within
/// the script cancel out). With `sequential` the pre-batching behaviour —
/// one propagation per line, each line's own ± diff under it — is kept.
/// Errors carry the 1-based script line number.
fn run_edit_script(
    live: &mut LiveValidator<'_, '_>,
    script: &str,
    sequential: bool,
    out: &mut String,
) -> Result<(), (usize, String)> {
    if sequential {
        for (idx, raw) in script.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let outcome = apply_script_line(live, line).map_err(|e| (idx + 1, e))?;
            let _ = writeln!(out, "edit: {line}");
            for v in &outcome.diff.raised {
                let _ = writeln!(out, "  + {v}");
            }
            for v in &outcome.diff.cleared {
                let _ = writeln!(out, "  - {v}");
            }
        }
        return Ok(());
    }
    let mut lines: Vec<(usize, &str)> = Vec::new();
    let mut batch: Vec<BatchEdit> = Vec::new();
    for (idx, raw) in script.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        batch.push(parse_script_edit(line).map_err(|e| (idx + 1, e))?);
        lines.push((idx + 1, line));
    }
    if batch.is_empty() {
        return Ok(());
    }
    match live.apply_batch(&batch) {
        Ok(diff) => {
            for (_, line) in &lines {
                let _ = writeln!(out, "edit: {line}");
            }
            let _ = writeln!(out, "batch: {} edits", batch.len());
            for v in &diff.raised {
                let _ = writeln!(out, "  + {v}");
            }
            for v in &diff.cleared {
                let _ = writeln!(out, "  - {v}");
            }
            Ok(())
        }
        Err(e) => Err((lines[e.index].0, e.error.to_string())),
    }
}

fn cmd_apply_edits(o: &Opts, out: &mut String) -> Result<i32, String> {
    let [doc_path, script_path] = o.positional.as_slice() else {
        return Err("apply-edits takes a document and an edit script".into());
    };
    let setup = obs_setup(o);
    let obs = setup.obs.clone();
    let doc = {
        let _parse = obs.span("parse");
        parse_document(&read(doc_path)?).map_err(|e| e.to_string())?
    };
    let dtdc = load_dtdc(o, doc.dtd.as_ref(), true)?;
    let mut options = if o.lenient {
        Options::lenient()
    } else {
        Options::default()
    };
    if let Some(threads) = o.threads {
        options = options.with_threads(threads);
    }
    let validator = Validator::with_matcher(&dtdc, MatcherKind::Dfa, options).with_obs(obs.clone());
    let mut live = LiveValidator::new(&validator, doc.tree);
    let script = read(script_path)?;
    run_edit_script(&mut live, &script, o.sequential, out)
        .map_err(|(line, e)| format!("{script_path}:{line}: {e}"))?;
    let report = live.report();
    let _ = write!(out, "{report}");
    emit_metrics(o, report.metrics.as_ref(), out);
    emit_trace(o, &setup)?;
    Ok(if report.is_valid() { 0 } else { 1 })
}

/// The validator options shared by every live-validator command.
fn live_options(o: &Opts) -> Options {
    let mut options = if o.lenient {
        Options::lenient()
    } else {
        Options::default()
    };
    if let Some(threads) = o.threads {
        options = options.with_threads(threads);
    }
    options
}

fn cmd_snapshot(o: &Opts, out: &mut String) -> Result<i32, String> {
    let [doc_path] = o.positional.as_slice() else {
        return Err("snapshot takes exactly one document".into());
    };
    let store = durable::open_store(o)?.ok_or("snapshot requires --state-dir DIR")?;
    let id = o.doc_id.as_deref().unwrap_or("default");
    let setup = obs_setup(o);
    let obs = setup.obs.clone();
    let doc = {
        let _parse = obs.span("parse");
        parse_document(&read(doc_path)?).map_err(|e| e.to_string())?
    };
    let dtdc = load_dtdc(o, doc.dtd.as_ref(), true)?;
    let validator =
        Validator::with_matcher(&dtdc, MatcherKind::Dfa, live_options(o)).with_obs(obs.clone());
    let live = LiveValidator::new(&validator, doc.tree);
    let state = live.export_state();
    {
        let _span = obs.span("snapshot.write");
        store.save(id, &state).map_err(|e| e.to_string())?;
    }
    durable::write_meta(&store, id, dtdc.structure())?;
    let snap = store.snapshot_path(id).map_err(|e| e.to_string())?;
    let bytes = std::fs::metadata(&snap).map(|m| m.len()).unwrap_or(0);
    let _ = writeln!(out, "snapshot written: {} ({bytes} bytes)", snap.display());
    let report = live.report();
    let _ = write!(out, "{report}");
    emit_metrics(o, report.metrics.as_ref(), out);
    emit_trace(o, &setup)?;
    Ok(if report.is_valid() { 0 } else { 1 })
}

fn cmd_recover(o: &Opts, out: &mut String) -> Result<i32, String> {
    if !o.positional.is_empty() {
        return Err("recover takes no positional arguments (state comes from --state-dir)".into());
    }
    let store = durable::open_store(o)?.ok_or("recover requires --state-dir DIR")?;
    let id = o.doc_id.as_deref().unwrap_or("default");
    let setup = obs_setup(o);
    let obs = setup.obs.clone();
    let (dtdc, recovered) = durable::load_doc(o, &store, id)?;
    let validator =
        Validator::with_matcher(&dtdc, MatcherKind::Dfa, live_options(o)).with_obs(obs.clone());
    let replayed = recovered.batches.len();
    let live = {
        let _span = obs.span("recover.replay");
        let mut live =
            LiveValidator::from_state(&validator, recovered.state).map_err(|e| e.to_string())?;
        for batch in &recovered.batches {
            live.apply_batch(batch)
                .map_err(|e| format!("wal replay: {}", e.error))?;
        }
        live
    };
    let _ = writeln!(
        out,
        "recovered doc '{id}' from {}: snapshot + {replayed} wal batch{}",
        store.root().display(),
        if replayed == 1 { "" } else { "es" }
    );
    let report = live.report();
    let _ = write!(out, "{report}");
    emit_metrics(o, report.metrics.as_ref(), out);
    emit_trace(o, &setup)?;
    Ok(if report.is_valid() { 0 } else { 1 })
}

fn cmd_implies(o: &Opts, out: &mut String) -> Result<i32, String> {
    let [phi_src] = o.positional.as_slice() else {
        return Err("implies takes exactly one constraint".into());
    };
    if o.finite && o.unrestricted {
        return Err("pick one of --finite / --unrestricted".into());
    }
    let dtdc = load_dtdc(o, None, false)?;
    let lang = dtdc.language();
    let phi = Constraint::parse(phi_src, dtdc.structure(), lang).map_err(|e| e.to_string())?;
    let (implied, detail) = match lang {
        Language::Lid => {
            let solver = LidSolver::new(dtdc.constraints(), Some(dtdc.structure()));
            let v = solver.implies_with(&phi, Some(dtdc.structure()));
            describe(&v, solver.sigma(), Some(dtdc.structure()))
        }
        Language::Lu => {
            let solver = LuSolver::new(dtdc.constraints()).map_err(|e| e.to_string())?;
            let mode = if o.unrestricted {
                Mode::Unrestricted
            } else {
                Mode::Finite
            };
            let v = solver.implies(&phi, mode).map_err(|e| e.to_string())?;
            describe(&v, dtdc.constraints(), None)
        }
        Language::L => {
            let solver = LpSolver::new(dtdc.constraints()).map_err(|e| e.to_string())?;
            let v = solver.implies(&phi);
            describe(&v, dtdc.constraints(), None)
        }
    };
    let problem = if lang == Language::Lu && o.unrestricted {
        "Σ ⊨"
    } else {
        "Σ ⊨f"
    };
    let _ = writeln!(
        out,
        "{problem} {phi} ?  {}",
        if implied { "yes" } else { "no" }
    );
    out.push_str(&detail.text);
    if let (Some(path), Some(model)) = (&o.emit_countermodel, &detail.countermodel) {
        let (structure, tree) = xic::implication::semantics::instance_to_tree(model);
        let xml = format!(
            "<!DOCTYPE {} [\n{}]>\n{}",
            structure.root(),
            serialize_dtd(&structure),
            serialize_document(&tree)
        );
        std::fs::write(path, xml).map_err(|e| format!("cannot write {path}: {e}"))?;
        let _ = writeln!(out, "countermodel written to {path}");
    }
    Ok(if implied { 0 } else { 1 })
}

/// Human-readable detail of a verdict plus the raw countermodel, if any.
struct Detail {
    text: String,
    countermodel: Option<Instance>,
}

fn describe(v: &Verdict, sigma: &[Constraint], structure: Option<&DtdStructure>) -> (bool, Detail) {
    let mut s = String::new();
    match v {
        Verdict::Implied(proof) => {
            proof
                .verify(sigma, structure)
                .expect("solver proofs verify");
            let _ = writeln!(s, "derivation (verified):");
            for line in proof.to_string().lines() {
                let _ = writeln!(s, "  {line}");
            }
            (
                true,
                Detail {
                    text: s,
                    countermodel: None,
                },
            )
        }
        Verdict::NotImplied(Some(m)) => {
            let _ = writeln!(s, "countermodel:");
            for line in m.to_string().lines() {
                let _ = writeln!(s, "  {line}");
            }
            (
                false,
                Detail {
                    text: s,
                    countermodel: Some(m.clone()),
                },
            )
        }
        Verdict::NotImplied(None) => (
            false,
            Detail {
                text: s,
                countermodel: None,
            },
        ),
    }
}

fn cmd_path(o: &Opts, out: &mut String) -> Result<i32, String> {
    let [phi_src] = o.positional.as_slice() else {
        return Err("path takes exactly one path constraint".into());
    };
    let mut o2 = Opts {
        lang: Some("Lid".into()),
        ..Opts::default()
    };
    o2.dtd.clone_from(&o.dtd);
    o2.root.clone_from(&o.root);
    o2.sigma.clone_from(&o.sigma);
    let dtdc = load_dtdc(&o2, None, false)?;
    let phi = PathConstraint::parse(phi_src).map_err(|e| e.to_string())?;
    let solver = PathSolver::new(&dtdc);
    let implied = solver.implied(&phi);
    let _ = writeln!(out, "Σ ⊨ {phi} ?  {}", if implied { "yes" } else { "no" });
    Ok(if implied { 0 } else { 1 })
}

/// Exports Σ as XML Schema identity constraints (xs:key / xs:keyref),
/// listing the forms XML Schema cannot express.
fn cmd_xsd(o: &Opts, out: &mut String) -> Result<i32, String> {
    if !o.positional.is_empty() {
        return Err("xsd takes no positional arguments".into());
    }
    let dtdc = load_dtdc(o, None, false)?;
    let export = constraints_to_xsd(&dtdc);
    out.push_str(&export.xml);
    if !export.unsupported.is_empty() {
        let _ = writeln!(out, "<!-- not expressible as identity constraints: -->");
        for c in &export.unsupported {
            let _ = writeln!(out, "<!--   {c} -->");
        }
    }
    Ok(0)
}

fn cmd_render(o: &Opts, out: &mut String) -> Result<i32, String> {
    let [doc_path] = o.positional.as_slice() else {
        return Err("render takes exactly one document".into());
    };
    let doc = parse_document(&read(doc_path)?).map_err(|e| e.to_string())?;
    let opts = RenderOptions {
        show_ids: o.ids,
        ..RenderOptions::default()
    };
    out.push_str(&render_tree(&doc.tree, &opts));
    Ok(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str, content: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("xic-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        std::fs::write(&p, content).unwrap();
        p
    }

    fn call(args: &[&str]) -> (i32, String) {
        let args: Vec<String> = args.iter().map(ToString::to_string).collect();
        let mut out = String::new();
        let code = run(&args, &mut out);
        (code, out)
    }

    const BOOK_DTD: &str = "\
<!ELEMENT book (entry, author*, section*, ref)>
<!ELEMENT entry (title, publisher)>
<!ELEMENT title (#PCDATA)> <!ELEMENT publisher (#PCDATA)>
<!ELEMENT author (#PCDATA)> <!ELEMENT text (#PCDATA)>
<!ELEMENT section (title, (text | section)*)>
<!ELEMENT ref EMPTY>
<!ATTLIST entry isbn CDATA #REQUIRED>
<!ATTLIST section sid CDATA #REQUIRED>
<!ATTLIST ref to NMTOKENS #IMPLIED>";

    const BOOK_SIGMA: &str = "\
entry.isbn -> entry
section.sid -> section
ref.to <=s entry.isbn";

    const GOOD_DOC: &str = r#"<book>
  <entry isbn="x1"><title>T</title><publisher>P</publisher></entry>
  <author>A</author>
  <ref to="x1"/>
</book>"#;

    #[test]
    fn validate_good_and_bad_documents() {
        let dtd = tmp("book.dtd", BOOK_DTD);
        let sigma = tmp("book.sigma", BOOK_SIGMA);
        let good = tmp("good.xml", GOOD_DOC);
        let (code, out) = call(&[
            "validate",
            good.to_str().unwrap(),
            "--dtd",
            dtd.to_str().unwrap(),
            "--root",
            "book",
            "--sigma",
            sigma.to_str().unwrap(),
            "--lang",
            "Lu",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("valid"));

        let bad = tmp(
            "bad.xml",
            r#"<book>
  <entry isbn="x1"><title>T</title><publisher>P</publisher></entry>
  <ref to="dangling"/>
</book>"#,
        );
        let (code, out) = call(&[
            "validate",
            bad.to_str().unwrap(),
            "--dtd",
            dtd.to_str().unwrap(),
            "--root",
            "book",
            "--sigma",
            sigma.to_str().unwrap(),
        ]);
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("dangling"));
    }

    #[test]
    fn validate_threads_flag_is_report_invariant() {
        let dtd = tmp("book6.dtd", BOOK_DTD);
        let sigma = tmp("book6.sigma", BOOK_SIGMA);
        let bad = tmp(
            "bad6.xml",
            r#"<book>
  <entry isbn="x1"><title>T</title><publisher>P</publisher></entry>
  <ref to="dangling"/>
</book>"#,
        );
        let base = [
            "validate",
            bad.to_str().unwrap(),
            "--dtd",
            dtd.to_str().unwrap(),
            "--root",
            "book",
            "--sigma",
            sigma.to_str().unwrap(),
        ];
        let (code1, out1) = call(&base);
        let mut with_threads = base.to_vec();
        with_threads.extend(["--threads", "4"]);
        let (code4, out4) = call(&with_threads);
        assert_eq!(code1, 1);
        assert_eq!((code1, out1), (code4, out4));

        let (code, out) = call(&["validate", "a.xml", "--threads", "nope"]);
        assert_eq!(code, 2, "{out}");
        assert!(out.contains("--threads expects a number"), "{out}");
    }

    #[test]
    fn validate_stream_and_tree_agree_byte_for_byte() {
        let dtd = tmp("book7.dtd", BOOK_DTD);
        let sigma = tmp("book7.sigma", BOOK_SIGMA);
        let bad = tmp(
            "bad7.xml",
            r#"<book>
  <entry isbn="x1"><title>T</title><publisher>P</publisher></entry>
  <entry isbn="x1"><title>T2</title></entry>
  <ref to="dangling"/>
</book>"#,
        );
        let base = [
            "validate",
            bad.to_str().unwrap(),
            "--dtd",
            dtd.to_str().unwrap(),
            "--root",
            "book",
            "--sigma",
            sigma.to_str().unwrap(),
        ];
        // Default is streaming; --stream is the explicit spelling.
        let streamed = call(&base);
        let mut explicit = base.to_vec();
        explicit.push("--stream");
        let mut tree = base.to_vec();
        tree.push("--no-stream");
        assert_eq!(streamed, call(&explicit));
        assert_eq!(streamed, call(&tree));
        assert_eq!(streamed.0, 1, "{}", streamed.1);
        let mut threaded = base.to_vec();
        threaded.extend(["--threads", "4"]);
        assert_eq!(streamed, call(&threaded));
    }

    #[test]
    fn validate_stream_reports_parse_errors_with_positions() {
        let bad = tmp(
            "unclosed.xml",
            &format!("<!DOCTYPE book [\n{BOOK_DTD}\n]>\n<book>\n  <entry>\n</book>"),
        );
        let (code, out) = call(&["validate", bad.to_str().unwrap()]);
        assert_eq!(code, 2, "{out}");
        assert!(out.contains("at 14:7"), "expected line:col position: {out}");
    }

    #[test]
    fn validate_uses_internal_doctype() {
        let doc = tmp(
            "withdtd.xml",
            &format!("<!DOCTYPE book [\n{BOOK_DTD}\n]>\n{GOOD_DOC}"),
        );
        let (code, out) = call(&["validate", doc.to_str().unwrap()]);
        assert_eq!(code, 0, "{out}");
    }

    #[test]
    fn apply_edits_reports_raised_and_cleared_violations() {
        let dtd = tmp("book8.dtd", BOOK_DTD);
        let sigma = tmp("book8.sigma", BOOK_SIGMA);
        let doc = tmp("good8.xml", GOOD_DOC);
        // GOOD_DOC node numbers: 0 book, 1 entry, 2 title, 3 publisher,
        // 4 author, 5 ref.
        let script = tmp(
            "edits8.txt",
            "# break the set-valued foreign key, then repair it\n\
             set-attr 5 to dangling\n\
             set-attr #5 to x1\n",
        );
        let args = [
            "apply-edits",
            doc.to_str().unwrap(),
            script.to_str().unwrap(),
            "--dtd",
            dtd.to_str().unwrap(),
            "--root",
            "book",
            "--sigma",
            sigma.to_str().unwrap(),
        ];
        // Default batched path: the two writes to the same attribute
        // coalesce last-writer-wins, so the transient dangling reference
        // is never materialized and the net diff is empty.
        let (code, out) = call(&args);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("edit: set-attr 5 to dangling"), "{out}");
        assert!(out.contains("batch: 2 edits"), "{out}");
        assert!(!out.contains("+ "), "batched diff should be net: {out}");
        assert!(out.contains("valid"), "{out}");
        // --sequential applies line by line: the dangling reference is
        // raised by the first edit and cleared by the second.
        let mut args = args.to_vec();
        args.push("--sequential");
        let (code, out) = call(&args);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("+ ") && out.contains("dangling"), "{out}");
        assert!(out.contains("- "), "expected the repair to clear: {out}");
        assert!(out.contains("valid"), "{out}");
    }

    #[test]
    fn apply_edits_insert_and_delete_match_fresh_validation() {
        let dtd = tmp("book9.dtd", BOOK_DTD);
        let sigma = tmp("book9.sigma", BOOK_SIGMA);
        let doc = tmp("good9.xml", GOOD_DOC);
        // A second entry with a duplicate isbn violates both the key and
        // book's content model; deleting the original restores validity.
        let script = tmp(
            "edits9.txt",
            "insert 0 1 <entry isbn=\"x1\"><title>T2</title><publisher>P2</publisher></entry>\n",
        );
        let base = [
            "--dtd",
            dtd.to_str().unwrap(),
            "--root",
            "book",
            "--sigma",
            sigma.to_str().unwrap(),
        ];
        let mut args = vec![
            "apply-edits",
            doc.to_str().unwrap(),
            script.to_str().unwrap(),
        ];
        args.extend(base);
        let (code, out) = call(&args);
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("key"), "{out}");

        let script2 = tmp(
            "edits9b.txt",
            "insert 0 1 <entry isbn=\"x1\"><title>T2</title><publisher>P2</publisher></entry>\n\
             delete 1\n",
        );
        let mut args = vec![
            "apply-edits",
            doc.to_str().unwrap(),
            script2.to_str().unwrap(),
        ];
        args.extend(base);
        let (code, out) = call(&args);
        assert_eq!(code, 0, "{out}");
    }

    #[test]
    fn apply_edits_rejects_malformed_scripts() {
        let dtd = tmp("book10.dtd", BOOK_DTD);
        let sigma = tmp("book10.sigma", BOOK_SIGMA);
        let doc = tmp("good10.xml", GOOD_DOC);
        for (name, bad_line, needle) in [
            ("e10a.txt", "frobnicate 1", "unknown edit"),
            ("e10b.txt", "set-attr zap to x1", "bad node id"),
            ("e10c.txt", "set-attr 5 to", "missing value"),
            ("e10d.txt", "delete 99", "unknown vertex"),
            ("e10e.txt", "insert 0 0 <oops", "bad fragment"),
        ] {
            let script = tmp(name, bad_line);
            let (code, out) = call(&[
                "apply-edits",
                doc.to_str().unwrap(),
                script.to_str().unwrap(),
                "--dtd",
                dtd.to_str().unwrap(),
                "--root",
                "book",
                "--sigma",
                sigma.to_str().unwrap(),
            ]);
            assert_eq!(code, 2, "{bad_line}: {out}");
            assert!(out.to_lowercase().contains(needle), "{bad_line}: {out}");
        }
    }

    #[test]
    fn render_ids_flag_numbers_vertices() {
        let doc = tmp("render_ids.xml", GOOD_DOC);
        let (code, out) = call(&["render", doc.to_str().unwrap(), "--ids"]);
        assert_eq!(code, 0);
        assert!(out.contains("#0 book"), "{out}");
        assert!(out.contains("#1 entry"), "{out}");
    }

    #[test]
    fn implies_prints_verified_derivations() {
        let dtd = tmp("book2.dtd", BOOK_DTD);
        let sigma = tmp("book2.sigma", "ref.to <=s entry.isbn");
        // SFK-K: the target of the set-valued FK is a key.
        let (code, out) = call(&[
            "implies",
            "--dtd",
            dtd.to_str().unwrap(),
            "--root",
            "book",
            "--sigma",
            sigma.to_str().unwrap(),
            "--lang",
            "Lu",
            "entry.isbn -> entry",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("yes"));
        assert!(out.contains("SFK-K"), "{out}");

        let (code, out) = call(&[
            "implies",
            "--dtd",
            dtd.to_str().unwrap(),
            "--root",
            "book",
            "--sigma",
            sigma.to_str().unwrap(),
            "--lang",
            "Lu",
            "book.isbn -> book",
        ]);
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("no"));
    }

    #[test]
    fn path_constraints_decide() {
        let dtd = tmp("book3.dtd", BOOK_DTD);
        let sigma = tmp("book3.sigma", BOOK_SIGMA);
        let (code, out) = call(&[
            "path",
            "--dtd",
            dtd.to_str().unwrap(),
            "--root",
            "book",
            "--sigma",
            sigma.to_str().unwrap(),
            "book.entry.isbn -> book.author",
        ]);
        assert_eq!(code, 0, "{out}");
        let (code, _) = call(&[
            "path",
            "--dtd",
            dtd.to_str().unwrap(),
            "--root",
            "book",
            "--sigma",
            sigma.to_str().unwrap(),
            "book.section.sid -> book.author",
        ]);
        assert_eq!(code, 1);
    }

    #[test]
    fn render_outputs_figure2_style() {
        let doc = tmp("render.xml", GOOD_DOC);
        let (code, out) = call(&["render", doc.to_str().unwrap()]);
        assert_eq!(code, 0);
        assert!(out.contains("book"));
        assert!(out.contains("@isbn = \"x1\""));
    }

    #[test]
    fn emit_countermodel_writes_parseable_xml() {
        let dtd = tmp("book4.dtd", BOOK_DTD);
        let sigma = tmp("book4.sigma", BOOK_SIGMA);
        let model_path = std::env::temp_dir()
            .join("xic-cli-tests")
            .join("countermodel.xml");
        let _ = std::fs::remove_file(&model_path);
        let (code, out) = call(&[
            "implies",
            "--dtd",
            dtd.to_str().unwrap(),
            "--root",
            "book",
            "--sigma",
            sigma.to_str().unwrap(),
            "--lang",
            "Lu",
            "--emit-countermodel",
            model_path.to_str().unwrap(),
            "author.text -> author",
        ]);
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("countermodel written"), "{out}");
        let xml = std::fs::read_to_string(&model_path).unwrap();
        let doc = parse_document(&xml).unwrap();
        assert!(doc.tree.len() > 1, "{xml}");
    }

    #[test]
    fn xsd_exports_identity_constraints() {
        let dtd = tmp("book5.dtd", BOOK_DTD);
        let sigma = tmp("book5.sigma", BOOK_SIGMA);
        let (code, out) = call(&[
            "xsd",
            "--dtd",
            dtd.to_str().unwrap(),
            "--root",
            "book",
            "--sigma",
            sigma.to_str().unwrap(),
            "--lang",
            "Lu",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("<xs:key name=\"key_entry_isbn\">"), "{out}");
        assert!(out.contains("not expressible"), "{out}");
        assert!(out.contains("ref.@to <=s entry.@isbn"), "{out}");
    }

    #[test]
    fn snapshot_and_recover_round_trip() {
        let dtd = tmp("book-snap.dtd", BOOK_DTD);
        let sigma = tmp("book-snap.sigma", BOOK_SIGMA);
        let doc = tmp("good-snap.xml", GOOD_DOC);
        let state = std::env::temp_dir().join(format!("xic-cli-state-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&state);
        let flags = [
            "--dtd",
            dtd.to_str().unwrap(),
            "--root",
            "book",
            "--sigma",
            sigma.to_str().unwrap(),
            "--state-dir",
            state.to_str().unwrap(),
        ];

        let mut args = vec!["snapshot", doc.to_str().unwrap()];
        args.extend(flags);
        let (code, out) = call(&args);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("snapshot written:"), "{out}");
        assert!(out.contains("valid"), "{out}");

        // Recovery needs only --sigma and the state dir: the DTD comes
        // back from the per-doc sidecar. The report must be identical to
        // validating the document from scratch.
        let (code, out) = call(&[
            "recover",
            "--sigma",
            sigma.to_str().unwrap(),
            "--state-dir",
            state.to_str().unwrap(),
        ]);
        assert_eq!(code, 0, "{out}");
        let (banner, report) = out.split_once('\n').unwrap();
        assert!(
            banner.contains("recovered doc 'default'") && banner.contains("0 wal batches"),
            "{out}"
        );
        let (vcode, vout) = call(&[
            "validate",
            doc.to_str().unwrap(),
            "--dtd",
            dtd.to_str().unwrap(),
            "--root",
            "book",
            "--sigma",
            sigma.to_str().unwrap(),
        ]);
        assert_eq!(vcode, 0, "{vout}");
        assert_eq!(
            report, vout,
            "recovered report diverged from cold validation"
        );

        // Recovering under a different Σ than the snapshot was taken with
        // is rejected by the plan check, not silently accepted.
        let other = tmp("other-snap.sigma", "entry.isbn -> entry");
        let (code, out) = call(&[
            "recover",
            "--sigma",
            other.to_str().unwrap(),
            "--state-dir",
            state.to_str().unwrap(),
        ]);
        assert_eq!(code, 2, "{out}");
        assert!(out.contains("constraint plan"), "{out}");

        // An id with no persisted state is a clean error.
        let (code, out) = call(&[
            "recover",
            "--sigma",
            sigma.to_str().unwrap(),
            "--state-dir",
            state.to_str().unwrap(),
            "--doc-id",
            "missing",
        ]);
        assert_eq!(code, 2, "{out}");
        assert!(
            out.contains("cannot read") || out.contains("no snapshot"),
            "{out}"
        );
        let _ = std::fs::remove_dir_all(&state);
    }

    #[test]
    fn usage_errors_exit_2() {
        for args in [
            &[] as &[&str],
            &["frobnicate"],
            &["validate"],
            &["validate", "a.xml", "--dtd"],
            &["implies", "x -> y"],
            &["validate", "a.xml", "--bogus"],
            &["snapshot", "a.xml"],
            &["recover"],
            &["serve", "--fsync", "sometimes"],
            &["serve", "--snapshot-every", "nope"],
        ] {
            let (code, out) = call(args);
            assert_eq!(code, 2, "{args:?}: {out}");
            assert!(out.contains("usage:"), "{args:?}");
        }
    }

    #[test]
    fn lid_implies_with_countermodel() {
        let dtd = tmp(
            "company.dtd",
            "<!ELEMENT db (person*, dept*)>
             <!ELEMENT person (name, address)>
             <!ELEMENT name (#PCDATA)> <!ELEMENT address (#PCDATA)>
             <!ELEMENT dname (#PCDATA)> <!ELEMENT dept (dname)>
             <!ATTLIST person oid ID #REQUIRED in_dept IDREFS #IMPLIED>
             <!ATTLIST dept oid ID #REQUIRED manager IDREF #REQUIRED
                            has_staff IDREFS #IMPLIED>",
        );
        let sigma = tmp(
            "company.sigma",
            "person.oid ->id person\ndept.oid ->id dept\ndept.has_staff <=> person.in_dept",
        );
        let (code, out) = call(&[
            "implies",
            "--dtd",
            dtd.to_str().unwrap(),
            "--root",
            "db",
            "--sigma",
            sigma.to_str().unwrap(),
            "--lang",
            "Lid",
            "person.in_dept <=s dept.oid",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("Inv-SFK-ID"), "{out}");

        let (code, out) = call(&[
            "implies",
            "--dtd",
            dtd.to_str().unwrap(),
            "--root",
            "db",
            "--sigma",
            sigma.to_str().unwrap(),
            "--lang",
            "Lid",
            "person.name -> person",
        ]);
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("countermodel"), "{out}");
    }

    /// Runs `validate` on the book fixture with the given extra flags.
    fn validate_book(extra: &[&str]) -> (i32, String) {
        let dtd = tmp("book.dtd", BOOK_DTD);
        let sigma = tmp("book.sigma", BOOK_SIGMA);
        let good = tmp("good.xml", GOOD_DOC);
        let mut args = vec![
            "validate".to_string(),
            good.to_str().unwrap().to_string(),
            "--dtd".into(),
            dtd.to_str().unwrap().to_string(),
            "--root".into(),
            "book".into(),
            "--sigma".into(),
            sigma.to_str().unwrap().to_string(),
        ];
        args.extend(extra.iter().map(ToString::to_string));
        let refs: Vec<&str> = args.iter().map(String::as_str).collect();
        call(&refs)
    }

    /// Extracts and parses the JSON metrics block from CLI output (the
    /// report comes first; the metrics document is the trailing `{...}`).
    fn metrics_of(out: &str) -> Metrics {
        let start = out
            .find('{')
            .unwrap_or_else(|| panic!("no JSON in {out:?}"));
        Metrics::parse_json(out[start..].trim()).unwrap_or_else(|e| panic!("{e}: {out}"))
    }

    #[test]
    fn metrics_json_emits_phase_breakdown() {
        let stream: &[&str] = &["--metrics", "json", "--threads", "1"];
        let tree: &[&str] = &["--metrics", "json", "--threads", "1", "--no-stream"];
        for mode in [stream, tree] {
            let (code, out) = validate_book(mode);
            assert_eq!(code, 0, "{out}");
            let m = metrics_of(&out);
            let phases = ["parse", "structure", "plan", "check", "merge"];
            for p in phases {
                assert!(m.spans.contains_key(p), "missing span {p:?} in {out}");
            }
            // Sequential run: the phases nest inside the wall clock, so
            // their durations sum to at most the wall time.
            let phase_sum: u64 = phases.iter().map(|p| m.span(p).nanos).sum();
            assert!(
                phase_sum <= m.wall_nanos,
                "phase sum {phase_sum} > wall {}",
                m.wall_nanos
            );
            assert!(m.counter("nodes") > 0, "{out}");
            assert!(m.counter("attrs") > 0, "{out}");
            assert_eq!(m.counter("violations"), 0, "{out}");
        }
    }

    #[test]
    fn metrics_json_carries_alloc_totals_when_hooks_are_fed() {
        // The test harness runs without the binary's counting allocator,
        // but the hooks are process-wide statics — feeding them directly
        // exercises the same injection path `xic --metrics json` uses.
        xic::obs::alloc::on_alloc(4096);
        let (code, out) = validate_book(&["--metrics", "json"]);
        assert_eq!(code, 0, "{out}");
        let m = metrics_of(&out);
        assert!(m.counter("alloc.count") > 0, "{out}");
        assert!(m.maximum("alloc.peak") >= 4096, "{out}");
    }

    #[test]
    fn metrics_text_appends_breakdown_without_changing_report() {
        let (plain_code, plain) = validate_book(&[]);
        let (code, out) = validate_book(&["--metrics", "text"]);
        assert_eq!(code, plain_code);
        // The report portion is byte-identical; the metrics block follows.
        assert!(out.starts_with(&plain), "{out:?} vs {plain:?}");
        assert!(out.contains("metrics (wall"), "{out}");
        assert!(out.contains("nodes/s"), "{out}");
    }

    #[test]
    fn metrics_rejects_unknown_format() {
        let (code, out) = validate_book(&["--metrics", "yaml"]);
        assert_eq!(code, 2, "{out}");
        assert!(
            out.contains("--metrics expects text, json or prom"),
            "{out}"
        );
    }

    #[test]
    fn metrics_prom_renders_exposition_format() {
        let (code, out) = validate_book(&["--metrics", "prom", "--threads", "1"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("# TYPE xic_nodes_total counter"), "{out}");
        assert!(out.contains("# TYPE xic_span_seconds summary"), "{out}");
        assert!(
            out.contains("xic_span_seconds_count{span=\"parse\"} 1"),
            "{out}"
        );
        // The check family opts into histograms, so bucket series appear.
        assert!(out.contains("# TYPE xic_check_seconds histogram"), "{out}");
        assert!(
            out.contains("xic_check_seconds_bucket{le=\"+Inf\"} 1"),
            "{out}"
        );
    }

    #[test]
    fn metrics_json_includes_histogram_quantiles() {
        let (code, out) = validate_book(&["--metrics", "json", "--threads", "1"]);
        assert_eq!(code, 0, "{out}");
        let m = metrics_of(&out);
        let h = m.hist("check").expect("check histogram recorded");
        assert_eq!(h.count, 1);
        assert!(h.quantile(0.99) >= h.quantile(0.5));
        assert!(out.contains("\"p99\""), "{out}");
    }

    #[test]
    fn trace_out_writes_loadable_chrome_trace_json() {
        let dir = std::env::temp_dir().join("xic-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        for (name, extra) in [
            ("trace-validate.json", Vec::new()),
            ("trace-validate-metrics.json", vec!["--metrics", "json"]),
        ] {
            let path = dir.join(name);
            let _ = std::fs::remove_file(&path);
            let mut flags = vec!["--trace-out", path.to_str().unwrap(), "--threads", "1"];
            flags.extend(extra);
            let (code, out) = validate_book(&flags);
            assert_eq!(code, 0, "{out}");
            let trace = std::fs::read_to_string(&path).unwrap();
            // Array-form trace-event JSON with the fields the viewers need.
            assert!(trace.starts_with('['), "{trace}");
            assert!(trace.trim_end().ends_with(']'), "{trace}");
            for field in [
                "\"name\"",
                "\"ph\": \"X\"",
                "\"ts\"",
                "\"dur\"",
                "\"pid\"",
                "\"tid\"",
            ] {
                assert!(trace.contains(field), "missing {field} in {trace}");
            }
            assert!(trace.contains("\"check\""), "{trace}");
        }

        // apply-edits records edit spans on the same timeline.
        let dtd = tmp("book.dtd", BOOK_DTD);
        let sigma = tmp("book.sigma", BOOK_SIGMA);
        let doc = tmp("trace-edit.xml", GOOD_DOC);
        let script = tmp("trace-edit.txt", "set-attr 1 isbn x2\n");
        let path = dir.join("trace-edits.json");
        let _ = std::fs::remove_file(&path);
        let (code, out) = call(&[
            "apply-edits",
            doc.to_str().unwrap(),
            script.to_str().unwrap(),
            "--dtd",
            dtd.to_str().unwrap(),
            "--root",
            "book",
            "--sigma",
            sigma.to_str().unwrap(),
            "--trace-out",
            path.to_str().unwrap(),
        ]);
        // The edit dangles the foreign key, so the report is invalid —
        // the trace must be written regardless. The default path applies
        // the script as one batch, so the span is `edit.batch`.
        assert_eq!(code, 1, "{out}");
        let trace = std::fs::read_to_string(&path).unwrap();
        assert!(trace.contains("\"edit.batch\""), "{trace}");
    }

    #[test]
    fn apply_edits_metrics_counts_edits() {
        let dtd = tmp("book.dtd", BOOK_DTD);
        let sigma = tmp("book.sigma", BOOK_SIGMA);
        let doc = tmp("edit-metrics.xml", GOOD_DOC);
        let script = tmp(
            "edit-metrics.txt",
            "set-attr 1 isbn x2\nset-attr 1 isbn x1\n",
        );
        let args = [
            "apply-edits",
            doc.to_str().unwrap(),
            script.to_str().unwrap(),
            "--dtd",
            dtd.to_str().unwrap(),
            "--root",
            "book",
            "--sigma",
            sigma.to_str().unwrap(),
            "--metrics",
            "json",
        ];
        // Batched default: `edits` / `edit.count` are the raw request
        // count, `edit.coalesced` is what survived last-writer-wins (the
        // two writes to the same attribute collapse to one).
        let (code, out) = call(&args);
        assert_eq!(code, 0, "{out}");
        let m = metrics_of(&out);
        assert_eq!(m.counter("edits"), 2, "{out}");
        assert_eq!(m.counter("edit.count"), 2, "{out}");
        assert_eq!(m.counter("edit.coalesced"), 1, "{out}");
        assert!(m.spans.contains_key("edit.batch"), "{out}");
        assert!(m.spans.contains_key("parse"), "{out}");
        // Sequential path: one `edit` span per line, nothing coalesces.
        let mut args = args.to_vec();
        args.push("--sequential");
        let (code, out) = call(&args);
        assert_eq!(code, 0, "{out}");
        let m = metrics_of(&out);
        assert_eq!(m.counter("edits"), 2, "{out}");
        assert!(m.spans.contains_key("edit"), "{out}");
        assert!(m.spans.contains_key("edit.set_attr"), "{out}");
        assert!(m.spans.contains_key("parse"), "{out}");
    }
}
