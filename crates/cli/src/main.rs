//! The `xic` binary: forwards `std::env::args` to [`xic_cli::run`].
//!
//! Also installs the counting global allocator feeding the safe hooks in
//! [`xic::obs::alloc`], so `--metrics` output carries `alloc.count` /
//! `alloc.peak` heap totals for the whole run. The wrapper lives here
//! because every library crate in the workspace is `forbid(unsafe_code)`
//! and a [`GlobalAlloc`] impl cannot be.

use std::alloc::{GlobalAlloc, Layout, System};

/// [`System`] wrapper that reports every heap operation to the
/// process-wide counters in [`xic::obs::alloc`].
struct CountingAlloc;

// SAFETY: defers all allocation to `System` unchanged; the hooks update
// relaxed atomics only and never influence the returned pointers.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            xic::obs::alloc::on_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            xic::obs::alloc::on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        xic::obs::alloc::on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            xic::obs::alloc::on_realloc(layout.size(), new_size);
        }
        p
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = String::new();
    let code = xic_cli::run(&args, &mut out);
    print!("{out}");
    std::process::exit(code);
}
