//! The `xic` binary: forwards `std::env::args` to [`xic_cli::run`].
//!
//! Also installs the counting global allocator feeding the safe hooks in
//! [`xic::obs::alloc`], so `--metrics` output carries `alloc.count` /
//! `alloc.peak` heap totals for the whole run. The wrapper is expanded
//! here (via `install_counting_alloc!`) because every library crate in the
//! workspace is `forbid(unsafe_code)` and a `GlobalAlloc` impl cannot be.

xic::obs::install_counting_alloc!();

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = String::new();
    let code = xic_cli::run(&args, &mut out);
    print!("{out}");
    std::process::exit(code);
}
