//! The `xic` binary: forwards `std::env::args` to [`xic_cli::run`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = String::new();
    let code = xic_cli::run(&args, &mut out);
    print!("{out}");
    std::process::exit(code);
}
