//! `xic serve` — a long-running validation daemon over one document.
//!
//! In the spirit of the hand-rolled JSON codec in `xic-obs`, the HTTP
//! layer is a minimal std-`TcpListener` HTTP/1.1 loop — no external
//! crates, one connection at a time, `Connection: close` on every
//! response. The daemon holds a [`LiveValidator`] over the loaded
//! document, so edits revalidate incrementally (PR 3) and every request
//! is observable (PR 4 + this PR's histograms):
//!
//! | endpoint | behaviour |
//! |----------|-----------|
//! | `GET /report` | the current validation report |
//! | `GET /metrics` | Prometheus text exposition: validator counters, span summaries and latency histogram buckets, merged with the HTTP layer's own collector via [`Metrics::merge`] |
//! | `POST /edits` | body = an `apply-edits` script; applies it as one [`LiveValidator::apply_batch`] (or line by line under `--sequential`) and responds with the ± diff followed by the new report — byte-identical to `xic apply-edits` output on the same script |
//! | `POST /shutdown` | stop accepting and return cleanly |
//!
//! On the default batched path a line that fails to *parse* rejects the
//! whole script with a 400 before anything is applied; a request that is
//! invalid against the document (unknown vertex, missing attribute, …)
//! keeps the staged prefix, exactly as [`LiveValidator::apply_batch`]
//! documents. Under `--sequential` a bad line aborts the script mid-way,
//! keeping the edits already applied. Either way the response names the
//! failing line and `GET /report` shows the resulting state.

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use xic::prelude::*;

use crate::{load_dtdc, parse_opts, read, run_edit_script, Opts};

/// The address `xic serve` binds when `--addr` is absent.
const DEFAULT_ADDR: &str = "127.0.0.1:9100";

/// Entry point of the `serve` subcommand: binds `--addr` (default
/// `127.0.0.1:9100`), announces the address on stdout, and serves until
/// `POST /shutdown`.
pub(crate) fn cmd_serve(o: &Opts, out: &mut String) -> Result<i32, String> {
    let addr = o.addr.as_deref().unwrap_or(DEFAULT_ADDR);
    let listener = TcpListener::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let local = listener.local_addr().map_err(|e| e.to_string())?;
    {
        // `run` only prints `out` after the command returns; a daemon has
        // to announce its address before blocking in the accept loop.
        let mut stdout = std::io::stdout();
        let _ = writeln!(
            stdout,
            "xic serve listening on http://{local} (GET /report, GET /metrics, POST /edits, POST /shutdown)"
        );
        let _ = stdout.flush();
    }
    serve_loop(listener, o)?;
    let _ = writeln!(out, "xic serve: shut down cleanly");
    Ok(0)
}

/// Runs the serve loop on an already-bound listener. `args` is the
/// `serve` subcommand's argument list (document path plus `--dtd`,
/// `--root`, `--sigma`, …); the `--addr` flag is ignored here, since the
/// caller owns the socket. Returns when `POST /shutdown` is received.
///
/// This is the testable surface of the daemon: bind `127.0.0.1:0`
/// yourself, hand the listener over, and talk HTTP to the port you got.
pub fn serve_on(listener: TcpListener, args: &[String]) -> Result<(), String> {
    serve_loop(listener, &parse_opts(args)?)
}

fn serve_loop(listener: TcpListener, o: &Opts) -> Result<(), String> {
    let [doc_path] = o.positional.as_slice() else {
        return Err("serve takes exactly one document".into());
    };
    // Validator-level observability is always on for a daemon — scraping
    // is the point — with latency histograms on the default families.
    let collector = MetricsCollector::shared_with_histograms();
    let obs = Obs::new(collector.clone());
    let doc = {
        let _parse = obs.span("parse");
        parse_document(&read(doc_path)?).map_err(|e| e.to_string())?
    };
    let dtdc = load_dtdc(o, doc.dtd.as_ref(), true)?;
    let mut options = if o.lenient {
        Options::lenient()
    } else {
        Options::default()
    };
    if let Some(threads) = o.threads {
        options = options.with_threads(threads);
    }
    let validator = Validator::with_matcher(&dtdc, MatcherKind::Dfa, options).with_obs(obs.clone());
    let mut live = LiveValidator::new(&validator, doc.tree);

    // The HTTP layer gets its own collector (request counter + latency
    // histogram), merged into the validator's snapshot at scrape time —
    // this is what `Metrics::merge` exists for.
    let http_collector = {
        let mut c = MetricsCollector::new();
        c.set_histogram_families(["http"]);
        Arc::new(c)
    };
    let http_obs = Obs::new(http_collector.clone());

    for conn in listener.incoming() {
        let mut stream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        let span = http_obs.span("http.request");
        http_obs.add("http.requests", 1);
        let request = read_request(&mut stream);
        let shutdown = match request {
            Ok((method, path, body)) => {
                let (status, content_type, payload, stop) = match (method.as_str(), path.as_str()) {
                    ("GET", "/report") => (
                        "200 OK",
                        "text/plain; charset=utf-8",
                        live.report().to_string(),
                        false,
                    ),
                    ("GET", "/metrics") => {
                        let mut m = collector.snapshot();
                        m.merge(&http_collector.snapshot());
                        (
                            "200 OK",
                            "text/plain; version=0.0.4; charset=utf-8",
                            m.to_prometheus(),
                            false,
                        )
                    }
                    ("POST", "/edits") => match apply_edit_script(&mut live, &body, o.sequential) {
                        Ok(rendered) => ("200 OK", "text/plain; charset=utf-8", rendered, false),
                        Err(e) => (
                            "400 Bad Request",
                            "text/plain; charset=utf-8",
                            format!("error: {e}\n"),
                            false,
                        ),
                    },
                    ("POST", "/shutdown") => (
                        "200 OK",
                        "text/plain; charset=utf-8",
                        "shutting down\n".into(),
                        true,
                    ),
                    _ => (
                        "404 Not Found",
                        "text/plain; charset=utf-8",
                        format!("no such endpoint: {method} {path}\n"),
                        false,
                    ),
                };
                respond(&mut stream, status, content_type, &payload);
                stop
            }
            Err(e) => {
                respond(
                    &mut stream,
                    "400 Bad Request",
                    "text/plain; charset=utf-8",
                    &format!("error: {e}\n"),
                );
                false
            }
        };
        span.end();
        if shutdown {
            return Ok(());
        }
    }
    Ok(())
}

/// Plays an edit script against the live document, rendering exactly what
/// `xic apply-edits` prints: the script lines, the batch diff (or per-edit
/// ± diffs when the daemon was started with `--sequential`), then the new
/// report.
fn apply_edit_script(
    live: &mut LiveValidator<'_, '_>,
    script: &str,
    sequential: bool,
) -> Result<String, String> {
    let mut out = String::new();
    run_edit_script(live, script, sequential, &mut out)
        .map_err(|(line, e)| format!("edits line {line}: {e}"))?;
    let _ = write!(out, "{}", live.report());
    Ok(out)
}

/// Reads one HTTP/1.1 request: the request line, headers (only
/// `Content-Length` is interpreted), and exactly that many body bytes.
fn read_request(stream: &mut TcpStream) -> Result<(String, String, String), String> {
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("bad request line: {e}"))?;
    let mut parts = line.split_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Err(format!("malformed request line {line:?}"));
    };
    let (method, path) = (method.to_string(), path.to_string());
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        let n = reader
            .read_line(&mut header)
            .map_err(|e| format!("bad header: {e}"))?;
        let header = header.trim_end();
        if n == 0 || header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad Content-Length {value:?}"))?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("truncated body: {e}"))?;
    let body = String::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    Ok((method, path, body))
}

/// Writes a complete response and closes the write side.
fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
    let _ = stream.shutdown(std::net::Shutdown::Write);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::SocketAddr;
    use std::path::PathBuf;

    fn tmp(name: &str, content: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("xic-serve-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        std::fs::write(&p, content).unwrap();
        p
    }

    const BOOK_DTD: &str = "\
<!ELEMENT book (entry, author*, section*, ref)>
<!ELEMENT entry (title, publisher)>
<!ELEMENT title (#PCDATA)> <!ELEMENT publisher (#PCDATA)>
<!ELEMENT author (#PCDATA)> <!ELEMENT text (#PCDATA)>
<!ELEMENT section (title, (text | section)*)>
<!ELEMENT ref EMPTY>
<!ATTLIST entry isbn CDATA #REQUIRED>
<!ATTLIST section sid CDATA #REQUIRED>
<!ATTLIST ref to NMTOKENS #IMPLIED>";

    const BOOK_SIGMA: &str = "\
entry.isbn -> entry
section.sid -> section
ref.to <=s entry.isbn";

    const GOOD_DOC: &str = r#"<book>
  <entry isbn="x1"><title>T</title><publisher>P</publisher></entry>
  <author>A</author>
  <ref to="x1"/>
</book>"#;

    /// One raw HTTP/1.1 exchange; returns (status line, body).
    fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (String, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        let req = format!(
            "{method} {path} HTTP/1.1\r\nHost: xic\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        s.write_all(req.as_bytes()).unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        let mut response = String::new();
        s.read_to_string(&mut response).unwrap();
        let (head, payload) = response
            .split_once("\r\n\r\n")
            .unwrap_or((response.as_str(), ""));
        let status = head.lines().next().unwrap_or("").to_string();
        (status, payload.to_string())
    }

    /// Binds port 0, starts the daemon on the book fixture, runs `f`
    /// against it, then shuts it down cleanly.
    fn with_daemon(doc: &str, f: impl FnOnce(SocketAddr)) {
        let dtd = tmp("book.dtd", BOOK_DTD);
        let sigma = tmp("book.sigma", BOOK_SIGMA);
        let doc = tmp("doc.xml", doc);
        let args: Vec<String> = [
            doc.to_str().unwrap(),
            "--dtd",
            dtd.to_str().unwrap(),
            "--root",
            "book",
            "--sigma",
            sigma.to_str().unwrap(),
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let daemon = std::thread::spawn(move || serve_on(listener, &args));
        f(addr);
        let (status, _) = http(addr, "POST", "/shutdown", "");
        assert_eq!(status, "HTTP/1.1 200 OK");
        daemon.join().unwrap().unwrap();
    }

    #[test]
    fn report_metrics_and_edits_round_trip() {
        with_daemon(GOOD_DOC, |addr| {
            let (status, report) = http(addr, "GET", "/report", "");
            assert_eq!(status, "HTTP/1.1 200 OK");
            assert!(report.contains("valid"), "{report}");

            // Prometheus exposition: # TYPE headers, counters, histogram
            // series from the edit applied below come in the next scrape.
            let (status, prom) = http(addr, "GET", "/metrics", "");
            assert_eq!(status, "HTTP/1.1 200 OK");
            assert!(prom.contains("# TYPE xic_wall_seconds gauge"), "{prom}");
            assert!(
                prom.contains("# TYPE xic_http_requests_total counter"),
                "{prom}"
            );
            assert!(
                prom.contains("xic_span_seconds_count{span=\"parse\"}"),
                "{prom}"
            );

            // Two edit scripts: break the foreign key, then repair it.
            // Each POST is one batch — in a single script the two writes
            // to the same attribute would coalesce to the net no-op.
            let script = "set-attr 5 to dangling\n";
            let (status, diff) = http(addr, "POST", "/edits", script);
            assert_eq!(status, "HTTP/1.1 200 OK", "{diff}");
            assert!(diff.contains("edit: set-attr 5 to dangling"), "{diff}");
            assert!(diff.contains("batch: 1 edits"), "{diff}");
            assert!(diff.contains("+ "), "{diff}");
            let (status, repair) = http(addr, "POST", "/edits", "set-attr 5 to x1\n");
            assert_eq!(status, "HTTP/1.1 200 OK", "{repair}");
            assert!(repair.contains("- "), "{repair}");
            assert!(repair.contains("valid"), "{repair}");

            // /edits responses match `xic apply-edits` byte-for-byte on
            // the same script against the same starting document.
            let dtd = tmp("book.dtd", BOOK_DTD);
            let sigma = tmp("book.sigma", BOOK_SIGMA);
            let doc = tmp("doc.xml", GOOD_DOC);
            let script_file = tmp("script.txt", script);
            let args: Vec<String> = [
                "apply-edits",
                doc.to_str().unwrap(),
                script_file.to_str().unwrap(),
                "--dtd",
                dtd.to_str().unwrap(),
                "--root",
                "book",
                "--sigma",
                sigma.to_str().unwrap(),
            ]
            .iter()
            .map(ToString::to_string)
            .collect();
            let mut cli_out = String::new();
            // Exit 1: the dangling reference leaves the document invalid.
            assert_eq!(crate::run(&args, &mut cli_out), 1);
            assert_eq!(diff, cli_out, "serve /edits diverged from apply-edits");

            // After the edits, the histogram series are live: each POST
            // ran one `edit.batch` span, and `xic_edits_total` counts the
            // raw (pre-coalescing) requests.
            let (_, prom) = http(addr, "GET", "/metrics", "");
            assert!(
                prom.contains("# TYPE xic_edit_batch_seconds histogram"),
                "{prom}"
            );
            assert!(
                prom.contains("xic_edit_batch_seconds_bucket{le=\"+Inf\"} 2"),
                "{prom}"
            );
            assert!(prom.contains("xic_edit_batch_seconds_count 2"), "{prom}");
            assert!(prom.contains("xic_edits_total 2"), "{prom}");
            assert!(
                prom.contains("# TYPE xic_http_request_seconds histogram"),
                "{prom}"
            );
        });
    }

    #[test]
    fn bad_requests_get_4xx_and_leave_the_daemon_alive() {
        with_daemon(GOOD_DOC, |addr| {
            let (status, body) = http(addr, "GET", "/nope", "");
            assert_eq!(status, "HTTP/1.1 404 Not Found");
            assert!(body.contains("no such endpoint"), "{body}");

            let (status, body) = http(addr, "POST", "/edits", "frobnicate 1\n");
            assert_eq!(status, "HTTP/1.1 400 Bad Request");
            assert!(body.contains("unknown edit"), "{body}");

            // Still serving after the errors.
            let (status, _) = http(addr, "GET", "/report", "");
            assert_eq!(status, "HTTP/1.1 200 OK");
        });
    }

    #[test]
    fn edits_mutate_the_served_document() {
        with_daemon(GOOD_DOC, |addr| {
            let (_, before) = http(addr, "GET", "/report", "");
            assert!(before.contains("valid"), "{before}");
            let (status, _) = http(addr, "POST", "/edits", "set-attr 5 to dangling\n");
            assert_eq!(status, "HTTP/1.1 200 OK");
            let (_, after) = http(addr, "GET", "/report", "");
            assert!(after.contains("dangling"), "{after}");
        });
    }
}
