//! `xic serve` — a multi-tenant validation daemon over a store of
//! documents.
//!
//! The daemon is three layers, all std-only (no external crates):
//!
//! 1. **A concurrent connection layer.** The accept loop feeds a bounded
//!    queue drained by a fixed pool of worker threads; when the queue is
//!    full the accept thread answers `503` on the spot (admission
//!    control under edit bursts). Connections are HTTP/1.1 keep-alive:
//!    every request and response is `Content-Length`-framed (see
//!    [`crate::http`]), so one connection serves many requests. A
//!    per-connection read timeout (`--timeout`) frees a worker from a
//!    stalled client; oversized bodies are refused with `413` before
//!    being read (`--max-body`); malformed request lines and headers get
//!    a `400`, never a silently dropped connection.
//! 2. **A document store.** Documents are keyed by id: `PUT /docs/{id}`
//!    ingests an XML document (its internal `<!DOCTYPE>` subset, or the
//!    server's `--dtd/--root`, supplies the structure; `--sigma` the
//!    constraints), `GET /docs` lists ids, `DELETE /docs/{id}` evicts.
//!    The legacy un-prefixed routes (`GET /report`, `POST /edits`) alias
//!    the doc id `default`, which a positional document on the command
//!    line pre-loads — a one-document invocation behaves exactly as it
//!    did before the store existed.
//! 3. **A sharded validator pool.** Each document's [`LiveValidator`]
//!    is owned by its own *shard* — a dedicated thread holding the
//!    `DtdC`, `Validator` and `LiveValidator` and draining a request
//!    channel. Edits and reports for one doc serialize in channel order
//!    (byte-identical to `xic apply-edits` on the same script sequence),
//!    while requests for different docs run fully in parallel on their
//!    own shards. The channel is also the ownership story: the
//!    validator borrows the `DtdC` on the shard's stack, which no map
//!    of `Mutex`es could express safely.
//!
//! | endpoint | behaviour |
//! |----------|-----------|
//! | `PUT /docs/{id}` | ingest/replace a document; responds `201`/`200` with its validation report |
//! | `GET /docs` | list document ids, one per line |
//! | `GET /docs/{id}/report` | the doc's current validation report |
//! | `POST /docs/{id}/edits` | apply an `apply-edits` script as one batch (or per line under `--sequential`); the response is byte-identical to `xic apply-edits` on the same script |
//! | `DELETE /docs/{id}` | evict the document and stop its shard |
//! | `POST /docs/{id}/snapshot` | write the doc's snapshot now (`400` without `--state-dir`) |
//! | `GET /report`, `POST /edits` | aliases for doc `default` |
//! | `GET /metrics` | Prometheus text exposition: the HTTP layer's collector merged with every doc's collector, each labeled `doc="<id>"` |
//! | `GET /metrics.json` | the same merged snapshot as [`Metrics`] JSON |
//! | `GET /docs/{id}/metrics` | one document's Prometheus exposition, `doc`-labeled exactly as in the merged view (`404` on unknown doc) |
//! | `GET /healthz` | liveness + readiness: `200 ok` while serving, `503 draining` once a drain begins (the process is live either way) |
//! | `GET /status` | JSON introspection: uptime, build version, queue depth/capacity, and per-doc WAL records / `last_seq` / snapshot age from real [`DocStore`]/[`Wal`] state |
//! | `GET /trace` | drain the request-scoped span ring as Chrome trace-event JSON (`400` under `--trace-buffer 0`) |
//! | `POST /shutdown` | drain: stop accepting, serve everything already queued, join workers and shards, exit |
//!
//! **Durability (`--state-dir DIR`).** Each document keeps
//! `DIR/<id>/snapshot.bin` (a versioned, checksummed image of its live
//! validator, published by atomic rename), `wal.log` (acknowledged edit
//! batches, appended *before* they propagate, fsynced per `--fsync`), and
//! `dtd.txt` (the DTD in force, so internal-`<!DOCTYPE>` documents survive
//! restarts). Snapshots are written on ingest, on eviction/shutdown (the
//! shard's exit), on `POST /docs/{id}/snapshot`, and every
//! `--snapshot-every N` acknowledged batches; each snapshot is stamped
//! with the WAL sequence it subsumes and published *before* the log is
//! emptied, so a crash between the two steps only leaves records that
//! recovery skips by sequence. On boot every persisted doc is recovered —
//! snapshot decode + [`LiveValidator::from_state`] + WAL replay — and
//! served warm;
//! `DELETE` evicts the shard but keeps its on-disk state (remove
//! `DIR/<id>/` to forget a document). A corrupt snapshot or WAL record
//! fails the boot with its reason, never silently drops state.
//!
//! Observability: the HTTP layer records `http.requests`, an
//! `http.request` latency histogram, a per-route `http.route.*` family,
//! `serve.queue_wait` (time a connection sat in the accept queue) and
//! `serve.shard_dispatch` (send + reply across the shard channel);
//! each doc shard's collector carries the full validator taxonomy
//! (`parse`, `edit.batch`, `violations.raised`, …) plus a
//! `doc.requests` counter, merged into `/metrics` under its `doc` label.
//!
//! **Request scoping.** Every request gets a monotonic id at read time.
//! The worker holds a [`request_scope`] guard across route dispatch and
//! each shard holds one around every dequeued [`DocRequest`], so all
//! spans either thread records — including `edit.batch`, `wal.append`
//! and `snapshot.write` deep in the shard — land in the shared
//! [`TraceCollector`] ring tagged with that id (`args: {"req": N}` in
//! the Chrome export). `GET /trace` drains the ring live;
//! `--trace-out FILE` writes the final window at shutdown;
//! `--trace-buffer N` sizes the ring (0 disables tracing entirely).
//! `--access-log FILE|-` appends one JSON line per served request on
//! the same ids ([`AccessRecord`]), sampled by `--log-sample N`.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use xic::obs::json::Json;
use xic::obs::{Collector, DEFAULT_TRACE_CAPACITY};
use xic::prelude::*;

use crate::http::{self, HttpError, Request};
use crate::{durable, load_dtdc, parse_opts, parse_script_edit, read, run_edit_script, Opts};

/// The address `xic serve` binds when `--addr` is absent.
const DEFAULT_ADDR: &str = "127.0.0.1:9100";

/// Default cap on request bodies (`--max-body` overrides).
const DEFAULT_MAX_BODY: usize = 16 * 1024 * 1024;

/// Default per-connection read timeout in seconds (`--timeout`).
const DEFAULT_TIMEOUT_SECS: f64 = 10.0;

/// Default bound of the accept queue (`--queue`).
const DEFAULT_QUEUE: usize = 128;

/// The doc id the legacy un-prefixed routes alias.
const DEFAULT_DOC: &str = "default";

/// Entry point of the `serve` subcommand: binds `--addr` (default
/// `127.0.0.1:9100`), announces the address on stdout, and serves until
/// `POST /shutdown`.
pub(crate) fn cmd_serve(o: &Opts, out: &mut String) -> Result<i32, String> {
    let addr = o.addr.as_deref().unwrap_or(DEFAULT_ADDR);
    let listener = TcpListener::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let local = listener.local_addr().map_err(|e| e.to_string())?;
    {
        // `run` only prints `out` after the command returns; a daemon has
        // to announce its address before blocking in the accept loop.
        let mut stdout = std::io::stdout();
        let _ = writeln!(
            stdout,
            "xic serve listening on http://{local} (PUT/GET/DELETE /docs/{{id}}, GET /docs, \
             GET /docs/{{id}}/report, POST /docs/{{id}}/edits, GET /docs/{{id}}/metrics, \
             GET /report, GET /metrics, GET /healthz, GET /status, GET /trace, POST /edits, \
             POST /shutdown)"
        );
        let _ = stdout.flush();
    }
    serve_loop(listener, o)?;
    let _ = writeln!(out, "xic serve: shut down cleanly");
    Ok(0)
}

/// Runs the serve loop on an already-bound listener. `args` is the
/// `serve` subcommand's argument list (an optional document path to
/// pre-load as doc `default`, plus `--dtd`, `--root`, `--sigma`, …); the
/// `--addr` flag is ignored here, since the caller owns the socket.
/// Returns when `POST /shutdown` has drained the daemon.
///
/// This is the testable surface of the daemon: bind `127.0.0.1:0`
/// yourself, hand the listener over, and talk HTTP to the port you got.
pub fn serve_on(listener: TcpListener, args: &[String]) -> Result<(), String> {
    serve_loop(listener, &parse_opts(args)?)
}

/// One request a worker forwards to a document shard. The leading `u64`
/// is the originating HTTP request's id: the shard re-enters its
/// [`request_scope`] before handling, so spans recorded on the shard
/// thread stay attributed across the channel hop.
enum DocRequest {
    /// Render the current validation report.
    Report(u64, SyncSender<String>),
    /// Apply an edit script; `Ok` is the rendered diff + report, `Err`
    /// the script error message.
    Edits(u64, String, SyncSender<Result<String, String>>),
    /// Write the doc's snapshot now (requires `--state-dir`); `Ok` names
    /// the file written, `Err` explains why it could not be.
    Snapshot(u64, SyncSender<Result<String, String>>),
    /// Report the shard's durable-state counters for `GET /status`.
    Status(u64, SyncSender<DocShardStatus>),
}

/// One shard's introspection snapshot, from the state the shard itself
/// owns (its open [`Wal`] handle), not from re-reading disk.
struct DocShardStatus {
    /// Whether the shard persists (`--state-dir`).
    durable: bool,
    /// Complete batches currently in the WAL.
    wal_records: u64,
    /// The sequence number of the last acknowledged batch (survives
    /// snapshot resets — the WAL never rewinds its counter).
    wal_last_seq: u64,
    /// Acknowledged batches since the last snapshot.
    since_snapshot: u64,
}

/// The store's handle on one document shard.
struct DocHandle {
    tx: mpsc::Sender<DocRequest>,
    collector: Arc<MetricsCollector>,
    join: JoinHandle<()>,
}

/// Everything the worker pool shares.
struct Store {
    docs: RwLock<BTreeMap<String, DocHandle>>,
    opts: Arc<Opts>,
    http_collector: Arc<MetricsCollector>,
    http_obs: Obs,
    draining: AtomicBool,
    addr: SocketAddr,
    max_body: usize,
    read_timeout: Duration,
    /// The `--state-dir` document store; `None` runs in-memory only.
    disk: Option<DocStore>,
    /// Auto-snapshot after this many acknowledged batches (0 = only on
    /// ingest, eviction, shutdown and demand).
    snapshot_every: u64,
    /// When the daemon started (uptime in `/status` and `/metrics`).
    started: Instant,
    /// The shared request-scoped span ring (`GET /trace`, `--trace-out`);
    /// `None` under `--trace-buffer 0`.
    trace: Option<Arc<TraceCollector>>,
    /// The JSON-lines access log (`--access-log`); `None` when off.
    access_log: Option<AccessLog>,
    /// The monotonic request-id source (first request gets 1).
    next_req: AtomicU64,
    /// Connections currently sitting in the accept queue.
    queue_depth: AtomicUsize,
    /// The accept queue's bound (`--queue`).
    queue_capacity: usize,
}

/// One accepted connection waiting for a worker, stamped so
/// `serve.queue_wait` can record how long it sat in the queue.
struct WorkItem {
    stream: TcpStream,
    enqueued: Instant,
}

fn serve_loop(listener: TcpListener, o: &Opts) -> Result<(), String> {
    let doc_path = match o.positional.as_slice() {
        [] => None,
        [p] => Some(p.clone()),
        _ => return Err("serve takes at most one document".into()),
    };
    let opts = Arc::new(o.clone());

    // The HTTP layer gets its own collector (request counters + the
    // http.* and serve.* latency histograms), merged with every doc
    // shard's collector at scrape time via `Metrics::merge`.
    let http_collector = {
        let mut c = MetricsCollector::new();
        c.set_histogram_families(["http", "serve"]);
        Arc::new(c)
    };
    // One trace ring shared by the HTTP workers and every shard: request
    // scoping is what keys the interleaved spans back to their request.
    let trace = match o.trace_buffer.unwrap_or(DEFAULT_TRACE_CAPACITY) {
        0 => None,
        n => Some(Arc::new(TraceCollector::with_capacity(n))),
    };
    let http_obs = match &trace {
        Some(tc) => Obs::new(Arc::new(Fanout::new(vec![
            http_collector.clone() as Arc<dyn Collector>,
            tc.clone() as Arc<dyn Collector>,
        ]))),
        None => Obs::new(http_collector.clone()),
    };
    let access_log = match &o.access_log {
        Some(path) => Some(
            AccessLog::open(path, o.log_sample.unwrap_or(1))
                .map_err(|e| format!("cannot open --access-log {path}: {e}"))?,
        ),
        None => None,
    };
    let queue_capacity = o.queue.unwrap_or(DEFAULT_QUEUE).max(1);
    let store = Arc::new(Store {
        docs: RwLock::new(BTreeMap::new()),
        opts: opts.clone(),
        http_obs,
        http_collector,
        draining: AtomicBool::new(false),
        addr: listener.local_addr().map_err(|e| e.to_string())?,
        max_body: o.max_body.unwrap_or(DEFAULT_MAX_BODY),
        read_timeout: Duration::from_secs_f64(o.timeout_secs.unwrap_or(DEFAULT_TIMEOUT_SECS)),
        disk: durable::open_store(o)?,
        snapshot_every: o.snapshot_every.unwrap_or(0),
        started: Instant::now(),
        trace,
        access_log,
        next_req: AtomicU64::new(0),
        queue_depth: AtomicUsize::new(0),
        queue_capacity,
    });

    // Boot recovery: warm-start every document persisted under
    // --state-dir (snapshot + WAL replay) before accepting traffic. A
    // corrupt or unloadable doc fails the boot with its reason — the
    // operator repairs or purges its subdirectory rather than silently
    // serving a partial store.
    if let Some(disk) = &store.disk {
        let ids = disk
            .doc_ids()
            .map_err(|e| format!("scan {}: {e}", disk.root().display()))?;
        for id in ids {
            recover_doc(&store, &id).map_err(|e| format!("recover doc '{id}': {e}"))?;
        }
    }

    // Pre-load the positional document as the `default` doc, so the
    // legacy single-document invocation keeps working unchanged — unless
    // boot recovery already warm-started `default`, in which case the
    // recovered state (which carries every acknowledged edit) wins over
    // re-ingesting the file.
    if let Some(path) = doc_path {
        if store.docs.read().unwrap().contains_key(DEFAULT_DOC) {
            let mut stdout = std::io::stdout();
            let _ = writeln!(
                stdout,
                "xic serve: doc 'default' recovered from --state-dir; ignoring {path}"
            );
            let _ = stdout.flush();
        } else {
            let src = read(&path)?;
            if let (_, Err(e)) = put_doc(&store, DEFAULT_DOC, src) {
                return Err(e
                    .trim_end()
                    .strip_prefix("error: ")
                    .unwrap_or(&e)
                    .to_string());
            }
        }
    }

    // Fixed worker pool over a bounded accept queue.
    let workers = o
        .http_threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .clamp(2, 8)
        })
        .max(1);
    let (work_tx, work_rx) = mpsc::sync_channel::<WorkItem>(store.queue_capacity);
    let work_rx = Arc::new(Mutex::new(work_rx));
    let pool: Vec<JoinHandle<()>> = (0..workers)
        .map(|_| {
            let store = store.clone();
            let work_rx = work_rx.clone();
            std::thread::spawn(move || loop {
                // Receiver behind a mutex: std's receiver is not Clone,
                // and the handoff is a tiny fraction of request service
                // time. recv errors once the accept loop drops the
                // sender and the queue is drained — the drain contract.
                let item = match work_rx.lock().unwrap().recv() {
                    Ok(item) => item,
                    Err(_) => break,
                };
                store.queue_depth.fetch_sub(1, Ordering::Relaxed);
                serve_connection(&store, item);
            })
        })
        .collect();

    for conn in listener.incoming() {
        let Ok(stream) = conn else { continue };
        if store.draining.load(Ordering::SeqCst) {
            // The wake connection `POST /shutdown` makes (or any later
            // arrival): stop accepting.
            break;
        }
        let item = WorkItem {
            stream,
            enqueued: Instant::now(),
        };
        store.queue_depth.fetch_add(1, Ordering::Relaxed);
        match work_tx.try_send(item) {
            Ok(()) => {}
            Err(TrySendError::Full(item)) => {
                store.queue_depth.fetch_sub(1, Ordering::Relaxed);
                // Admission control: the queue is full, shed the new
                // connection immediately rather than wedging the accept
                // loop behind slow workers.
                store.http_obs.add("http.rejected", 1);
                let mut s = item.stream;
                let _ = http::write_response(
                    &mut s,
                    "503 Service Unavailable",
                    "text/plain; charset=utf-8",
                    "server busy: accept queue full, retry\n",
                    false,
                );
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }

    // Drain: no new accepts; everything already queued is still served.
    drop(work_tx);
    for w in pool {
        let _ = w.join();
    }
    // Stop the shards: dropping every sender ends each shard's loop.
    let docs = std::mem::take(&mut *store.docs.write().unwrap());
    for (_, handle) in docs {
        drop(handle.tx);
        let _ = handle.join.join();
    }
    // Continuous export: persist whatever the ring still holds (events
    // since the last `GET /trace` drain, including the shards' exit
    // snapshots joined above).
    if let (Some(path), Some(tc)) = (&o.trace_out, &store.trace) {
        std::fs::write(path, tc.to_chrome_json())
            .map_err(|e| format!("cannot write --trace-out {path}: {e}"))?;
    }
    // Every worker has exited: drain the access log's buffered tail.
    if let Some(log) = &store.access_log {
        log.flush();
    }
    Ok(())
}

/// Serves one connection until the client closes, errs, times out, or a
/// drain begins: the keep-alive loop of one worker.
fn serve_connection(store: &Store, item: WorkItem) {
    let WorkItem { stream, enqueued } = item;
    // The queue wait is paid once per connection but attributed to the
    // *first request* served on it, so the span lands inside that
    // request's scope (and its access-log line) instead of floating
    // unattributed before the request even exists.
    let mut queue_wait = Some(u64::try_from(enqueued.elapsed().as_nanos()).unwrap_or(u64::MAX));
    let _ = stream.set_read_timeout(Some(store.read_timeout));
    let _ = stream.set_nodelay(true);
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    loop {
        let req = match http::read_request(&mut reader, store.max_body) {
            Ok(req) => req,
            Err(HttpError::Closed) | Err(HttpError::Timeout) | Err(HttpError::Io(_)) => return,
            Err(HttpError::Malformed(m)) => {
                // A broken request still deserves a framed answer; the
                // connection closes because framing may be lost.
                let _ = http::write_response(
                    &mut writer,
                    "400 Bad Request",
                    "text/plain; charset=utf-8",
                    &format!("error: {m}\n"),
                    false,
                );
                return;
            }
            Err(HttpError::TooLarge { declared, limit }) => {
                let _ = http::write_response(
                    &mut writer,
                    "413 Payload Too Large",
                    "text/plain; charset=utf-8",
                    &format!("error: body of {declared} bytes exceeds --max-body {limit}\n"),
                    false,
                );
                return;
            }
        };
        // Everything recorded until the guard drops — by this worker or
        // by a shard processing this request — carries this id.
        let rid = store.next_req.fetch_add(1, Ordering::Relaxed) + 1;
        let scope = request_scope(rid);
        let qw = queue_wait.take();
        if let Some(nanos) = qw {
            store.http_obs.record_span("serve.queue_wait", nanos);
        }
        let span = store.http_obs.span("http.request");
        store.http_obs.add("http.requests", 1);
        let handled = Instant::now();
        let resp = route(store, &req);
        let handler_nanos = u64::try_from(handled.elapsed().as_nanos()).unwrap_or(u64::MAX);
        // The route is only known after dispatch, so the per-route family
        // is recorded as an elapsed duration rather than a live span.
        store.http_obs.record_span(resp.route, handler_nanos);
        span.end();
        drop(scope);
        if let Some(log) = &store.access_log {
            log.record(&AccessRecord {
                req: rid,
                doc: doc_of(&req.path),
                method: req.method.clone(),
                path: req.path.clone(),
                route: resp.route.to_string(),
                status: status_code(resp.status),
                bytes_in: req.body.len() as u64,
                bytes_out: resp.body.len() as u64,
                queue_wait_nanos: qw.unwrap_or(0),
                handler_nanos,
            });
        }
        // Close at a response boundary once draining: in-flight requests
        // complete, idle reuse does not outlive the drain.
        let keep = req.keep_alive && !resp.shutdown && !store.draining.load(Ordering::SeqCst);
        let ok = http::write_response(
            &mut writer,
            resp.status,
            resp.content_type,
            &resp.body,
            keep,
        )
        .is_ok();
        if resp.shutdown {
            begin_drain(store);
        }
        if !keep || !ok {
            return;
        }
    }
}

/// The numeric status of a `"200 OK"`-style status line.
fn status_code(status: &str) -> u16 {
    status
        .split_whitespace()
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// The document a path addresses: `/docs/{id}...` names `{id}`, the
/// legacy aliases name `default`, anything else is `""`.
fn doc_of(path: &str) -> String {
    match path {
        "/report" | "/edits" => DEFAULT_DOC.to_string(),
        _ => match path.strip_prefix("/docs/") {
            Some(rest) if !rest.is_empty() => {
                rest.split('/').next().unwrap_or_default().to_string()
            }
            _ => String::new(),
        },
    }
}

/// Flags the drain and wakes the accept loop with a throwaway
/// connection so it observes the flag without another client arriving.
fn begin_drain(store: &Store) {
    store.draining.store(true, Ordering::SeqCst);
    let _ = TcpStream::connect(store.addr);
}

/// A routed response, tagged with the `http.route.*` span that counts
/// it and whether it triggers the drain.
struct Response {
    status: &'static str,
    content_type: &'static str,
    body: String,
    route: &'static str,
    shutdown: bool,
}

impl Response {
    fn text(status: &'static str, route: &'static str, body: String) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body,
            route,
            shutdown: false,
        }
    }
}

/// Validates a document id: non-empty, `[A-Za-z0-9._-]`.
fn valid_id(id: &str) -> bool {
    !id.is_empty()
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
}

/// Dispatches one parsed request against the store.
fn route(store: &Store, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/report") => doc_report(store, DEFAULT_DOC),
        ("POST", "/edits") => doc_edits(store, DEFAULT_DOC, &req.body),
        ("GET", "/docs") => {
            let ids: String = store
                .docs
                .read()
                .unwrap()
                .keys()
                .map(|id| format!("{id}\n"))
                .collect();
            Response::text("200 OK", "http.route.docs", ids)
        }
        ("GET", "/metrics") => Response {
            status: "200 OK",
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: merged_metrics(store).to_prometheus(),
            route: "http.route.metrics",
            shutdown: false,
        },
        ("GET", "/metrics.json") => Response {
            status: "200 OK",
            content_type: "application/json; charset=utf-8",
            body: merged_metrics(store).to_json(),
            route: "http.route.metrics",
            shutdown: false,
        },
        ("POST", "/shutdown") => Response {
            status: "200 OK",
            content_type: "text/plain; charset=utf-8",
            body: "shutting down\n".into(),
            route: "http.route.shutdown",
            shutdown: true,
        },
        ("GET", "/healthz") => healthz(store),
        ("GET", "/status") => status_json(store),
        ("GET", "/trace") => trace_json(store),
        (method, path) => {
            if let Some(rest) = path.strip_prefix("/docs/") {
                if let (Some(id), "GET") = (rest.strip_suffix("/report"), method) {
                    return doc_report(store, id);
                }
                if let (Some(id), "POST") = (rest.strip_suffix("/edits"), method) {
                    return doc_edits(store, id, &req.body);
                }
                if let (Some(id), "POST") = (rest.strip_suffix("/snapshot"), method) {
                    return doc_snapshot(store, id);
                }
                if let (Some(id), "GET") = (rest.strip_suffix("/metrics"), method) {
                    return doc_metrics(store, id);
                }
                if !rest.contains('/') {
                    match method {
                        "PUT" => {
                            let (status, body) = put_doc(store, rest, req.body.clone());
                            let (status, body) = match body {
                                Ok(report) => (status, report),
                                Err(e) => ("400 Bad Request", e),
                            };
                            return Response::text(status, "http.route.put_doc", body);
                        }
                        "DELETE" => return delete_doc(store, rest),
                        _ => {}
                    }
                }
                // No /docs/ shape matched. A malformed suffix — invalid
                // id characters, an empty id, extra path segments, an
                // unknown action — is the client's error (400); a
                // well-formed path with the wrong method or no handler
                // is plain not-found (404), so 404 rates stay alertable
                // without malformed-request noise.
                let (id, action) = match rest.rsplit_once('/') {
                    Some((id, action)) => (id, Some(action)),
                    None => (rest, None),
                };
                let known_action = matches!(
                    action,
                    None | Some("report" | "edits" | "snapshot" | "metrics")
                );
                if !(valid_id(id) && known_action) {
                    return Response::text(
                        "400 Bad Request",
                        "http.route.bad_request",
                        format!("malformed /docs path: {method} {path}\n"),
                    );
                }
            }
            Response::text(
                "404 Not Found",
                "http.route.not_found",
                format!("no such endpoint: {method} {path}\n"),
            )
        }
    }
}

/// `GET /healthz`: liveness is answering at all; readiness flips to 503
/// once a drain begins, so load balancers stop routing to a daemon that
/// is finishing its queue.
fn healthz(store: &Store) -> Response {
    if store.draining.load(Ordering::SeqCst) {
        Response::text(
            "503 Service Unavailable",
            "http.route.healthz",
            "live: ok\nready: draining\n".into(),
        )
    } else {
        Response::text(
            "200 OK",
            "http.route.healthz",
            "live: ok\nready: ok\n".into(),
        )
    }
}

/// `GET /trace`: drain the shared span ring as Chrome trace-event JSON.
fn trace_json(store: &Store) -> Response {
    match &store.trace {
        Some(tc) => Response {
            status: "200 OK",
            content_type: "application/json; charset=utf-8",
            body: tc.drain_chrome_json(),
            route: "http.route.trace",
            shutdown: false,
        },
        None => Response::text(
            "400 Bad Request",
            "http.route.trace",
            "error: request tracing disabled (--trace-buffer 0)\n".into(),
        ),
    }
}

/// `GET /docs/{id}/metrics`: one document's Prometheus exposition, with
/// the same `doc` label the merged `/metrics` view applies.
fn doc_metrics(store: &Store, id: &str) -> Response {
    let snapshot = store
        .docs
        .read()
        .unwrap()
        .get(id)
        .map(|handle| handle.collector.snapshot().with_label("doc", id));
    match snapshot {
        Some(m) => Response {
            status: "200 OK",
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: m.to_prometheus(),
            route: "http.route.doc_metrics",
            shutdown: false,
        },
        None => Response::text(
            "404 Not Found",
            "http.route.doc_metrics",
            format!("no such document: {id}\n"),
        ),
    }
}

/// Asks `id`'s shard for its durable-state counters.
fn doc_status(store: &Store, id: &str) -> Option<DocShardStatus> {
    let tx = store.docs.read().unwrap().get(id)?.tx.clone();
    let (reply_tx, reply_rx) = mpsc::sync_channel(1);
    let span = store.http_obs.span("serve.shard_dispatch");
    tx.send(DocRequest::Status(current_request(), reply_tx))
        .ok()?;
    let reply = reply_rx.recv().ok();
    span.end();
    reply
}

/// `GET /status`: live daemon introspection as JSON — uptime and build
/// info, accept-queue occupancy, and per-doc durable state (WAL records
/// and `last_seq` from the shard's open handle, snapshot size/age from
/// disk metadata).
fn status_json(store: &Store) -> Response {
    let ids: Vec<String> = store.docs.read().unwrap().keys().cloned().collect();
    let mut docs = Vec::new();
    for id in &ids {
        let Some(st) = doc_status(store, id) else {
            continue; // evicted or died between listing and asking
        };
        let mut pairs = vec![("id".into(), Json::String(id.clone()))];
        if st.durable {
            pairs.push(("wal_records".into(), Json::Number(st.wal_records as f64)));
            pairs.push(("wal_last_seq".into(), Json::Number(st.wal_last_seq as f64)));
            pairs.push((
                "since_snapshot".into(),
                Json::Number(st.since_snapshot as f64),
            ));
        }
        if let Some(disk) = &store.disk {
            if let Ok(Some(snap)) = disk.snapshot_stats(id) {
                let age = snap.modified.elapsed().unwrap_or_default().as_secs();
                pairs.push(("snapshot_bytes".into(), Json::Number(snap.bytes as f64)));
                pairs.push(("snapshot_age_seconds".into(), Json::Number(age as f64)));
            }
        }
        docs.push(Json::Object(pairs));
    }
    let draining = store.draining.load(Ordering::SeqCst);
    let body = Json::Object(vec![
        (
            "version".into(),
            Json::String(env!("CARGO_PKG_VERSION").into()),
        ),
        (
            "uptime_seconds".into(),
            Json::Number(store.started.elapsed().as_secs() as f64),
        ),
        ("ready".into(), Json::Bool(!draining)),
        ("draining".into(), Json::Bool(draining)),
        (
            "queue".into(),
            Json::Object(vec![
                (
                    "depth".into(),
                    Json::Number(store.queue_depth.load(Ordering::Relaxed) as f64),
                ),
                ("capacity".into(), Json::Number(store.queue_capacity as f64)),
            ]),
        ),
        (
            "docs".into(),
            Json::Object(vec![
                ("count".into(), Json::Number(docs.len() as f64)),
                ("resident".into(), Json::Array(docs)),
            ]),
        ),
    ]);
    Response {
        status: "200 OK",
        content_type: "application/json; charset=utf-8",
        body: body.render(),
        route: "http.route.status",
        shutdown: false,
    }
}

/// The merged scrape: the HTTP layer's snapshot plus each doc's
/// collector snapshot labeled `doc="<id>"`, with daemon-level gauges
/// stamped in at scrape time (maxima render as plain Prometheus gauges):
/// `xic_build_info{version="…"} 1`, `xic_uptime_seconds`, accept-queue
/// occupancy, and per-doc snapshot age from disk metadata.
fn merged_metrics(store: &Store) -> Metrics {
    let mut m = store.http_collector.snapshot();
    for (id, handle) in store.docs.read().unwrap().iter() {
        m.merge(&handle.collector.snapshot().with_label("doc", id));
    }
    m.maxima.insert(
        format!("build.info#version={}", env!("CARGO_PKG_VERSION")),
        1,
    );
    m.maxima
        .insert("uptime.seconds".into(), store.started.elapsed().as_secs());
    m.maxima.insert(
        "serve.queue_depth".into(),
        store.queue_depth.load(Ordering::Relaxed) as u64,
    );
    m.maxima
        .insert("serve.queue_capacity".into(), store.queue_capacity as u64);
    if let Some(disk) = &store.disk {
        let ids: Vec<String> = store.docs.read().unwrap().keys().cloned().collect();
        for id in ids {
            if let Ok(Some(snap)) = disk.snapshot_stats(&id) {
                let age = snap.modified.elapsed().unwrap_or_default().as_secs();
                m.maxima
                    .insert(format!("snapshot.age_seconds#doc={id}"), age);
            }
        }
    }
    m
}

/// Ingests (or replaces) document `id` from `src`. On success the shard
/// is registered and the body is its initial validation report; `Err`
/// carries a rendered `400` body. The bool-ish status distinguishes
/// create (`201`) from replace (`200`).
fn put_doc(store: &Store, id: &str, src: String) -> (&'static str, Result<String, String>) {
    if !valid_id(id) {
        return (
            "400 Bad Request",
            Err(format!(
                "error: bad document id {id:?} (allowed: [A-Za-z0-9._-]+)\n"
            )),
        );
    }
    // Durable replace: stop the old shard (it writes its exit snapshot)
    // *before* the new shard resets the doc's on-disk state — otherwise
    // the old shard's final snapshot could clobber the new document.
    let mut replaced = false;
    if store.disk.is_some() {
        if let Some(prev) = store.docs.write().unwrap().remove(id) {
            drop(prev.tx);
            let _ = prev.join.join();
            replaced = true;
        }
    }
    let handle = match start_shard(store, id, ShardInit::Cold(src)) {
        Ok(handle) => handle,
        Err((status, e)) => return (status, Err(format!("error: {e}\n"))),
    };
    let prev = store.docs.write().unwrap().insert(id.to_string(), handle);
    let status = if let Some(prev) = prev {
        drop(prev.tx);
        let _ = prev.join.join();
        "200 OK"
    } else if replaced {
        "200 OK"
    } else {
        "201 Created"
    };
    match shard_report(store, id) {
        Some(report) => (status, Ok(report)),
        None => (
            "500 Internal Server Error",
            Err("error: document shard died after load\n".into()),
        ),
    }
}

/// How a shard obtains its initial validator state.
enum ShardInit {
    /// Parse and validate this XML source from scratch (a `PUT`).
    Cold(String),
    /// Warm-start from the `--state-dir` snapshot + WAL (boot recovery).
    Warm,
}

/// Spawns a document shard and waits for it to load. `Err` carries the
/// HTTP status the failure maps to plus the reason.
fn start_shard(
    store: &Store,
    id: &str,
    init: ShardInit,
) -> Result<DocHandle, (&'static str, String)> {
    let collector = MetricsCollector::shared_with_histograms();
    let (tx, rx) = mpsc::channel();
    let (ready_tx, ready_rx) = mpsc::sync_channel(1);
    let join = {
        let opts = store.opts.clone();
        let collector = collector.clone();
        let trace = store.trace.clone();
        let id = id.to_string();
        let disk = store.disk.clone().map(|d| (d, store.snapshot_every));
        std::thread::spawn(move || {
            run_doc_shard(init, id, &opts, disk, collector, trace, rx, ready_tx)
        })
    };
    match ready_rx.recv() {
        Ok(Ok(())) => Ok(DocHandle {
            tx,
            collector,
            join,
        }),
        Ok(Err(e)) => {
            let _ = join.join();
            Err(("400 Bad Request", e))
        }
        Err(_) => Err((
            "500 Internal Server Error",
            "document shard died during load".into(),
        )),
    }
}

/// Boot recovery of one persisted document: warm-start its shard from
/// the snapshot + WAL and register it in the store.
fn recover_doc(store: &Store, id: &str) -> Result<(), String> {
    let handle = start_shard(store, id, ShardInit::Warm).map_err(|(_, e)| e)?;
    store.docs.write().unwrap().insert(id.to_string(), handle);
    Ok(())
}

/// Evicts document `id`, joining its shard.
fn delete_doc(store: &Store, id: &str) -> Response {
    let handle = store.docs.write().unwrap().remove(id);
    match handle {
        Some(handle) => {
            drop(handle.tx);
            let _ = handle.join.join();
            Response::text("200 OK", "http.route.delete_doc", format!("deleted {id}\n"))
        }
        None => Response::text(
            "404 Not Found",
            "http.route.delete_doc",
            format!("no such document: {id}\n"),
        ),
    }
}

/// Asks `id`'s shard for its report; `None` when the doc is absent or
/// its shard died.
fn shard_report(store: &Store, id: &str) -> Option<String> {
    let tx = store.docs.read().unwrap().get(id)?.tx.clone();
    let (reply_tx, reply_rx) = mpsc::sync_channel(1);
    let span = store.http_obs.span("serve.shard_dispatch");
    tx.send(DocRequest::Report(current_request(), reply_tx))
        .ok()?;
    let reply = reply_rx.recv().ok();
    span.end();
    reply
}

fn doc_report(store: &Store, id: &str) -> Response {
    match shard_report(store, id) {
        Some(report) => Response::text("200 OK", "http.route.report", report),
        None => Response::text(
            "404 Not Found",
            "http.route.report",
            format!("no such document: {id}\n"),
        ),
    }
}

fn doc_edits(store: &Store, id: &str, script: &str) -> Response {
    let tx = match store.docs.read().unwrap().get(id) {
        Some(handle) => handle.tx.clone(),
        None => {
            return Response::text(
                "404 Not Found",
                "http.route.edits",
                format!("no such document: {id}\n"),
            )
        }
    };
    let (reply_tx, reply_rx) = mpsc::sync_channel(1);
    let span = store.http_obs.span("serve.shard_dispatch");
    if tx
        .send(DocRequest::Edits(
            current_request(),
            script.to_string(),
            reply_tx,
        ))
        .is_err()
    {
        return Response::text(
            "404 Not Found",
            "http.route.edits",
            format!("no such document: {id}\n"),
        );
    }
    let reply = reply_rx.recv();
    span.end();
    match reply {
        Ok(Ok(rendered)) => Response::text("200 OK", "http.route.edits", rendered),
        Ok(Err(e)) => Response::text(
            "400 Bad Request",
            "http.route.edits",
            format!("error: {e}\n"),
        ),
        Err(_) => Response::text(
            "500 Internal Server Error",
            "http.route.edits",
            "error: document shard died\n".into(),
        ),
    }
}

/// Asks `id`'s shard to write its snapshot now.
fn doc_snapshot(store: &Store, id: &str) -> Response {
    let tx = match store.docs.read().unwrap().get(id) {
        Some(handle) => handle.tx.clone(),
        None => {
            return Response::text(
                "404 Not Found",
                "http.route.snapshot",
                format!("no such document: {id}\n"),
            )
        }
    };
    let (reply_tx, reply_rx) = mpsc::sync_channel(1);
    let span = store.http_obs.span("serve.shard_dispatch");
    if tx
        .send(DocRequest::Snapshot(current_request(), reply_tx))
        .is_err()
    {
        return Response::text(
            "404 Not Found",
            "http.route.snapshot",
            format!("no such document: {id}\n"),
        );
    }
    let reply = reply_rx.recv();
    span.end();
    match reply {
        Ok(Ok(body)) => Response::text("200 OK", "http.route.snapshot", body),
        Ok(Err(e)) => Response::text(
            "400 Bad Request",
            "http.route.snapshot",
            format!("error: {e}\n"),
        ),
        Err(_) => Response::text(
            "500 Internal Server Error",
            "http.route.snapshot",
            "error: document shard died\n".into(),
        ),
    }
}

/// The body of one document shard: owns the `DtdC` → `Validator` →
/// [`LiveValidator`] chain on its stack (the borrow chain that cannot
/// live in a shared map) and serializes every request for its document
/// in channel order. Exits when the store drops the last sender.
#[allow(clippy::too_many_arguments)]
fn run_doc_shard(
    init: ShardInit,
    id: String,
    opts: &Opts,
    disk: Option<(DocStore, u64)>,
    collector: Arc<MetricsCollector>,
    trace: Option<Arc<TraceCollector>>,
    rx: Receiver<DocRequest>,
    ready: SyncSender<Result<(), String>>,
) {
    // The shard's aggregates stay per-doc (merged into /metrics under its
    // label), while its raw spans additionally feed the daemon-wide trace
    // ring, tagged by whatever request scope is active when they close.
    let obs = match trace {
        Some(tc) => Obs::new(Arc::new(Fanout::new(vec![
            collector as Arc<dyn Collector>,
            tc as Arc<dyn Collector>,
        ]))),
        None => Obs::new(collector),
    };
    // Either path ends with the `DtdC` on this stack plus a starting
    // state for the validator borrowing it.
    enum Start {
        Cold(DataTree),
        Warm(Box<Recovered>),
    }
    let (dtdc, start) = match init {
        ShardInit::Cold(src) => {
            let doc = {
                let _parse = obs.span("parse");
                match parse_document(&src) {
                    Ok(doc) => doc,
                    Err(e) => {
                        let _ = ready.send(Err(e.to_string()));
                        return;
                    }
                }
            };
            match load_dtdc(opts, doc.dtd.as_ref(), true) {
                Ok(d) => (d, Start::Cold(doc.tree)),
                Err(e) => {
                    let _ = ready.send(Err(e));
                    return;
                }
            }
        }
        ShardInit::Warm => {
            // A warm shard is only ever spawned by boot recovery, which
            // requires --state-dir.
            let Some((store, _)) = disk.as_ref() else {
                let _ = ready.send(Err("warm start requires --state-dir".into()));
                return;
            };
            match durable::load_doc(opts, store, &id) {
                Ok((dtdc, recovered)) => (dtdc, Start::Warm(Box::new(recovered))),
                Err(e) => {
                    let _ = ready.send(Err(e));
                    return;
                }
            }
        }
    };
    let mut options = if opts.lenient {
        Options::lenient()
    } else {
        Options::default()
    };
    if let Some(threads) = opts.threads {
        options = options.with_threads(threads);
    }
    let validator = Validator::with_matcher(&dtdc, MatcherKind::Dfa, options).with_obs(obs.clone());
    let (mut live, mut sdisk) = match start {
        Start::Cold(tree) => {
            let live = LiveValidator::new(&validator, tree);
            // Durable mode persists the ingested document before the PUT
            // is acknowledged: open the WAL (learning the highest sequence
            // any leftover records carry), publish the snapshot atomically
            // stamped with that sequence — so a crash before the reset
            // below leaves only records the snapshot subsumes, which
            // recovery skips — then empty the log, then the DTD sidecar.
            let sdisk = match disk {
                Some((store, snapshot_every)) => {
                    let persisted = (|| {
                        let mut wal = store.open_wal(&id).map_err(|e| e.to_string())?;
                        let state = live.export_state();
                        let snap = store.snapshot_path(&id).map_err(|e| e.to_string())?;
                        {
                            let _span = obs.span("snapshot.write");
                            write_snapshot(&snap, &state, wal.last_seq())
                                .map_err(|e| e.to_string())?;
                        }
                        wal.reset().map_err(|e| e.to_string())?;
                        obs.add("snapshot.writes", 1);
                        durable::write_meta(&store, &id, dtdc.structure())?;
                        Ok::<ShardDisk, String>(ShardDisk {
                            store,
                            id: id.clone(),
                            wal,
                            snapshot_every,
                            since_snapshot: 0,
                        })
                    })();
                    match persisted {
                        Ok(d) => Some(d),
                        Err(e) => {
                            let _ = ready.send(Err(format!("persist: {e}")));
                            return;
                        }
                    }
                }
                None => None,
            };
            (live, sdisk)
        }
        Start::Warm(recovered) => {
            let (store, snapshot_every) = disk.expect("warm start checked --state-dir above");
            let Recovered {
                state,
                batches,
                wal,
                ..
            } = *recovered;
            let span = obs.span("recover.replay");
            let mut live = match LiveValidator::from_state(&validator, state) {
                Ok(live) => live,
                Err(e) => {
                    let _ = ready.send(Err(e.to_string()));
                    return;
                }
            };
            for batch in &batches {
                if let Err(e) = live.apply_batch(batch) {
                    let _ = ready.send(Err(format!("wal replay: {}", e.error)));
                    return;
                }
            }
            span.end();
            obs.add("recover.replays", 1);
            obs.add("recover.batches", batches.len() as u64);
            let since_snapshot = batches.len() as u64;
            (
                live,
                Some(ShardDisk {
                    store,
                    id: id.clone(),
                    wal,
                    snapshot_every,
                    since_snapshot,
                }),
            )
        }
    };
    let _ = ready.send(Ok(()));
    while let Ok(req) = rx.recv() {
        obs.add("doc.requests", 1);
        // Re-enter the originating request's scope for the whole handling
        // — a shard serves one request at a time, so every span it (or
        // the validator/WAL code it calls) records belongs to this id.
        match req {
            DocRequest::Report(rid, reply) => {
                let _scope = request_scope(rid);
                let _ = reply.send(live.report().to_string());
            }
            DocRequest::Edits(rid, script, reply) => {
                let _scope = request_scope(rid);
                let _ = reply.send(apply_edit_script(
                    &mut live,
                    &script,
                    opts.sequential,
                    sdisk.as_mut(),
                    &obs,
                ));
            }
            DocRequest::Snapshot(rid, reply) => {
                let _scope = request_scope(rid);
                let _ = reply.send(match sdisk.as_mut() {
                    Some(d) => snapshot_now(&live, d, &obs)
                        .map(|path| format!("snapshot written: {path}\n")),
                    None => Err("daemon is running without --state-dir".into()),
                });
            }
            DocRequest::Status(rid, reply) => {
                let _scope = request_scope(rid);
                let _ = reply.send(match sdisk.as_ref() {
                    Some(d) => DocShardStatus {
                        durable: true,
                        wal_records: d.wal.records(),
                        wal_last_seq: d.wal.last_seq(),
                        since_snapshot: d.since_snapshot,
                    },
                    None => DocShardStatus {
                        durable: false,
                        wal_records: 0,
                        wal_last_seq: 0,
                        since_snapshot: 0,
                    },
                });
            }
        }
    }
    // The store dropped the last sender: the doc is being evicted or the
    // daemon is draining. Persist the final state so the next boot
    // warm-starts from a fresh snapshot and an empty WAL (best-effort —
    // the WAL already holds every acknowledged batch if this fails).
    if let Some(d) = sdisk.as_mut() {
        let _ = snapshot_now(&live, d, &obs);
    }
}

/// One shard's durable context under `--state-dir`.
struct ShardDisk {
    store: DocStore,
    id: String,
    wal: Wal,
    snapshot_every: u64,
    /// Acknowledged batches since the last snapshot (includes batches
    /// replayed from the WAL at warm start — they are still in the log).
    since_snapshot: u64,
}

/// Writes the shard's snapshot and empties its WAL (through the shard's
/// own handle, keeping its append position in lockstep). The snapshot is
/// stamped with the WAL's last acknowledged sequence and published before
/// the log reset, so a crash between the two steps leaves only records
/// the snapshot subsumes — recovery skips them by sequence. Returns the
/// snapshot path written.
fn snapshot_now(
    live: &LiveValidator<'_, '_>,
    disk: &mut ShardDisk,
    obs: &Obs,
) -> Result<String, String> {
    let state = live.export_state();
    let snap = disk
        .store
        .snapshot_path(&disk.id)
        .map_err(|e| e.to_string())?;
    {
        let _span = obs.span("snapshot.write");
        write_snapshot(&snap, &state, disk.wal.last_seq()).map_err(|e| e.to_string())?;
    }
    disk.wal.reset().map_err(|e| e.to_string())?;
    obs.add("snapshot.writes", 1);
    disk.since_snapshot = 0;
    Ok(snap.display().to_string())
}

/// Plays an edit script against the live document, rendering exactly what
/// `xic apply-edits` prints: the script lines, the batch diff (or per-edit
/// ± diffs when the daemon was started with `--sequential`), then the new
/// report.
///
/// Under `--state-dir` the script's edits are appended to the WAL *before*
/// they propagate: once the client sees the `200`, the batch is on disk.
/// A script error leaves the log holding exactly the prefix that was
/// applied (lines before the failing one), so replay always reproduces
/// the in-memory state.
fn apply_edit_script(
    live: &mut LiveValidator<'_, '_>,
    script: &str,
    sequential: bool,
    disk: Option<&mut ShardDisk>,
    obs: &Obs,
) -> Result<String, String> {
    let disk_and_batch = match disk {
        Some(disk) => {
            // Pre-parse so the whole script can be logged up front; the
            // same parse inside `run_edit_script` yields the same errors,
            // so a malformed line is rejected here before anything
            // touches disk.
            let mut edits: Vec<(usize, BatchEdit)> = Vec::new();
            for (idx, raw) in script.lines().enumerate() {
                let line = raw.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                let edit =
                    parse_script_edit(line).map_err(|e| format!("edits line {}: {e}", idx + 1))?;
                edits.push((idx + 1, edit));
            }
            let mark = disk.wal.mark();
            if !edits.is_empty() {
                let batch: Vec<BatchEdit> = edits.iter().map(|(_, e)| e.clone()).collect();
                let span = obs.span("wal.append");
                disk.wal
                    .append(&batch)
                    .map_err(|e| format!("wal append: {e}"))?;
                span.end();
                obs.add("wal.records", 1);
            }
            Some((disk, mark, edits))
        }
        None => None,
    };
    let mut out = String::new();
    if let Err((line, e)) = run_edit_script(live, script, sequential, &mut out) {
        if let Some((disk, mark, edits)) = disk_and_batch {
            // Only the lines before the failing one were applied; rewrite
            // the log to hold exactly that prefix.
            disk.wal
                .rollback(mark)
                .map_err(|re| format!("wal rollback: {re} (after edits line {line}: {e})"))?;
            let applied: Vec<BatchEdit> = edits
                .iter()
                .filter(|(l, _)| *l < line)
                .map(|(_, edit)| edit.clone())
                .collect();
            if !applied.is_empty() {
                disk.wal
                    .append(&applied)
                    .map_err(|ae| format!("wal rewrite: {ae} (after edits line {line}: {e})"))?;
            }
        }
        return Err(format!("edits line {line}: {e}"));
    }
    let _ = write!(out, "{}", live.report());
    if let Some((disk, _, _)) = disk_and_batch {
        disk.since_snapshot += 1;
        if disk.snapshot_every > 0 && disk.since_snapshot >= disk.snapshot_every {
            snapshot_now(live, disk, obs).map_err(|e| format!("snapshot: {e}"))?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::HttpClient;
    use std::path::PathBuf;

    fn tmp(name: &str, content: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("xic-serve-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        std::fs::write(&p, content).unwrap();
        p
    }

    const BOOK_DTD: &str = "\
<!ELEMENT book (entry, author*, section*, ref)>
<!ELEMENT entry (title, publisher)>
<!ELEMENT title (#PCDATA)> <!ELEMENT publisher (#PCDATA)>
<!ELEMENT author (#PCDATA)> <!ELEMENT text (#PCDATA)>
<!ELEMENT section (title, (text | section)*)>
<!ELEMENT ref EMPTY>
<!ATTLIST entry isbn CDATA #REQUIRED>
<!ATTLIST section sid CDATA #REQUIRED>
<!ATTLIST ref to NMTOKENS #IMPLIED>";

    const BOOK_SIGMA: &str = "\
entry.isbn -> entry
section.sid -> section
ref.to <=s entry.isbn";

    const GOOD_DOC: &str = r#"<book>
  <entry isbn="x1"><title>T</title><publisher>P</publisher></entry>
  <author>A</author>
  <ref to="x1"/>
</book>"#;

    /// One keep-alive HTTP exchange on a fresh connection; returns
    /// (status code, body).
    fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
        let mut c = HttpClient::connect(addr, Duration::from_secs(30)).unwrap();
        c.request(method, path, body).unwrap()
    }

    /// The book fixture's CLI flags (shared by the daemon and the
    /// `apply-edits` byte-identity cross-checks).
    fn book_flags() -> Vec<String> {
        let dtd = tmp("book.dtd", BOOK_DTD);
        let sigma = tmp("book.sigma", BOOK_SIGMA);
        [
            "--dtd",
            dtd.to_str().unwrap(),
            "--root",
            "book",
            "--sigma",
            sigma.to_str().unwrap(),
        ]
        .iter()
        .map(ToString::to_string)
        .collect()
    }

    /// Binds port 0, starts the daemon on the book fixture (pre-loaded
    /// as doc `default`) with `extra` flags, runs `f` against it, then
    /// shuts it down cleanly.
    fn with_daemon(doc: &str, extra: &[&str], f: impl FnOnce(SocketAddr)) {
        let doc = tmp("doc.xml", doc);
        let mut args = vec![doc.to_str().unwrap().to_string()];
        args.extend(book_flags());
        args.extend(extra.iter().map(ToString::to_string));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let daemon = std::thread::spawn(move || serve_on(listener, &args));
        f(addr);
        let (status, _) = http(addr, "POST", "/shutdown", "");
        assert_eq!(status, 200);
        daemon.join().unwrap().unwrap();
    }

    #[test]
    fn report_metrics_and_edits_round_trip() {
        with_daemon(GOOD_DOC, &[], |addr| {
            let (status, report) = http(addr, "GET", "/report", "");
            assert_eq!(status, 200);
            assert!(report.contains("valid"), "{report}");

            // Prometheus exposition: # TYPE headers, counters, and the
            // default doc's series labeled doc="default".
            let (status, prom) = http(addr, "GET", "/metrics", "");
            assert_eq!(status, 200);
            assert!(prom.contains("# TYPE xic_wall_seconds gauge"), "{prom}");
            assert!(
                prom.contains("# TYPE xic_http_requests_total counter"),
                "{prom}"
            );
            assert!(
                prom.contains("xic_span_seconds_count{span=\"parse\",doc=\"default\"}"),
                "{prom}"
            );
            assert!(
                prom.contains("xic_doc_requests_total{doc=\"default\"}"),
                "{prom}"
            );

            // Two edit scripts: break the foreign key, then repair it.
            // Each POST is one batch — in a single script the two writes
            // to the same attribute would coalesce to the net no-op.
            let script = "set-attr 5 to dangling\n";
            let (status, diff) = http(addr, "POST", "/edits", script);
            assert_eq!(status, 200, "{diff}");
            assert!(diff.contains("edit: set-attr 5 to dangling"), "{diff}");
            assert!(diff.contains("batch: 1 edits"), "{diff}");
            assert!(diff.contains("+ "), "{diff}");
            let (status, repair) = http(addr, "POST", "/edits", "set-attr 5 to x1\n");
            assert_eq!(status, 200, "{repair}");
            assert!(repair.contains("- "), "{repair}");
            assert!(repair.contains("valid"), "{repair}");

            // /edits responses match `xic apply-edits` byte-for-byte on
            // the same script against the same starting document.
            let doc = tmp("doc.xml", GOOD_DOC);
            let script_file = tmp("script.txt", script);
            let mut args = vec![
                "apply-edits".to_string(),
                doc.to_str().unwrap().to_string(),
                script_file.to_str().unwrap().to_string(),
            ];
            args.extend(book_flags());
            let mut cli_out = String::new();
            // Exit 1: the dangling reference leaves the document invalid.
            assert_eq!(crate::run(&args, &mut cli_out), 1);
            assert_eq!(diff, cli_out, "serve /edits diverged from apply-edits");

            // After the edits, the histogram series are live: each POST
            // ran one `edit.batch` span on the default doc's shard, and
            // the HTTP layer recorded per-route histograms.
            let (_, prom) = http(addr, "GET", "/metrics", "");
            assert!(
                prom.contains("# TYPE xic_edit_batch_seconds histogram"),
                "{prom}"
            );
            assert!(
                prom.contains("xic_edit_batch_seconds_bucket{doc=\"default\",le=\"+Inf\"} 2"),
                "{prom}"
            );
            assert!(
                prom.contains("xic_edits_total{doc=\"default\"} 2"),
                "{prom}"
            );
            assert!(
                prom.contains("# TYPE xic_http_request_seconds histogram"),
                "{prom}"
            );
            assert!(
                prom.contains("# TYPE xic_http_route_edits_seconds histogram"),
                "{prom}"
            );
            assert!(
                prom.contains("# TYPE xic_serve_queue_wait_seconds histogram"),
                "{prom}"
            );

            // The same snapshot as JSON, parseable back into Metrics.
            let (status, json) = http(addr, "GET", "/metrics.json", "");
            assert_eq!(status, 200);
            let m = Metrics::parse_json(&json).unwrap();
            assert!(m.hist("http.request").unwrap().count > 0, "{json}");
            assert_eq!(m.counter("edits#doc=default"), 2, "{json}");
        });
    }

    #[test]
    fn bad_requests_get_4xx_and_leave_the_daemon_alive() {
        with_daemon(GOOD_DOC, &[], |addr| {
            let (status, body) = http(addr, "GET", "/nope", "");
            assert_eq!(status, 404);
            assert!(body.contains("no such endpoint"), "{body}");

            let (status, body) = http(addr, "POST", "/edits", "frobnicate 1\n");
            assert_eq!(status, 400);
            assert!(body.contains("unknown edit"), "{body}");

            let (status, body) = http(addr, "GET", "/docs/ghost/report", "");
            assert_eq!(status, 404);
            assert!(body.contains("no such document"), "{body}");

            let (status, _) = http(addr, "DELETE", "/docs/ghost", "");
            assert_eq!(status, 404);

            let (status, body) = http(addr, "PUT", "/docs/bad%20id", "<x/>");
            assert_eq!(status, 400);
            assert!(body.contains("bad document id"), "{body}");

            // Still serving after the errors.
            let (status, _) = http(addr, "GET", "/report", "");
            assert_eq!(status, 200);
        });
    }

    #[test]
    fn edits_mutate_the_served_document() {
        with_daemon(GOOD_DOC, &[], |addr| {
            let (_, before) = http(addr, "GET", "/report", "");
            assert!(before.contains("valid"), "{before}");
            let (status, _) = http(addr, "POST", "/edits", "set-attr 5 to dangling\n");
            assert_eq!(status, 200);
            let (_, after) = http(addr, "GET", "/report", "");
            assert!(after.contains("dangling"), "{after}");
        });
    }

    #[test]
    fn document_store_crud_round_trip() {
        with_daemon(GOOD_DOC, &[], |addr| {
            // One keep-alive connection drives the whole exchange.
            let mut c = HttpClient::connect(addr, Duration::from_secs(30)).unwrap();
            let with_dtd = format!("<!DOCTYPE book [\n{BOOK_DTD}\n]>\n{GOOD_DOC}");
            let (status, report) = c.request("PUT", "/docs/a", &with_dtd).unwrap();
            assert_eq!(status, 201, "{report}");
            assert!(report.contains("valid"), "{report}");
            // Replacing an existing doc is 200, not 201.
            let (status, _) = c.request("PUT", "/docs/a", &with_dtd).unwrap();
            assert_eq!(status, 200);
            let (status, _) = c.request("PUT", "/docs/b", &with_dtd).unwrap();
            assert_eq!(status, 201);

            let (status, ids) = c.request("GET", "/docs", "").unwrap();
            assert_eq!(status, 200);
            assert_eq!(ids, "a\nb\ndefault\n");

            // Doc-scoped report and edits; the default doc is untouched.
            let (status, r) = c.request("GET", "/docs/a/report", "").unwrap();
            assert_eq!(status, 200);
            assert!(r.contains("valid"), "{r}");
            let (status, diff) = c
                .request("POST", "/docs/a/edits", "set-attr 5 to dangling\n")
                .unwrap();
            assert_eq!(status, 200, "{diff}");
            assert!(diff.contains("+ "), "{diff}");
            let (_, r) = c.request("GET", "/docs/a/report", "").unwrap();
            assert!(r.contains("dangling"), "{r}");
            let (_, r) = c.request("GET", "/docs/default/report", "").unwrap();
            assert!(r.contains("valid (0 violations)"), "{r}");

            // Per-doc metrics labels for both tenants.
            let (_, prom) = c.request("GET", "/metrics", "").unwrap();
            assert!(prom.contains("xic_edits_total{doc=\"a\"} 1"), "{prom}");
            assert!(prom.contains("xic_doc_requests_total{doc=\"b\"}"), "{prom}");

            let (status, body) = c.request("DELETE", "/docs/a", "").unwrap();
            assert_eq!(status, 200);
            assert!(body.contains("deleted a"), "{body}");
            let (status, _) = c.request("GET", "/docs/a/report", "").unwrap();
            assert_eq!(status, 404);
            let (_, ids) = c.request("GET", "/docs", "").unwrap();
            assert_eq!(ids, "b\ndefault\n");
        });
    }

    #[test]
    fn put_rejects_documents_that_do_not_load() {
        with_daemon(GOOD_DOC, &[], |addr| {
            let (status, body) = http(addr, "PUT", "/docs/broken", "<book><unclosed>");
            assert_eq!(status, 400);
            assert!(body.contains("error: "), "{body}");
            let (_, ids) = http(addr, "GET", "/docs", "");
            assert_eq!(ids, "default\n");
        });
    }

    #[test]
    fn oversized_and_malformed_requests_get_framed_errors() {
        with_daemon(GOOD_DOC, &["--max-body", "64"], |addr| {
            // 413 before the body is read.
            let (status, body) = http(addr, "POST", "/edits", &"x".repeat(65));
            assert_eq!(status, 413, "{body}");
            assert!(body.contains("--max-body 64"), "{body}");

            // A garbage request line gets a framed 400, not a dropped
            // connection.
            use std::io::{Read, Write};
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"THIS IS NOT HTTP\r\n\r\n").unwrap();
            let mut resp = String::new();
            s.read_to_string(&mut resp).unwrap();
            assert!(resp.starts_with("HTTP/1.1 400 Bad Request"), "{resp}");

            // Small bodies still fit under the 64-byte cap.
            let (status, _) = http(addr, "GET", "/report", "");
            assert_eq!(status, 200);
        });
    }

    #[test]
    fn stalled_connections_time_out_without_wedging_workers() {
        with_daemon(
            GOOD_DOC,
            &["--timeout", "0.2", "--http-threads", "1"],
            |addr| {
                // A client that connects and sends nothing: with one worker,
                // only the read timeout can free the daemon to serve others.
                let stalled = TcpStream::connect(addr).unwrap();
                let start = Instant::now();
                let (status, _) = http(addr, "GET", "/report", "");
                assert_eq!(status, 200);
                assert!(
                    start.elapsed() >= Duration::from_millis(100),
                    "expected the stalled client to hold the worker briefly"
                );
                drop(stalled);
            },
        );
    }

    /// The report portion of an `apply-edits` CLI run: everything after
    /// the echoed script lines and the ± batch diff.
    fn report_of(cli_out: &str) -> String {
        let mut at = 0;
        for line in cli_out.lines() {
            if line.starts_with("edit: ") || line.starts_with("batch: ") || line.starts_with("  ") {
                at += line.len() + 1;
            } else {
                break;
            }
        }
        cli_out[at..].to_string()
    }

    #[test]
    fn same_doc_concurrent_edits_serialize_to_the_sequential_report() {
        // Two clients hammer the same document concurrently. Each owns a
        // disjoint attribute, so the final tree is the same whatever the
        // interleaving — but only because the shard serializes the edits;
        // a lost update would leave a stale value or a torn report.
        const ROUNDS: usize = 25;
        with_daemon(GOOD_DOC, &["--http-threads", "4"], |addr| {
            let writer = move |attr_node: &'static str, prefix: &'static str| {
                let mut c = HttpClient::connect(addr, Duration::from_secs(30)).unwrap();
                for i in 0..ROUNDS {
                    let script = format!("set-attr {attr_node} {prefix}{i}\n");
                    let (status, body) = c.request("POST", "/edits", &script).unwrap();
                    assert_eq!(status, 200, "{body}");
                }
            };
            let a = std::thread::spawn(move || writer("1 isbn", "a"));
            let b = std::thread::spawn(move || writer("5 to", "b"));
            a.join().unwrap();
            b.join().unwrap();
            let (status, served) = http(addr, "GET", "/report", "");
            assert_eq!(status, 200);

            // The equivalent sequential script: all of A's edits, then all
            // of B's, replayed by `xic apply-edits` from the same start.
            let mut script = String::new();
            for i in 0..ROUNDS {
                let _ = writeln!(script, "set-attr 1 isbn a{i}");
            }
            for i in 0..ROUNDS {
                let _ = writeln!(script, "set-attr 5 to b{i}");
            }
            let doc = tmp("doc.xml", GOOD_DOC);
            let script_file = tmp("concurrent-sequential.txt", &script);
            let mut args = vec![
                "apply-edits".to_string(),
                doc.to_str().unwrap().to_string(),
                script_file.to_str().unwrap().to_string(),
            ];
            args.extend(book_flags());
            let mut cli_out = String::new();
            crate::run(&args, &mut cli_out);
            assert_eq!(
                served,
                report_of(&cli_out),
                "concurrent serve diverged from the sequential apply-edits run"
            );
        });
    }

    #[test]
    fn different_docs_succeed_in_parallel_under_contention() {
        with_daemon(GOOD_DOC, &["--http-threads", "4"], |addr| {
            let with_dtd = format!("<!DOCTYPE book [\n{BOOK_DTD}\n]>\n{GOOD_DOC}");
            for id in ["a", "b"] {
                let (status, _) = http(addr, "PUT", &format!("/docs/{id}"), &with_dtd);
                assert_eq!(status, 201);
            }
            let hammer = move |id: &'static str| {
                let mut c = HttpClient::connect(addr, Duration::from_secs(30)).unwrap();
                for i in 0..25 {
                    let script = format!("set-attr 5 to {id}{i}\n");
                    let (status, body) = c
                        .request("POST", &format!("/docs/{id}/edits"), &script)
                        .unwrap();
                    assert_eq!(status, 200, "{body}");
                }
            };
            let a = std::thread::spawn(move || hammer("a"));
            let b = std::thread::spawn(move || hammer("b"));
            a.join().unwrap();
            b.join().unwrap();
            // Each doc saw only its own client's writes.
            let (_, ra) = http(addr, "GET", "/docs/a/report", "");
            let (_, rb) = http(addr, "GET", "/docs/b/report", "");
            assert!(ra.contains("a24"), "{ra}");
            assert!(rb.contains("b24"), "{rb}");
            assert!(!ra.contains("b24"), "{ra}");
            let (_, prom) = http(addr, "GET", "/metrics", "");
            assert!(prom.contains("xic_edits_total{doc=\"a\"} 25"), "{prom}");
            assert!(prom.contains("xic_edits_total{doc=\"b\"} 25"), "{prom}");
        });
    }

    #[test]
    fn shutdown_during_edit_burst_loses_no_accepted_request() {
        // Clients burst keep-alive edits while a shutdown lands mid-burst.
        // The drain contract: every request the daemon accepted is served
        // in full — a client sees either a complete response or a clean
        // close at a response boundary, never a truncated one.
        let doc = tmp("doc.xml", GOOD_DOC);
        let mut args = vec![doc.to_str().unwrap().to_string()];
        args.extend(book_flags());
        args.extend(["--http-threads".to_string(), "2".to_string()]);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let daemon = std::thread::spawn(move || serve_on(listener, &args));

        let burst = move |tag: &'static str| -> u64 {
            use std::io::ErrorKind;
            let clean = |k: ErrorKind| {
                matches!(
                    k,
                    ErrorKind::UnexpectedEof
                        | ErrorKind::ConnectionReset
                        | ErrorKind::ConnectionAborted
                        | ErrorKind::ConnectionRefused
                        | ErrorKind::BrokenPipe
                )
            };
            let mut served = 0u64;
            'outer: for round in 0..50 {
                let mut c = match HttpClient::connect(addr, Duration::from_secs(30)) {
                    Ok(c) => c,
                    Err(e) if clean(e.kind()) => break,
                    Err(e) => panic!("{tag}: unexpected connect error {e}"),
                };
                for i in 0..20 {
                    let script = format!("set-attr 5 to {tag}{round}x{i}\n");
                    match c.request("POST", "/edits", &script) {
                        Ok((200, _)) => served += 1,
                        Ok((status, body)) => panic!("{tag}: unexpected {status}: {body}"),
                        Err(e) if clean(e.kind()) => break 'outer,
                        // Any other error is a response lost mid-frame.
                        Err(e) => panic!("{tag}: truncated response: {e}"),
                    }
                }
            }
            served
        };
        let clients: Vec<_> = ["c0", "c1", "c2", "c3"]
            .into_iter()
            .map(|tag| std::thread::spawn(move || burst(tag)))
            .collect();
        std::thread::sleep(Duration::from_millis(60));
        let (status, body) = http(addr, "POST", "/shutdown", "");
        assert_eq!(status, 200, "{body}");

        let mut total = 0;
        for c in clients {
            total += c.join().unwrap();
        }
        assert!(total > 0, "burst never got going before the shutdown");
        // The daemon drained and exited cleanly.
        daemon.join().unwrap().unwrap();
    }

    /// A fresh, empty state directory unique to this test run.
    fn fresh_state_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::AtomicU64;
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "xic-serve-state-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::SeqCst)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn state_dir_restart_preserves_edited_state() {
        let state = fresh_state_dir("restart");
        let state_s = state.to_str().unwrap().to_string();
        let mut expected = String::new();
        with_daemon(GOOD_DOC, &["--state-dir", &state_s], |addr| {
            let (status, body) = http(addr, "POST", "/edits", "set-attr 5 to dangling\n");
            assert_eq!(status, 200, "{body}");
            let (_, report) = http(addr, "GET", "/report", "");
            assert!(report.contains("dangling"), "{report}");
            expected = report;

            // The durability path shows up in the merged scrape: the WAL
            // append latency histogram and the snapshot counter.
            let (_, prom) = http(addr, "GET", "/metrics", "");
            assert!(prom.contains("xic_wal_append_seconds"), "{prom}");
            assert!(
                prom.contains("xic_snapshot_writes_total{doc=\"default\"}"),
                "{prom}"
            );
        });
        // Same command line again: boot recovery warm-starts `default`
        // from the exit snapshot, and the recovered (edited) state wins
        // over re-ingesting the pristine positional document.
        with_daemon(GOOD_DOC, &["--state-dir", &state_s], |addr| {
            let (status, report) = http(addr, "GET", "/report", "");
            assert_eq!(status, 200);
            assert_eq!(
                report, expected,
                "warm start diverged from pre-restart state"
            );
            let (status, body) = http(addr, "POST", "/docs/default/snapshot", "");
            assert_eq!(status, 200, "{body}");
            assert!(body.contains("snapshot written:"), "{body}");
            let (status, _) = http(addr, "POST", "/edits", "set-attr 5 to x1\n");
            assert_eq!(status, 200);
        });
        let _ = std::fs::remove_dir_all(&state);
    }

    #[test]
    fn wal_batches_replay_on_boot() {
        let state = fresh_state_dir("walreplay");
        let state_s = state.to_str().unwrap().to_string();
        // Run A persists the pristine document and shuts down cleanly.
        with_daemon(GOOD_DOC, &["--state-dir", &state_s], |addr| {
            let (status, _) = http(addr, "GET", "/report", "");
            assert_eq!(status, 200);
        });
        // Emulate a crash after an acknowledged edit but before any
        // snapshot: append the batch to the WAL exactly as the daemon
        // would have, leaving the snapshot stale.
        let disk = DocStore::open(&state, FsyncPolicy::Always).unwrap();
        let mut wal = disk.open_wal("default").unwrap();
        wal.append(&[BatchEdit::SetAttr {
            node: NodeId::from_index(5),
            attr: "to".into(),
            value: AttrValue::single("dangling"),
        }])
        .unwrap();
        drop(wal);
        // Run B must replay the logged batch on top of the snapshot.
        with_daemon(GOOD_DOC, &["--state-dir", &state_s], |addr| {
            let (status, report) = http(addr, "GET", "/report", "");
            assert_eq!(status, 200);
            assert!(report.contains("dangling"), "{report}");
        });
        let _ = std::fs::remove_dir_all(&state);
    }

    #[test]
    fn snapshot_endpoint_requires_state_dir() {
        with_daemon(GOOD_DOC, &[], |addr| {
            let (status, body) = http(addr, "POST", "/docs/default/snapshot", "");
            assert_eq!(status, 400, "{body}");
            assert!(body.contains("--state-dir"), "{body}");
            let (status, _) = http(addr, "POST", "/docs/ghost/snapshot", "");
            assert_eq!(status, 404);
        });
    }

    #[test]
    fn put_docs_survive_restart_even_after_delete() {
        let state = fresh_state_dir("multidoc");
        let state_s = state.to_str().unwrap().to_string();
        with_daemon(GOOD_DOC, &["--state-dir", &state_s], |addr| {
            // An internal-DOCTYPE document: its structure must survive the
            // restart through the dtd.txt sidecar.
            let with_dtd = format!("<!DOCTYPE book [\n{BOOK_DTD}\n]>\n{GOOD_DOC}");
            let (status, _) = http(addr, "PUT", "/docs/a", &with_dtd);
            assert_eq!(status, 201);
            let (status, body) = http(addr, "POST", "/docs/a/edits", "set-attr 5 to dangling\n");
            assert_eq!(status, 200, "{body}");
            // DELETE evicts the shard (writing its exit snapshot) but
            // keeps the on-disk state.
            let (status, _) = http(addr, "DELETE", "/docs/a", "");
            assert_eq!(status, 200);
            let (_, ids) = http(addr, "GET", "/docs", "");
            assert_eq!(ids, "default\n");
        });
        with_daemon(GOOD_DOC, &["--state-dir", &state_s], |addr| {
            let (_, ids) = http(addr, "GET", "/docs", "");
            assert_eq!(ids, "a\ndefault\n");
            let (status, report) = http(addr, "GET", "/docs/a/report", "");
            assert_eq!(status, 200);
            assert!(report.contains("dangling"), "{report}");
        });
        let _ = std::fs::remove_dir_all(&state);
    }

    #[test]
    fn keep_alive_serves_many_requests_per_connection() {
        with_daemon(GOOD_DOC, &[], |addr| {
            let mut c = HttpClient::connect(addr, Duration::from_secs(30)).unwrap();
            for _ in 0..5 {
                let (status, report) = c.request("GET", "/report", "").unwrap();
                assert_eq!(status, 200);
                assert!(report.contains("valid"), "{report}");
            }
            let (_, prom) = c.request("GET", "/metrics", "").unwrap();
            // All six requests so far arrived on one connection: exactly
            // one queue_wait sample against six http.request samples.
            let count = |needle: &str| -> u64 {
                prom.lines()
                    .find(|l| l.starts_with(needle) && !l.starts_with('#'))
                    .and_then(|l| l.rsplit(' ').next())
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("missing {needle} in {prom}"))
            };
            assert_eq!(count("xic_serve_queue_wait_seconds_count"), 1, "{prom}");
            assert_eq!(count("xic_http_requests_total"), 6, "{prom}");
        });
    }

    /// `GET /status`, parsed.
    fn fetch_status(addr: SocketAddr) -> Json {
        let (status, body) = http(addr, "GET", "/status", "");
        assert_eq!(status, 200, "{body}");
        xic::obs::json::parse(&body).unwrap()
    }

    /// The `docs.resident` entry for `id` in a parsed `/status` body.
    fn resident<'a>(status: &'a Json, id: &str) -> &'a Json {
        status
            .get("docs")
            .unwrap()
            .get("resident")
            .unwrap()
            .as_array("resident")
            .unwrap()
            .iter()
            .find(|d| d.get("id").unwrap().as_str("id").unwrap() == id)
            .unwrap_or_else(|| panic!("doc {id} missing from /status"))
    }

    fn num(v: &Json, key: &str) -> u64 {
        v.get(key)
            .unwrap_or_else(|| panic!("{key} missing"))
            .as_u64(key)
            .unwrap()
    }

    #[test]
    fn healthz_status_and_daemon_gauges_report_live_state() {
        with_daemon(GOOD_DOC, &[], |addr| {
            let (status, body) = http(addr, "GET", "/healthz", "");
            assert_eq!(status, 200);
            assert_eq!(body, "live: ok\nready: ok\n");

            let st = fetch_status(addr);
            assert_eq!(
                st.get("version").unwrap().as_str("version").unwrap(),
                env!("CARGO_PKG_VERSION")
            );
            assert!(matches!(st.get("ready"), Some(Json::Bool(true))), "{st:?}");
            assert!(
                matches!(st.get("draining"), Some(Json::Bool(false))),
                "{st:?}"
            );
            let queue = st.get("queue").unwrap();
            assert_eq!(num(queue, "capacity"), 128);
            assert_eq!(num(st.get("docs").unwrap(), "count"), 1);
            let default = resident(&st, "default");
            // In-memory daemon: no durable counters on the entry.
            assert!(default.get("wal_records").is_none(), "{default:?}");

            // Build info and daemon gauges in the Prometheus scrape.
            let (_, prom) = http(addr, "GET", "/metrics", "");
            let build = format!(
                "xic_build_info{{version=\"{}\"}} 1",
                env!("CARGO_PKG_VERSION")
            );
            assert!(prom.contains(&build), "{prom}");
            assert!(prom.contains("# TYPE xic_build_info gauge"), "{prom}");
            assert!(prom.contains("\nxic_uptime_seconds "), "{prom}");
            assert!(prom.contains("xic_serve_queue_capacity 128"), "{prom}");
            assert!(prom.contains("\nxic_serve_queue_depth "), "{prom}");
        });
    }

    #[test]
    fn per_doc_metrics_scrape_matches_merged_labels() {
        with_daemon(GOOD_DOC, &[], |addr| {
            let with_dtd = format!("<!DOCTYPE book [\n{BOOK_DTD}\n]>\n{GOOD_DOC}");
            let (status, _) = http(addr, "PUT", "/docs/a", &with_dtd);
            assert_eq!(status, 201);
            let (status, _) = http(addr, "POST", "/docs/a/edits", "set-attr 5 to dangling\n");
            assert_eq!(status, 200);

            // The per-doc scrape carries the same doc label the merged
            // view applies, so dashboards can use one query for both.
            let (status, solo) = http(addr, "GET", "/docs/a/metrics", "");
            assert_eq!(status, 200, "{solo}");
            assert!(solo.contains("xic_edits_total{doc=\"a\"} 1"), "{solo}");
            assert!(solo.contains("xic_doc_requests_total{doc=\"a\"}"), "{solo}");
            // But not the other tenants' series.
            assert!(!solo.contains("doc=\"default\""), "{solo}");

            let (_, merged) = http(addr, "GET", "/metrics", "");
            assert!(merged.contains("xic_edits_total{doc=\"a\"} 1"), "{merged}");

            let (status, body) = http(addr, "GET", "/docs/ghost/metrics", "");
            assert_eq!(status, 404);
            assert!(body.contains("no such document"), "{body}");
        });
    }

    #[test]
    fn route_taxonomy_separates_not_found_from_bad_request() {
        with_daemon(GOOD_DOC, &[], |addr| {
            // Well-formed paths with no handler: 404.
            let (status, _) = http(addr, "GET", "/nope", "");
            assert_eq!(status, 404);
            let (status, _) = http(addr, "POST", "/docs/default", "");
            assert_eq!(status, 404);
            // Malformed /docs shapes: 400, not 404.
            let (status, body) = http(addr, "GET", "/docs/a/b/c", "");
            assert_eq!(status, 400, "{body}");
            assert!(body.contains("malformed /docs path"), "{body}");
            let (status, body) = http(addr, "GET", "/docs/a/frobnicate", "");
            assert_eq!(status, 400, "{body}");

            let (_, prom) = http(addr, "GET", "/metrics", "");
            let count = |needle: &str| -> u64 {
                prom.lines()
                    .find(|l| l.starts_with(needle) && !l.starts_with('#'))
                    .and_then(|l| l.rsplit(' ').next())
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("missing {needle} in {prom}"))
            };
            assert_eq!(count("xic_http_route_not_found_seconds_count"), 2, "{prom}");
            assert_eq!(
                count("xic_http_route_bad_request_seconds_count"),
                2,
                "{prom}"
            );
        });
    }

    #[test]
    fn access_log_lines_round_trip_and_sample() {
        let log = fresh_state_dir("accesslog");
        let log_s = log.to_str().unwrap().to_string();
        let script = "set-attr 5 to dangling\n";
        with_daemon(
            GOOD_DOC,
            &["--access-log", &log_s, "--log-sample", "1"],
            |addr| {
                let (status, _) = http(addr, "GET", "/report", "");
                assert_eq!(status, 200);
                let (status, _) = http(addr, "POST", "/edits", script);
                assert_eq!(status, 200);
                let (status, _) = http(addr, "GET", "/healthz", "");
                assert_eq!(status, 200);
            },
        );
        // Daemon fully drained: the log holds our 3 requests + shutdown.
        let text = std::fs::read_to_string(&log).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "{text}");
        // Every line parses, and re-rendering reproduces it byte-for-byte.
        let records: Vec<AccessRecord> = lines
            .iter()
            .map(|l| {
                let r = AccessRecord::parse(l).unwrap();
                assert_eq!(r.to_json_line(), *l);
                r
            })
            .collect();
        // Sequential requests: strictly increasing request ids.
        for w in records.windows(2) {
            assert!(w[0].req < w[1].req, "{text}");
        }
        let edits = &records[1];
        assert_eq!(edits.method, "POST");
        assert_eq!(edits.path, "/edits");
        assert_eq!(edits.doc, "default");
        assert_eq!(edits.route, "http.route.edits");
        assert_eq!(edits.status, 200);
        assert_eq!(edits.bytes_in, script.len() as u64);
        assert!(edits.bytes_out > 0);
        assert!(edits.handler_nanos > 0);
        let _ = std::fs::remove_file(&log);

        // --log-sample 3 keeps every 3rd offered request: of 6 offered
        // (5 reports + the shutdown), indices 0 and 3 are written.
        let log = fresh_state_dir("accesslog-sampled");
        let log_s = log.to_str().unwrap().to_string();
        with_daemon(
            GOOD_DOC,
            &["--access-log", &log_s, "--log-sample", "3"],
            |addr| {
                for _ in 0..5 {
                    let (status, _) = http(addr, "GET", "/report", "");
                    assert_eq!(status, 200);
                }
            },
        );
        let text = std::fs::read_to_string(&log).unwrap();
        assert_eq!(text.lines().count(), 2, "{text}");
        let _ = std::fs::remove_file(&log);
    }

    #[test]
    fn status_wal_counters_match_disk_after_snapshot_cycle() {
        let state = fresh_state_dir("statuswal");
        let state_s = state.to_str().unwrap().to_string();
        with_daemon(GOOD_DOC, &["--state-dir", &state_s], |addr| {
            for value in ["dangling", "x1"] {
                let (status, body) =
                    http(addr, "POST", "/edits", &format!("set-attr 5 to {value}\n"));
                assert_eq!(status, 200, "{body}");
            }
            let st = fetch_status(addr);
            let d = resident(&st, "default");
            assert_eq!(num(d, "wal_records"), 2, "{d:?}");
            assert_eq!(num(d, "wal_last_seq"), 2, "{d:?}");
            assert_eq!(num(d, "since_snapshot"), 2, "{d:?}");

            let (status, body) = http(addr, "POST", "/docs/default/snapshot", "");
            assert_eq!(status, 200, "{body}");

            // The reset empties the log without rewinding its sequence:
            // last_seq keeps counting acknowledged batches across cycles.
            let st = fetch_status(addr);
            let d = resident(&st, "default");
            assert_eq!(num(d, "wal_records"), 0, "{d:?}");
            assert_eq!(num(d, "wal_last_seq"), 2, "{d:?}");
            assert_eq!(num(d, "since_snapshot"), 0, "{d:?}");
            assert!(num(d, "snapshot_bytes") > 0, "{d:?}");
            assert!(num(d, "snapshot_age_seconds") < 60, "{d:?}");

            // /status agrees with the bytes on disk: the published
            // snapshot is stamped with the same last-applied sequence.
            let disk = DocStore::open(&state, FsyncPolicy::Always).unwrap();
            let path = disk.snapshot_path("default").unwrap();
            let (_, disk_seq) = read_snapshot(&path).unwrap();
            assert_eq!(disk_seq, num(d, "wal_last_seq"));
            let stats = disk.snapshot_stats("default").unwrap().unwrap();
            assert_eq!(stats.bytes, num(d, "snapshot_bytes"));

            // The next batch lands in the fresh log at sequence 3.
            let (status, _) = http(addr, "POST", "/edits", "set-attr 5 to dangling\n");
            assert_eq!(status, 200);
            let st = fetch_status(addr);
            let d = resident(&st, "default");
            assert_eq!(num(d, "wal_records"), 1, "{d:?}");
            assert_eq!(num(d, "wal_last_seq"), 3, "{d:?}");
            assert_eq!(num(d, "since_snapshot"), 1, "{d:?}");
        });
        let _ = std::fs::remove_dir_all(&state);
    }

    #[test]
    fn healthz_flips_to_not_ready_during_drain() {
        let doc = tmp("doc.xml", GOOD_DOC);
        let mut args = vec![doc.to_str().unwrap().to_string()];
        args.extend(book_flags());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let daemon = std::thread::spawn(move || serve_on(listener, &args));

        // A keep-alive connection established before the drain: its
        // worker keeps serving it until the response after the flag flip
        // closes it at a boundary.
        let mut c = HttpClient::connect(addr, Duration::from_secs(30)).unwrap();
        let (status, body) = c.request("GET", "/healthz", "").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("ready: ok"), "{body}");

        let (status, _) = http(addr, "POST", "/shutdown", "");
        assert_eq!(status, 200);

        // The drain begins just after the shutdown response is written;
        // poll until readiness flips (bounded, normally 1-2 probes).
        let mut flipped = false;
        for _ in 0..500 {
            let (status, body) = c.request("GET", "/healthz", "").unwrap();
            if status == 503 {
                assert!(body.contains("ready: draining"), "{body}");
                flipped = true;
                break;
            }
            assert_eq!(status, 200, "{body}");
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(flipped, "healthz never reported draining");
        drop(c);
        daemon.join().unwrap().unwrap();
    }

    #[test]
    fn trace_endpoint_drains_request_scoped_span_chain() {
        let state = fresh_state_dir("tracechain");
        let state_s = state.to_str().unwrap().to_string();
        let trace_out = fresh_state_dir("tracechain-out");
        let trace_out_s = trace_out.to_str().unwrap().to_string();
        let events_of = |body: &str| -> Vec<Json> {
            match xic::obs::json::parse(body).unwrap() {
                Json::Array(events) => events,
                other => panic!("/trace is not an array: {other:?}"),
            }
        };
        let req_of = |e: &Json| -> u64 {
            e.get("args")
                .and_then(|a| a.get("req"))
                .map_or(0, |r| r.as_u64("req").unwrap())
        };
        let name_of =
            |e: &Json| -> String { e.get("name").unwrap().as_str("name").unwrap().into() };
        with_daemon(
            GOOD_DOC,
            &["--state-dir", &state_s, "--trace-out", &trace_out_s],
            |addr| {
                // Drain boot noise so the next drain isolates one request.
                let (status, _) = http(addr, "GET", "/trace", "");
                assert_eq!(status, 200);

                // One edit on a fresh connection: its queue wait, HTTP
                // spans, shard dispatch, batch, and WAL append all carry
                // the same request id.
                let (status, _) = http(addr, "POST", "/edits", "set-attr 5 to dangling\n");
                assert_eq!(status, 200);

                let (status, body) = http(addr, "GET", "/trace", "");
                assert_eq!(status, 200);
                let events = events_of(&body);
                let edit_reqs: Vec<u64> = events
                    .iter()
                    .filter(|e| name_of(e) == "http.route.edits")
                    .map(&req_of)
                    .collect();
                assert_eq!(edit_reqs.len(), 1, "{body}");
                let rid = edit_reqs[0];
                assert!(rid > 0, "{body}");
                for expect in [
                    "serve.queue_wait",
                    "http.request",
                    "http.route.edits",
                    "serve.shard_dispatch",
                    "edit.batch",
                    "wal.append",
                ] {
                    let n = events
                        .iter()
                        .filter(|e| req_of(e) == rid && name_of(e) == expect)
                        .count();
                    assert_eq!(n, 1, "span {expect} not exactly once for req {rid}: {body}");
                }

                // Drained means drained: the id never reappears.
                let (_, body) = http(addr, "GET", "/trace", "");
                assert!(!events_of(&body).iter().any(|e| req_of(e) == rid), "{body}");
            },
        );
        // --trace-out persisted whatever the ring held at exit (the
        // shutdown request, shard exit snapshots) as loadable JSON.
        let tail = std::fs::read_to_string(&trace_out).unwrap();
        assert!(matches!(
            xic::obs::json::parse(&tail).unwrap(),
            Json::Array(_)
        ));
        let _ = std::fs::remove_file(&trace_out);
        let _ = std::fs::remove_dir_all(&state);
    }
}
