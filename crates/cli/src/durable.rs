//! Shared plumbing for the durable-state surface (`--state-dir`): the
//! per-document DTD sidecar and the recovery loader used by both the
//! serve daemon and the `xic snapshot` / `xic recover` subcommands.
//!
//! A snapshot captures the *state* of a live validator, not its
//! *configuration*: the `DTD^C` it validates against is rebuilt on
//! recovery from `--dtd/--root/--sigma` (server flags are configuration)
//! plus a small per-document sidecar, `dtd.txt`, holding the structure
//! that was actually in force — the document's internal `<!DOCTYPE>`
//! subset survives restarts through it. `Σ` always comes from `--sigma`;
//! recovering under a different `Σ` than the snapshot was taken with is
//! rejected by [`LiveValidator::from_state`]'s plan check.

use xic::prelude::*;
use xic::storage::{DocStore, FsyncPolicy, Recovered};

use crate::{load_dtdc, Opts};

/// The per-document DTD sidecar file name: the root element name on the
/// first line, the serialized DTD declarations after it.
pub(crate) const META_FILE: &str = "dtd.txt";

/// Opens the `--state-dir` document store, if one was configured.
/// `--fsync` defaults to `always` (an acknowledged edit survives power
/// loss).
pub(crate) fn open_store(o: &Opts) -> Result<Option<DocStore>, String> {
    let Some(dir) = &o.state_dir else {
        return Ok(None);
    };
    let policy = match o.fsync.as_deref() {
        Some(s) => FsyncPolicy::parse(s)?,
        None => FsyncPolicy::Always,
    };
    DocStore::open(dir, policy)
        .map(Some)
        .map_err(|e| e.to_string())
}

/// Writes `id`'s DTD sidecar. The document's subdirectory must already
/// exist (write the snapshot, or open the WAL, first).
pub(crate) fn write_meta(
    store: &DocStore,
    id: &str,
    structure: &DtdStructure,
) -> Result<(), String> {
    let path = store
        .snapshot_path(id)
        .map_err(|e| e.to_string())?
        .with_file_name(META_FILE);
    let body = format!("{}\n{}", structure.root(), serialize_dtd(structure));
    std::fs::write(&path, body).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

/// Reads `id`'s DTD sidecar back into a structure.
pub(crate) fn read_meta(store: &DocStore, id: &str) -> Result<DtdStructure, String> {
    let path = store
        .snapshot_path(id)
        .map_err(|e| e.to_string())?
        .with_file_name(META_FILE);
    let src = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let (root, dtd) = src
        .split_once('\n')
        .ok_or_else(|| format!("{}: missing root element line", path.display()))?;
    parse_dtd(dtd, root.trim()).map_err(|e| format!("{}: {e}", path.display()))
}

/// Loads everything needed to warm-start document `id`: the `DTD^C`
/// (rebuilt from the sidecar structure — or `--dtd/--root` when given —
/// plus `--sigma/--lang`) and the decoded snapshot with its logged
/// batches and open WAL.
pub(crate) fn load_doc(o: &Opts, store: &DocStore, id: &str) -> Result<(DtdC, Recovered), String> {
    let structure = read_meta(store, id)?;
    let dtdc = load_dtdc(o, Some(&structure), true)?;
    let recovered = store
        .load(id)
        .map_err(|e| e.to_string())?
        .ok_or_else(|| format!("no snapshot for doc '{id}' in {}", store.root().display()))?;
    Ok((dtdc, recovered))
}
