//! Offline, dependency-free subset of the `criterion` 0.5 benchmarking API.
//!
//! The build environment for this repository has no access to a crates
//! registry, so the workspace vendors the exact benchmarking surface its
//! `benches/` targets use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`Throughput`], [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark is warmed up briefly, then timed for
//! `sample_size` samples of auto-calibrated iteration counts; the median
//! per-iteration time is reported together with derived throughput. There
//! are no HTML reports, no statistics beyond median/min, and no baselines —
//! just honest wall-clock numbers printed to stdout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier of one benchmark within a group: function name + parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `function/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id with no function name, rendered as the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Anything accepted where a benchmark name is expected.
pub trait IntoBenchmarkId {
    /// The rendered benchmark id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Units processed per iteration, used to derive throughput rows.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Bytes, reported in decimal multiples.
    BytesDecimal(u64),
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher<'a> {
    iters: u64,
    elapsed: Duration,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl Bencher<'_> {
    /// Times `routine`, running it `iters` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n── group {name} ──");
        BenchmarkGroup {
            name,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benches a standalone function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let mut group = self.benchmark_group("ungrouped");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// A named set of related benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the target measurement time for subsequent benchmarks.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Declares the units processed per iteration for throughput rows.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_id();
        self.run(&id, &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher<'_>, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_id();
        self.run(&id, &mut |b| f(b, input));
        self
    }

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher<'_>)) {
        // Warm-up + calibration: find an iteration count that fills one
        // sample's share of the measurement budget.
        let mut iters: u64 = 1;
        let warm_start = Instant::now();
        let mut per_iter;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
                _marker: std::marker::PhantomData,
            };
            f(&mut b);
            per_iter = b.elapsed / iters.max(1) as u32;
            if warm_start.elapsed() >= self.warm_up_time || per_iter >= self.warm_up_time {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let per = per_iter.as_secs_f64().max(1e-9);
        let iters = ((budget / per).round() as u64).clamp(1, 1 << 30);

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
                _marker: std::marker::PhantomData,
            };
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / iters as f64);
        }
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let throughput = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("   {:>12}/s", si(n as f64 / median))
            }
            Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) => {
                format!("   {:>10}B/s", si(n as f64 / median))
            }
            None => String::new(),
        };
        println!(
            "{}/{id:<40} time: [{} .. {}]{throughput}",
            self.name,
            fmt_time(min),
            fmt_time(median),
        );
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:8.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:8.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:8.2} ms", secs * 1e3)
    } else {
        format!("{secs:8.2} s ")
    }
}

fn si(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2} G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} K", rate / 1e3)
    } else {
        format!("{rate:.1} ")
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(2));
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        group.throughput(Throughput::Elements(100));
        let mut ran = 0u32;
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            ran += 1;
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
        assert!(ran >= 2, "bench closure should run for warmup + samples");
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
