//! Offline, deterministic subset of the `rand` 0.8 API.
//!
//! The build environment for this repository has no access to a crates
//! registry, so the workspace vendors the exact `rand` surface it consumes:
//!
//! * [`RngCore`] / [`Rng`] with [`Rng::gen_range`] (integer ranges, half-open
//!   and inclusive), [`Rng::gen_bool`] and [`Rng::gen`];
//! * [`SeedableRng::seed_from_u64`];
//! * [`rngs::SmallRng`] and [`rngs::StdRng`], both deterministic
//!   xoshiro256++ generators (seeded via SplitMix64, matching the
//!   construction recommended by the xoshiro authors).
//!
//! Streams are deterministic per seed but do **not** reproduce crates.io
//! `rand`'s streams; nothing in the workspace depends on the specific
//! sequence, only on determinism.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of random 32/64-bit words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types [`Rng::gen_range`] can sample uniformly.
///
/// The blanket `SampleRange` impls below are generic over this trait (as in
/// crates.io `rand`) so that type inference can unify a range's element type
/// with `gen_range`'s return type.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + sample_u128_below(rng, span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + sample_u128_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "cannot sample empty range");
        lo + f64::draw(rng) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        Self::sample_half_open(rng, lo, hi)
    }
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Uniform draw from `[0, bound)` by rejection sampling (`bound > 0`).
fn sample_u128_below<R: RngCore + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    if bound <= u64::MAX as u128 {
        let bound = bound as u64;
        // Rejection zone keeps the draw unbiased.
        let zone = u64::MAX - (u64::MAX % bound + 1) % bound;
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return (v % bound) as u128;
            }
        }
    }
    // Ranges wider than u64 never occur in this workspace; fall back to a
    // biased composition, which is still deterministic.
    ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % bound
}

/// The user-facing random-value API, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform draw from `range` (half-open or inclusive integer ranges,
    /// half-open float ranges).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        f64::draw(self) < p
    }

    /// A draw from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of
    /// `state`.
    fn seed_from_u64(state: u64) -> Self;

    /// Builds a generator from system entropy. Vendored build environments
    /// have no entropy source, so this derives the seed from the monotonic
    /// clock; use [`SeedableRng::seed_from_u64`] for reproducibility.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(nanos)
    }
}

/// One value drawn from a clock-seeded [`rngs::StdRng`].
pub fn random<T: Standard>() -> T {
    T::draw(&mut rngs::StdRng::from_entropy())
}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ state, seeded through SplitMix64.
    #[derive(Clone, Debug)]
    pub struct Xoshiro256 {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl RngCore for Xoshiro256 {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for Xoshiro256 {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Xoshiro256 {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    /// The small, fast generator (here identical to [`StdRng`]).
    pub type SmallRng = Xoshiro256;
    /// The default generator.
    pub type StdRng = Xoshiro256;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..=2usize);
            assert!(w <= 2);
            let x = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "{hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn trait_object_and_generic_use() {
        fn takes_generic<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0u64..10)
        }
        let mut rng = SmallRng::seed_from_u64(4);
        assert!(takes_generic(&mut rng) < 10);
        let b: bool = rng.gen();
        let _ = b;
    }
}
