//! Offline, dependency-free subset of the `proptest` 1.x API.
//!
//! The build environment for this repository has no access to a crates
//! registry, so the workspace vendors the property-testing surface its
//! tests use:
//!
//! * the [`Strategy`](strategy::Strategy) trait with `prop_map`,
//!   `prop_filter` and `prop_recursive`, plus
//!   [`BoxedStrategy`](strategy::BoxedStrategy);
//! * leaf strategies: [`Just`](strategy::Just), [`any`](arbitrary::any),
//!   integer ranges, tuples of
//!   strategies, and `&str` character-class patterns (`"[a-z0-9]{1,12}"`);
//! * [`collection::vec`], [`option::of`] and the [`prop_oneof!`] union;
//! * the [`proptest!`] macro with `#![proptest_config(..)]` support and the
//!   [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] family.
//!
//! Semantics: each test function runs `cases` deterministic random cases
//! (seeded from the test's module path, overridable via `PROPTEST_CASES`).
//! There is **no shrinking** — a failing case reports the generated input
//! verbatim instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod test_runner {
    //! Test configuration, RNG, and failure plumbing.

    use std::fmt;

    /// Why a test case failed (or was rejected).
    pub type Reason = String;

    /// Failure raised by the `prop_assert!` family or by user code.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// A hard assertion failure.
        Fail(Reason),
        /// The generated input was rejected (counts against retries).
        Reject(Reason),
    }

    impl TestCaseError {
        /// A hard failure with the given reason.
        pub fn fail(reason: impl Into<Reason>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// An input rejection with the given reason.
        pub fn reject(reason: impl Into<Reason>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
            }
        }
    }

    /// Shorthand for a test-case body's result.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Per-`proptest!` configuration (`ProptestConfig` in the prelude).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases to run per test.
        pub cases: u32,
        /// Maximum rejected inputs tolerated per accepted one.
        pub max_global_rejects: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_global_rejects: 1024,
            }
        }
    }

    impl Config {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                ..Config::default()
            }
        }

        /// The case count after applying the `PROPTEST_CASES` env override.
        pub fn effective_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(self.cases)
        }
    }

    /// Deterministic generator driving all strategies (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded from an arbitrary name (e.g. the test path).
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name, so each test gets its own stream.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            let zone = u64::MAX - (u64::MAX % bound + 1) % bound;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % bound;
                }
            }
        }

        /// A float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// `true` with probability `p`.
        pub fn chance(&mut self, p: f64) -> bool {
            self.unit_f64() < p
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait, combinators, and leaf strategies.

    use std::fmt;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    ///
    /// Unlike crates.io proptest there is no value tree and no shrinking:
    /// a strategy is just a deterministic function of the [`TestRng`].
    pub trait Strategy {
        /// The type of generated values.
        type Value: fmt::Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Type-erases this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy::new(move |rng| self.generate(rng))
        }

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
        where
            Self: Sized + 'static,
            U: fmt::Debug,
            F: Fn(Self::Value) -> U + 'static,
        {
            BoxedStrategy::new(move |rng| f(self.generate(rng)))
        }

        /// Discards generated values failing `pred`, retrying (bounded).
        fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            F: Fn(&Self::Value) -> bool + 'static,
        {
            let reason = reason.into();
            BoxedStrategy::new(move |rng| {
                for _ in 0..1_000 {
                    let v = self.generate(rng);
                    if pred(&v) {
                        return v;
                    }
                }
                panic!("prop_filter gave up after 1000 rejections: {reason}")
            })
        }

        /// Builds recursive structures: `f` receives a strategy for the
        /// recursive positions and returns the composite strategy; nesting
        /// is capped at `depth` levels, below which only leaves occur.
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                let recursive = f(current).boxed();
                let fallback = leaf.clone();
                current = BoxedStrategy::new(move |rng| {
                    if rng.chance(0.7) {
                        recursive.generate(rng)
                    } else {
                        fallback.generate(rng)
                    }
                });
            }
            current
        }
    }

    /// A cloneable, type-erased [`Strategy`].
    pub struct BoxedStrategy<T> {
        gen_fn: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> BoxedStrategy<T> {
        /// Wraps a generation function.
        pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
            BoxedStrategy { gen_fn: Rc::new(f) }
        }
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                gen_fn: Rc::clone(&self.gen_fn),
            }
        }
    }

    impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.gen_fn)(rng)
        }
    }

    /// A strategy producing clones of one fixed value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone + fmt::Debug>(pub T);

    impl<T: Clone + fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among same-typed strategies (backs
    /// [`prop_oneof!`](crate::prop_oneof)).
    pub fn union<T: fmt::Debug + 'static>(arms: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        BoxedStrategy::new(move |rng| {
            let i = rng.below(arms.len() as u64) as usize;
            arms[i].generate(rng)
        })
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64 + 1;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($s:ident/$v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A / a);
    tuple_strategy!(A / a, B / b);
    tuple_strategy!(A / a, B / b, C / c);
    tuple_strategy!(A / a, B / b, C / c, D / d);
    tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
    tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);

    /// `&str` patterns act as string strategies for the character-class
    /// shape `[class]{lo,hi}` (also `{n}`, `*`, `+`, or no repetition);
    /// anything else generates the literal string.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            match parse_pattern(self) {
                Some((chars, lo, hi)) => {
                    let len = lo + rng.below((hi - lo + 1) as u64) as usize;
                    (0..len)
                        .map(|_| chars[rng.below(chars.len() as u64) as usize])
                        .collect()
                }
                None => (*self).to_string(),
            }
        }
    }

    /// Parses `[class]{lo,hi}` into (alphabet, lo, hi).
    fn parse_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class: Vec<char> = rest[..close].chars().collect();
        let mut chars = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if class[i] == '\\' && i + 1 < class.len() {
                chars.push(class[i + 1]);
                i += 2;
            } else if i + 2 < class.len() && class[i + 1] == '-' {
                let (lo, hi) = (class[i], class[i + 2]);
                for c in lo..=hi {
                    chars.push(c);
                }
                i += 3;
            } else {
                chars.push(class[i]);
                i += 1;
            }
        }
        if chars.is_empty() {
            return None;
        }
        let rep = &rest[close + 1..];
        let (lo, hi) = match rep {
            "" => (1, 1),
            "*" => (0, 8),
            "+" => (1, 8),
            _ => {
                let inner = rep.strip_prefix('{')?.strip_suffix('}')?;
                match inner.split_once(',') {
                    Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
                    None => {
                        let n = inner.trim().parse().ok()?;
                        (n, n)
                    }
                }
            }
        };
        (lo <= hi).then_some((chars, lo, hi))
    }
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait behind [`any`].

    use crate::strategy::BoxedStrategy;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized + std::fmt::Debug {
        /// The canonical strategy for this type.
        fn arbitrary() -> BoxedStrategy<Self>;
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
        T::arbitrary()
    }

    impl Arbitrary for bool {
        fn arbitrary() -> BoxedStrategy<bool> {
            BoxedStrategy::new(|rng| rng.next_u64() & 1 == 1)
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary() -> BoxedStrategy<$t> {
                    BoxedStrategy::new(|rng| rng.next_u64() as $t)
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod collection {
    //! Collection strategies.

    use std::fmt;
    use std::ops::{Range, RangeInclusive};

    use crate::strategy::{BoxedStrategy, Strategy};

    /// Anything usable as a collection size specification.
    pub trait IntoSizeRange {
        /// Returns inclusive `(lo, hi)` bounds.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    /// A strategy for vectors whose length lies in `size` and whose
    /// elements come from `element`.
    pub fn vec<S>(element: S, size: impl IntoSizeRange) -> BoxedStrategy<Vec<S::Value>>
    where
        S: Strategy + 'static,
        S::Value: fmt::Debug,
    {
        let (lo, hi) = size.bounds();
        BoxedStrategy::new(move |rng| {
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..len).map(|_| element.generate(rng)).collect()
        })
    }
}

pub mod option {
    //! `Option` strategies.

    use std::fmt;

    use crate::strategy::{BoxedStrategy, Strategy};

    /// `None` a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S>(inner: S) -> BoxedStrategy<Option<S::Value>>
    where
        S: Strategy + 'static,
        S::Value: fmt::Debug,
    {
        BoxedStrategy::new(move |rng| rng.chance(0.75).then(|| inner.generate(rng)))
    }
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::union(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking) so the harness can report the generated input.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`\n {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`\n {}",
            left,
            format!($($fmt)*)
        );
    }};
}

/// Declares property tests: each `#[test] fn name(pat in strategy, ..)` is
/// rewritten into a deterministic multi-case test.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ config = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (config = $config:expr;) => {};
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let cases = config.effective_cases();
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..cases {
                let values = ($($crate::strategy::Strategy::generate(&($strategy), &mut rng),)+);
                let described = format!("{values:?}");
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    let ($($pat,)+) = values;
                    let case_body = || -> $crate::test_runner::TestCaseResult {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    case_body()
                }));
                match outcome {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => panic!(
                        "proptest case {}/{} failed: {}\ninput: {}",
                        case + 1, cases, e, described
                    ),
                    Err(panic_payload) => {
                        eprintln!(
                            "proptest case {}/{} panicked\ninput: {}",
                            case + 1, cases, described
                        );
                        ::std::panic::resume_unwind(panic_payload);
                    }
                }
            }
        }
        $crate::__proptest_tests!{ config = $config; $($rest)* }
    };
}

pub mod prelude {
    //! Everything a property test needs, via `use proptest::prelude::*`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestCaseResult, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, `prop::option::of`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::strategy;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_tuples_and_just_generate_in_bounds() {
        let mut rng = TestRng::from_name("self-test");
        let strat = (0usize..10, Just("x"), 5u8..=6);
        for _ in 0..200 {
            let (a, b, c) = strat.generate(&mut rng);
            assert!(a < 10);
            assert_eq!(b, "x");
            assert!(c == 5 || c == 6);
        }
    }

    #[test]
    fn string_patterns_respect_class_and_length() {
        let mut rng = TestRng::from_name("patterns");
        let strat = "[a-c0-1]{2,5}";
        for _ in 0..200 {
            let s = Strategy::generate(&strat, &mut rng);
            assert!((2..=5).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| "abc01".contains(c)), "{s:?}");
        }
    }

    #[test]
    fn collections_and_options_cover_sizes() {
        let mut rng = TestRng::from_name("collections");
        let strat = prop::collection::vec(0u8..4, 0..6);
        let mut saw_empty = false;
        let mut saw_full = false;
        for _ in 0..500 {
            let v = strat.generate(&mut rng);
            assert!(v.len() < 6);
            saw_empty |= v.is_empty();
            saw_full |= v.len() == 5;
        }
        assert!(saw_empty && saw_full);
        let opt = prop::option::of(Just(1u8));
        let somes = (0..500)
            .filter(|_| opt.generate(&mut rng).is_some())
            .count();
        assert!((200..500).contains(&somes), "{somes}");
    }

    #[test]
    fn recursion_terminates_and_mixes_depths() {
        #[derive(Clone, Debug)]
        enum T {
            Leaf,
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf => 0,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = Just(T::Leaf).boxed();
        let strat = leaf.prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::from_name("recursion");
        let mut max_depth = 0;
        for _ in 0..300 {
            max_depth = max_depth.max(depth(&strat.generate(&mut rng)));
        }
        assert!(max_depth >= 2, "recursion never nested: {max_depth}");
        assert!(max_depth <= 4, "depth cap exceeded: {max_depth}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_generates_and_binds((a, b) in (0usize..8, 0usize..8), flip in any::<bool>()) {
            prop_assert!(a < 8 && b < 8);
            if flip && a == b {
                prop_assert_eq!(a, b);
            } else {
                let _ = (a, b);
            }
        }
    }
}
