//! Shared helpers for the runnable examples.
//!
//! Each example is a standalone binary; run them with
//! `cargo run -p xic-examples --bin <name>`:
//!
//! * `quickstart` — parse, validate, reason: the 60-second tour;
//! * `books` — the paper's native-XML book document with `L_u` constraints;
//! * `company_objects` — object-database export with `L_id` constraints;
//! * `publishers_relational` — relational export with `L` constraints,
//!   primary-key implication and the chase;
//! * `path_optimizer` — Section-4 path constraints for query optimization;
//! * `fo2_game` — the Figure-1 FO² inexpressibility argument, replayed;
//! * `schema_evolution` — DTD evolution checking via content-model
//!   language containment.

/// Prints a section header.
pub fn heading(title: &str) {
    println!("\n=== {title} ===");
}
