//! Quickstart: parse a document, validate it against a `DTD^C`, catch a
//! constraint violation, and ask an implication question.
//!
//! ```text
//! cargo run -p xic-examples --bin quickstart
//! ```

use xic::prelude::*;
use xic_examples::heading;

fn main() {
    // 1. The paper's book DTD^C — structure plus Σ (in L_u):
    //      entry.isbn  -> entry
    //      section.sid -> section
    //      ref.to      <=s entry.isbn
    let dtdc = xic::constraints::examples::book_dtdc();
    heading("The DTD^C (Definition 2.3)");
    print!("{dtdc}");

    // 2. Parse the Section-1 document and render it Figure-2 style.
    let doc = parse_document(
        r#"<book>
             <entry isbn="1-55860-622-X">
               <title>Data on the Web</title>
               <publisher>Morgan Kaufmann</publisher>
             </entry>
             <author>Serge Abiteboul</author>
             <author>Peter Buneman</author>
             <author>Dan Suciu</author>
             <section sid="intro"><title>Introduction</title></section>
             <ref to="1-55860-622-X"/>
           </book>"#,
    )
    .expect("well-formed XML");
    heading("The data tree (Figure 2)");
    print!("{}", render_tree(&doc.tree, &RenderOptions::default()));

    // 3. Validate: structure (content models, attributes) + Σ.
    let report = validate(&doc.tree, &dtdc);
    heading("Validation (Definition 2.4)");
    println!("{report}");
    assert!(report.is_valid());

    // 4. Break the set-valued foreign key and watch it get caught.
    let bad = parse_document(
        r#"<book>
             <entry isbn="x"><title>T</title><publisher>P</publisher></entry>
             <ref to="dangling"/>
           </book>"#,
    )
    .unwrap();
    let report = validate(&bad.tree, &dtdc);
    heading("A dangling reference");
    print!("{report}");
    assert!(!report.is_valid());

    // 5. Implication: Σ already makes entry.isbn a key — but NOT a key of
    //    the outer book elements (the paper's scoping point).
    let solver = LuSolver::new(dtdc.constraints()).expect("Σ is in L_u");
    heading("Implication (Section 3)");
    for phi in [
        Constraint::unary_key("entry", "isbn"),
        Constraint::unary_key("book", "isbn"),
    ] {
        let v = solver.implies(&phi, LuMode::Finite).unwrap();
        println!(
            "Σ ⊨f {phi} ?  {}",
            if v.is_implied() { "yes" } else { "no" }
        );
    }

    // 6. Path reasoning: the isbn of a book's entry determines its authors.
    let paths = PathSolver::new(&dtdc);
    heading("Path constraints (Section 4)");
    let implied = paths.functional_implied(
        &"book".into(),
        &Path::from("entry.isbn"),
        &Path::from("author"),
    );
    println!("Σ ⊨ book.entry.isbn -> book.author ?  {implied}");
    assert!(implied);
}
