//! Figure 1, replayed: two structures that two-variable logic cannot tell
//! apart, separated by a unary key constraint — so keys are not
//! FO²-expressible.
//!
//! ```text
//! cargo run -p xic-examples --bin fo2_game
//! ```

use xic::prelude::*;
use xic_examples::heading;

fn main() {
    heading("Figure 1 (reconstructed)");
    println!("G : a matching   x_i -l-> z_i        (all l-values private)");
    println!("G': two-ray stars x_2i, x_2i+1 -l-> w_i (pairs share l-values)");

    for n in 2..=4 {
        let (g, h) = figure1(n);
        let equiv = two_pebble_equivalent(&g, &h);
        let kg = g.satisfies_unary_key("l");
        let kh = h.satisfies_unary_key("l");
        println!(
            "n={n}: |G|={:2}, |G'|={:2}   G ≡_FO² G' : {equiv}   G ⊨ φ: {kg}   G' ⊨ φ: {kh}",
            g.size, h.size
        );
        assert!(equiv && kg && !kh);
    }

    heading("Conclusion");
    println!("φ = ∀x∀y (∃z (l(x,z) ∧ l(y,z)) → x = y)   — the unary key τ.l → τ");
    println!("G and G' agree on every FO² sentence (duplicator wins the");
    println!("2-pebble game), yet G ⊨ φ and G' ⊭ φ. Hence φ — and with it");
    println!("the key constraints of L, L_u and L_id — is not expressible");
    println!("in FO², nor in DL − {{trans, compose, at_least, at_most}}.");

    heading("Sanity: the game does separate FO²-different structures");
    let mut a = FoStructure::new(2);
    a.add("l", 0, 1);
    let b = FoStructure::new(2);
    println!(
        "edge vs empty: equivalent? {}",
        two_pebble_equivalent(&a, &b)
    );
    assert!(!two_pebble_equivalent(&a, &b));
}
