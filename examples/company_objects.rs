//! Exporting an object database to XML while preserving object identity,
//! keys and inverse relationships — the paper's person/dept example with
//! `L_id` constraints.
//!
//! ```text
//! cargo run -p xic-examples --bin company_objects
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use xic::prelude::*;
use xic_examples::heading;

fn main() {
    // The ODL-ish schema from §1: Person(name key, in_dept inverse of
    // Dept.has_staff), Dept(dname key, manager, has_staff).
    let schema = ObjSchema::person_dept();
    let dtdc = schema.to_dtdc();
    heading("Exported DTD^C (Σ_o of §2.4)");
    print!("{dtdc}");

    // Generate a consistent company, export to XML, validate.
    let mut rng = SmallRng::seed_from_u64(2026);
    let inst = schema.generate_instance(5, &mut rng);
    let tree = schema.export(&inst);
    heading("A generated company document");
    let xml = serialize_document(&tree);
    println!("{}", &xml[..xml.len().min(900)]);
    let report = validate(&tree, &dtdc);
    println!("validation: {report}");
    assert!(report.is_valid());

    // The L_id solver: the inverse constraint alone forces both set-valued
    // foreign keys and both ID constraints (rules Inv-SFK-ID, SFK-ID).
    let solver = LidSolver::new(dtdc.constraints(), Some(dtdc.structure()));
    heading("Implication in I_id (Prop 3.1)");
    let queries = [
        Constraint::SetFkToId {
            tau: "person".into(),
            attr: "in_dept".into(),
            target: "dept".into(),
        },
        Constraint::Id {
            tau: "person".into(),
        },
        Constraint::unary_key("person", "oid"),
        Constraint::unary_key("person", "address"),
    ];
    for phi in queries {
        let v = solver.implies_with(&phi, Some(dtdc.structure()));
        println!("Σ ⊨ {phi} ?  {}", if v.is_implied() { "yes" } else { "no" });
        if let Some(proof) = v.proof() {
            for line in proof.to_string().lines() {
                println!("    {line}");
            }
        } else if let Some(m) = v.countermodel() {
            println!("    countermodel:");
            for line in m.to_string().lines() {
                println!("      {line}");
            }
        }
    }

    // Break the inverse relationship and watch validation object.
    heading("Breaking the inverse relationship");
    let mut broken = schema.generate_instance(2, &mut rng);
    let p_oid = broken.objects[&Name::new("person")][0].oid.clone();
    let dept = &mut broken.objects.get_mut(&Name::new("dept")).unwrap()[0];
    let staff = dept.refs.entry("has_staff".into()).or_default();
    if !staff.contains(&p_oid) {
        staff.push(p_oid);
    }
    broken.objects.get_mut(&Name::new("person")).unwrap()[0]
        .refs
        .insert("in_dept".into(), Vec::new());
    let report = validate(&schema.export(&broken), &dtdc);
    print!("{report}");
    assert!(!report.is_valid());
}
