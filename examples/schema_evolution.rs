//! Schema evolution: checking that a revised DTD still accepts every
//! existing document, via content-model language containment — the
//! structural half of the paper's closing question about verifying
//! integration/transformation programs.
//!
//! ```text
//! cargo run -p xic-examples --bin schema_evolution
//! ```

use xic::prelude::*;
use xic_examples::heading;

fn main() {
    let v1 = parse_dtd(
        "<!ELEMENT book (entry, author, ref)>
         <!ELEMENT entry (title, publisher)>
         <!ELEMENT title (#PCDATA)> <!ELEMENT publisher (#PCDATA)>
         <!ELEMENT author (#PCDATA)>
         <!ELEMENT ref EMPTY>
         <!ATTLIST entry isbn CDATA #REQUIRED>
         <!ATTLIST ref to NMTOKENS #IMPLIED>",
        "book",
    )
    .unwrap();

    // v2 widens: multiple authors, optional sections.
    let v2 = parse_dtd(
        "<!ELEMENT book (entry, author+, section*, ref)>
         <!ELEMENT entry (title, publisher)>
         <!ELEMENT title (#PCDATA)> <!ELEMENT publisher (#PCDATA)>
         <!ELEMENT author (#PCDATA)>
         <!ELEMENT section (title)>
         <!ELEMENT ref EMPTY>
         <!ATTLIST entry isbn CDATA #REQUIRED>
         <!ATTLIST ref to NMTOKENS #IMPLIED>",
        "book",
    )
    .unwrap();

    // v3 narrows: publisher becomes mandatory-first and authors capped at 1.
    let v3 = parse_dtd(
        "<!ELEMENT book (entry, author, ref)>
         <!ELEMENT entry (publisher, title)>
         <!ELEMENT title (#PCDATA)> <!ELEMENT publisher (#PCDATA)>
         <!ELEMENT author (#PCDATA)>
         <!ELEMENT ref EMPTY>
         <!ATTLIST entry isbn CDATA #REQUIRED>
         <!ATTLIST ref to NMTOKENS #IMPLIED>",
        "book",
    )
    .unwrap();

    heading("v1 → v2 (widening)");
    let inc = v2.evolution_incompatibilities(&v1);
    if inc.is_empty() {
        println!("compatible: every v1 document remains structurally valid under v2");
    }
    assert!(inc.is_empty());

    heading("v2 → v1 (narrowing back)");
    for i in v1.evolution_incompatibilities(&v2) {
        println!("  - {i}");
    }
    assert!(!v1.evolution_incompatibilities(&v2).is_empty());

    heading("v1 → v3 (reordered children)");
    for i in v3.evolution_incompatibilities(&v1) {
        println!("  - {i}");
    }
    assert!(!v3.evolution_incompatibilities(&v1).is_empty());

    // The underlying primitive: content-model language containment.
    heading("Content-model containment (product automaton)");
    let old = ContentModel::parse("(entry, author, ref)").unwrap();
    let new = ContentModel::parse("(entry, author, author*, section*, ref)").unwrap();
    println!(
        "L((entry, author, ref)) ⊆ L({new}) ?  {}",
        new.contains(&old)
    );
    println!("reverse containment ?  {}", old.contains(&new));
    assert!(new.contains(&old) && !old.contains(&new));

    // And a concrete witness: a v1 document validates under both v1 and v2
    // structures, but not under v3.
    heading("A v1 document against all three schemas");
    let doc = parse_document(
        r#"<book>
             <entry isbn="x"><title>T</title><publisher>P</publisher></entry>
             <author>A</author>
             <ref to="x"/>
           </book>"#,
    )
    .unwrap();
    for (name, s) in [("v1", &v1), ("v2", &v2), ("v3", &v3)] {
        let dtdc = DtdC::new(s.clone(), Language::Lu, vec![]).unwrap();
        let ok = validate(&doc.tree, &dtdc).is_valid();
        println!("  {name}: {}", if ok { "valid" } else { "invalid" });
    }
}
