//! Exporting a relational database to XML with `L` constraints, reasoning
//! under the primary-key restriction (Thm 3.8), and watching the chase
//! diverge where general `L` implication is undecidable (Thm 3.6).
//!
//! ```text
//! cargo run -p xic-examples --bin publishers_relational
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use xic::prelude::*;
use xic_examples::heading;

fn main() {
    // publishers(pname, country, address) key (pname, country);
    // editors(name, pname, country) key (name),
    //   FK (pname, country) ⊆ publishers(pname, country).
    let schema = RelSchema::publishers_editors();
    let dtdc = schema.to_dtdc();
    heading("Exported DTD^C with L constraints");
    print!("{dtdc}");

    let mut rng = SmallRng::seed_from_u64(7);
    let inst = schema.generate_instance(4, &mut rng);
    let tree = schema.export(&inst);
    let report = validate(&tree, &dtdc);
    heading("Generated instance");
    println!(
        "{} publishers, {} editors — validation: {report}",
        tree.ext("publisher").count(),
        tree.ext("editor").count()
    );
    assert!(report.is_valid());

    // Primary-key implication (Theorem 3.8, axioms I_p).
    let solver = LpSolver::new(dtdc.constraints()).expect("Σ is primary");
    heading("Implication under the primary-key restriction (Thm 3.8)");
    let queries = [
        // Jointly permuted FK: implied via PFK-perm.
        Constraint::fk(
            "editor",
            ["country", "pname"],
            "publisher",
            ["country", "pname"],
        ),
        // Twisted columns: NOT implied.
        Constraint::fk(
            "editor",
            ["pname", "country"],
            "publisher",
            ["country", "pname"],
        ),
        // PK-FK reflexivity.
        Constraint::fk(
            "publisher",
            ["pname", "country"],
            "publisher",
            ["pname", "country"],
        ),
    ];
    for phi in queries {
        let v = solver.implies(&phi);
        println!("Σ ⊨ {phi} ?  {}", if v.is_implied() { "yes" } else { "no" });
        if let Some(p) = v.proof() {
            for line in p.to_string().lines() {
                println!("    {line}");
            }
        }
    }

    // The chase agrees on decidable instances…
    heading("The chase agrees where it terminates (Thm 3.6 context)");
    let chase = Chase::new(
        dtdc.constraints(),
        xic::implication::chase::ChaseLimits::default(),
    )
    .unwrap();
    let phi = Constraint::fk(
        "editor",
        ["country", "pname"],
        "publisher",
        ["country", "pname"],
    );
    println!("chase: Σ ⊨ {phi} ?  {:?}", chase.implies(&phi).is_implied());

    // …but general L implication is undecidable, and the chase shows the
    // divergence: key R[A] with R[B] ⊆ R[A] spawns referents forever.
    heading("A divergent chase (the undecidability phenomenon)");
    let sigma = vec![
        Constraint::key("R", ["A"]),
        Constraint::fk("R", ["B"], "R", ["A"]),
    ];
    let chase = Chase::new(
        &sigma,
        xic::implication::chase::ChaseLimits {
            max_steps: 200,
            max_tuples: 200,
        },
    )
    .unwrap();
    match chase.implies(&Constraint::key("R", ["B"])) {
        ChaseOutcome::ResourceLimit => {
            println!("Σ = {{R[A] -> R, R[B] <= R[A]}}: chase exceeded its budget —")
        }
        other => println!("unexpected: {other:?}"),
    }
    println!("each tuple demands a fresh referent; no fixpoint exists.");
}
