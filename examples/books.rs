//! Native XML with `L_u` constraints: the paper's book workflow end to
//! end — DTD text in, constraint text in, documents checked, redundancy
//! detected with derivations.
//!
//! ```text
//! cargo run -p xic-examples --bin books
//! ```

use xic::prelude::*;
use xic_examples::heading;

const BOOK_DTD: &str = r#"
  <!ELEMENT book (entry, author*, section*, ref)>
  <!ELEMENT entry (title, publisher)>
  <!ELEMENT title (#PCDATA)>
  <!ELEMENT publisher (#PCDATA)>
  <!ELEMENT author (#PCDATA)>
  <!ELEMENT text (#PCDATA)>
  <!ELEMENT section (title, (text | section)*)>
  <!ELEMENT ref EMPTY>
  <!ATTLIST entry isbn CDATA #REQUIRED>
  <!ATTLIST section sid CDATA #REQUIRED>
  <!ATTLIST ref to NMTOKENS #IMPLIED>
"#;

const SIGMA: &str = "
  # Σ of §2.4, in the ASCII constraint syntax
  entry.isbn -> entry
  section.sid -> section
  ref.to <=s entry.isbn
";

fn main() {
    // Everything from *text*: the DTD in standard syntax, Σ in the
    // constraint syntax.
    let structure = parse_dtd(BOOK_DTD, "book").expect("DTD parses");
    let dtdc = DtdC::parse(structure, Language::Lu, SIGMA).expect("Σ is well-formed");
    heading("Parsed DTD^C");
    print!("{dtdc}");

    // A document with recursive sections and multiple refs.
    let doc = parse_document(
        r#"<book>
             <entry isbn="1-55860-622-X">
               <title>Data on the Web</title>
               <publisher>Morgan Kaufmann</publisher>
             </entry>
             <author>Abiteboul</author>
             <author>Buneman</author>
             <section sid="s1">
               <title>Introduction</title>
               <text>Semistructured data...</text>
               <section sid="s1.1"><title>Audience</title></section>
             </section>
             <section sid="s2"><title>XML</title></section>
             <ref to="1-55860-622-X"/>
           </book>"#,
    )
    .unwrap();
    let validator = Validator::new(&dtdc);
    let report = validator.validate(&doc.tree);
    heading("Validation");
    println!("{report}");
    assert!(report.is_valid());

    // Two sections sharing a sid: the unary key catches it.
    let dup = parse_document(
        r#"<book>
             <entry isbn="x"><title>T</title><publisher>P</publisher></entry>
             <section sid="same"><title>A</title></section>
             <section sid="same"><title>B</title></section>
             <ref to="x"/>
           </book>"#,
    )
    .unwrap();
    heading("Duplicate section identifiers");
    print!("{}", validator.validate(&dup.tree));

    // Implication with derivations: every FK target is a key (UFK-K /
    // SFK-K), so `entry.isbn -> entry` is derivable even without being
    // declared.
    let minimal = DtdC::parse(
        parse_dtd(BOOK_DTD, "book").unwrap(),
        Language::Lu,
        "entry.isbn -> entry\nref.to <=s entry.isbn",
    )
    .unwrap();
    let solver = LuSolver::new(minimal.constraints()).unwrap();
    let phi = Constraint::unary_key("entry", "isbn");
    heading("A derivation in I_u");
    match solver.implies(&phi, LuMode::Unrestricted).unwrap() {
        Verdict::Implied(proof) => {
            print!("{proof}");
            proof
                .verify(minimal.constraints(), None)
                .expect("derivation checks");
        }
        Verdict::NotImplied(_) => unreachable!("declared key"),
    }

    // The divergence of implication and finite implication (Cor 3.3).
    heading("Finite vs unrestricted implication (Cor 3.3)");
    let sigma = vec![
        Constraint::unary_key("entry", "isbn"),
        Constraint::unary_key("entry", "title_id"),
        Constraint::unary_fk("entry", "isbn", "entry", "title_id"),
    ];
    let s = LuSolver::new(&sigma).unwrap();
    let phi = Constraint::unary_fk("entry", "title_id", "entry", "isbn");
    let fin = s.implies(&phi, LuMode::Finite).unwrap().is_implied();
    let unr = s.implies(&phi, LuMode::Unrestricted).unwrap().is_implied();
    println!("Σ = {{entry.isbn -> entry, entry.title_id -> entry, entry.isbn <= entry.title_id}}");
    println!("Σ ⊨f {phi} ?  {fin}");
    println!("Σ ⊨  {phi} ?  {unr}   (cycle rules apply only to finite trees)");
    assert!(fin && !unr);
}
