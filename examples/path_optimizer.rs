//! Path constraints as a query optimizer would use them (Section 4): given
//! a `DTD^C` with `L_id` constraints, decide path functional, inclusion
//! and inverse constraints, and cross-check the decisions on a concrete
//! document.
//!
//! ```text
//! cargo run -p xic-examples --bin path_optimizer
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use xic::prelude::*;
use xic_examples::heading;

fn main() {
    let schema = ObjSchema::person_dept();
    let dtdc = schema.to_dtdc();
    let solver = PathSolver::new(&dtdc);
    let db: Name = "db".into();

    heading("Typing paths (paths(τ), type(τ.ρ))");
    for p in [
        "person",
        "person.name",
        "dept.manager",                   // dereferences to person
        "dept.manager.name",              // …then into its name
        "person.in_dept.dname",           // set-valued dereference
        "dept.manager.in_dept.has_staff", // chains of references
        "person.bogus",
    ] {
        let path = Path::from(p);
        match solver.type_of(&db, &path) {
            Some(t) => println!("type(db.{path}) = {t}"),
            None => println!("db.{path} ∉ paths(db)"),
        }
    }

    heading("Path functional constraints (Prop 4.1)");
    let fd_queries = [
        ("person", "name", "address"), // name is a key: determines address
        ("person", "address", "name"), // address is no key
        ("dept", "dname", "manager"),  // dname is a key of dept
        ("dept", "manager", "dname"),  // manager is not a key
    ];
    for (tau, rho, varrho) in fd_queries {
        let implied = solver.functional_implied(&tau.into(), &Path::from(rho), &Path::from(varrho));
        println!("Σ ⊨ {tau}.{rho} -> {tau}.{varrho} ?  {implied}");
    }

    heading("Path inclusion constraints (Prop 4.2)");
    let inc_queries = [
        ("db", "dept.manager", "person", ""),
        ("db", "dept.manager.name", "person", "name"),
        ("db", "dept.has_staff.name", "person", "name"),
        ("db", "dept.manager", "dept", ""),
    ];
    for (t1, r1, t2, r2) in inc_queries {
        let implied = solver.inclusion_implied(
            &t1.into(),
            &Path::from(r1),
            &t2.into(),
            &Path::parse(r2).unwrap(),
        );
        let rhs = if r2.is_empty() {
            t2.to_string()
        } else {
            format!("{t2}.{r2}")
        };
        println!("Σ ⊨ {t1}.{r1} <= {rhs} ?  {implied}");
    }

    heading("Path inverse constraints (Prop 4.3)");
    let implied = solver.inverse_implied(
        &"person".into(),
        &Path::from("in_dept"),
        &"dept".into(),
        &Path::from("has_staff"),
    );
    println!("Σ ⊨ person.in_dept <=> dept.has_staff ?  {implied}");

    // Cross-check the inclusion decisions against a real document: every
    // implied inclusion must hold extensionally.
    heading("Semantic cross-check on a generated document");
    let mut rng = SmallRng::seed_from_u64(99);
    let inst = schema.generate_instance(6, &mut rng);
    let tree = schema.export(&inst);
    assert!(validate(&tree, &dtdc).is_valid());
    let idx = ExtIndex::build(&tree);
    for (t1, r1, t2, r2) in inc_queries {
        let lhs = ext_of_path(&solver, &tree, &idx, &t1.into(), &Path::from(r1));
        let rhs = ext_of_path(&solver, &tree, &idx, &t2.into(), &Path::parse(r2).unwrap());
        let holds = lhs.is_subset(&rhs);
        let implied = solver.inclusion_implied(
            &t1.into(),
            &Path::from(r1),
            &t2.into(),
            &Path::parse(r2).unwrap(),
        );
        println!(
            "ext({t1}.{r1}) ⊆ ext({t2}{}{r2}): holds={holds}, implied={implied}",
            if r2.is_empty() { "" } else { "." }
        );
        if implied {
            assert!(holds, "soundness: implied inclusions must hold");
        }
    }
    println!("All implied inclusions hold on the instance (soundness).");
}
